#!/usr/bin/env python
"""Out-of-distribution adaptation (§IV-C, Observation #2).

The Azure-trained surrogate is applied to the highly bursty Alibaba-like
MLaaS trace — a workload with a very different distribution. The example
measures prediction error and closed-loop SLO violations (VCR) for

* the pretrained model used as-is, and
* the same model fine-tuned on just the trace's first "hour" (§III-D),

showing the fine-tuning step's effect the paper reports in Fig. 8.

Run:  python examples/ood_finetuning.py
(first run trains and caches the shared workbench models; later runs load)
"""

import numpy as np

from repro.arrival import interarrivals
from repro.core import DeepBATController, estimate_gamma, generate_dataset
from repro.evaluation import format_table, get_workbench, run_experiment

SEGMENTS = range(3, 9)  # a bursty mid-trace stretch


def prediction_mape(trained, history, workbench, seed):
    """MAPE of the surrogate on fresh (window x config) pairs from
    ``history`` — the §IV-C '5.73 % without fine-tuning' style number."""
    ds = generate_dataset(
        history, n_samples=200, seq_len=workbench.settings.seq_len,
        configs=workbench.grid, platform=workbench.platform, seed=seed,
    )
    pred = trained.predict(ds.sequences, ds.features)
    return float(
        np.mean(np.abs(pred - ds.targets) / np.maximum(np.abs(ds.targets), 1e-8)) * 100
    )


def main() -> None:
    wb = get_workbench()
    slo = wb.settings.slo
    trace = wb.trace("alibaba")
    ood_history = interarrivals(trace.segment(1))

    print("Loading/training the Azure-trained base surrogate...")
    base = wb.base_model()
    print("Fine-tuning on the first Alibaba segment (cached after first run)...")
    tuned = wb.finetuned_model("alibaba")

    rows = []
    for label, model in [("pretrained", base), ("fine-tuned", tuned)]:
        err = prediction_mape(model, ood_history, wb, seed=5)
        gamma = estimate_gamma(model, ood_history, wb.grid, wb.platform,
                               seed=5, slo=slo)
        controller = DeepBATController(model, configs=wb.grid, gamma=gamma)
        log = run_experiment(
            trace, controller, slo=slo, platform=wb.platform,
            segments=SEGMENTS, update_every=512,
            sequence_length=256,  # Eq. 11's paper constant
            name=label,
        )
        rows.append([
            label,
            f"{err:.2f}",
            f"{gamma:.3f}",
            f"{log.vcr_series().mean():.2f}",
            f"{np.nanmean(log.latency_series(95)) * 1e3:.1f}",
            f"{np.nanmean(log.cost_series()) * 1e6:.3f}",
        ])

    print()
    print(format_table(
        ["model", "pred MAPE %", "gamma", "mean VCR %", "mean p95 (ms)", "cost $/1M"],
        rows,
        title=f"Alibaba-like OOD trace, SLO = {slo * 1e3:.0f} ms, segments {SEGMENTS}",
    ))
    print("\nExpected shape (paper Obs. #2): fine-tuning improves the "
          "prediction error; with the boundary-calibrated gamma margin both "
          "variants then keep SLO violations low (see EXPERIMENTS.md for "
          "how this differs from the paper's pretrained-vs-fine-tuned gap).")


if __name__ == "__main__":
    main()
