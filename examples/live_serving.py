#!/usr/bin/env python
"""Live serving loop (Fig. 2 request flow).

Drives the *online* DeepBAT controller — Workload Parser, Buffer, and
periodic re-optimization — request by request over a bursty stream, then
reports achieved latency, cost, and the configuration trajectory. This is
the deployment-shaped code path (the evaluation harness uses the vectorized
equivalent).

Run:  python examples/live_serving.py
"""

import numpy as np

from repro.arrival import mmpp2_with_burstiness
from repro.core import DeepBATController
from repro.evaluation import format_series, get_workbench
from repro.serverless import cost_per_million

SLO = 0.1


def main() -> None:
    wb = get_workbench()
    controller = DeepBATController(wb.base_model(), configs=wb.grid)

    print("Generating a 2-minute bursty stream (rate ~150 req/s)...")
    proc = mmpp2_with_burstiness(150.0, 1.7, cycle_time=2.0, duty=0.4)
    arrivals = proc.sample(duration=120.0, seed=11)
    print(f"   {arrivals.size} requests")

    print("Serving with online re-optimization every 512 requests...")
    batches, decisions = controller.serve(arrivals, slo=SLO, reoptimize_every=512)

    # Latency/cost bookkeeping from the dispatched batches.
    profile, pricing = wb.platform.profile, wb.platform.pricing
    waits, sizes, costs = [], [], []
    config_at = {}
    cfg = controller.optimizer.configs[0]
    decision_iter = iter(decisions)
    for b in batches:
        waits.append(b.waits())
        sizes.append(b.size)
    mem = decisions[-1].config.memory_mb if decisions else cfg.memory_mb
    svc = profile.service_time(mem, np.array(sizes))
    latencies = np.concatenate([w + s for w, s in zip(waits, svc)])
    total_cost = float(pricing.invocation_cost(mem, svc).sum())

    print(f"\n   dispatched {len(batches)} batches, mean size "
          f"{np.mean(sizes):.1f}")
    print(f"   p95 latency : {np.percentile(latencies, 95) * 1e3:.1f} ms "
          f"(SLO {SLO * 1e3:.0f} ms)")
    print(f"   cost        : ${cost_per_million(total_cost / arrivals.size):.3f}/1M req")
    print(f"   decisions   : {len(decisions)} re-optimizations, mean "
          f"{np.mean([d.decision_time for d in decisions]) * 1e3:.0f} ms each")
    print()
    print(format_series("B trajectory", np.array([d.config.batch_size for d in decisions]), "{:.0f}"))
    print(format_series("T trajectory (ms)", np.array([d.config.timeout * 1e3 for d in decisions]), "{:.0f}"))
    print(format_series("M trajectory (MB)", np.array([d.config.memory_mb for d in decisions]), "{:.0f}"))


if __name__ == "__main__":
    main()
