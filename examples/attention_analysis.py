#!/usr/bin/env python
"""Attention-score exploration (§IV-E, Fig. 14).

Feeds windows from all four traces through the Azure-trained surrogate and
prints, per trace, where the encoder's aggregated attention mass lands
relative to the window's longest inter-arrival gaps. The paper's finding:
the model attends to the parts of the sequence with long inter-arrival
periods (the burst boundaries) — on every trace, including the unseen ones.

Run:  python examples/attention_analysis.py
"""

import numpy as np

from repro.arrival import interarrivals, latest_window
from repro.evaluation import format_table, get_workbench


def attention_alignment(model, window: np.ndarray) -> tuple[float, float]:
    """(attention mass on the top-10% longest gaps, uniform baseline)."""
    pipeline_scaled = window / window.mean()
    scores = model.model.attention_scores(pipeline_scaled)
    k = max(1, len(window) // 10)
    top_gaps = np.argsort(window)[-k:]
    return float(scores[top_gaps].sum()), k / len(window)


def main() -> None:
    wb = get_workbench()
    model = wb.base_model()  # trained on Azure ONLY (no fine-tuning), as in Fig. 14

    rows = []
    for name in ("azure", "twitter", "alibaba", "synthetic"):
        trace = wb.trace(name)
        masses = []
        for seg in range(12, min(18, trace.n_segments)):
            x = interarrivals(trace.segment(seg))
            if x.size < wb.settings.seq_len:
                continue
            window = latest_window(x, wb.settings.seq_len)
            mass, baseline = attention_alignment(model, window)
            masses.append(mass)
        if not masses:
            continue
        rows.append([
            name,
            f"{np.mean(masses) * 100:.1f}",
            f"{baseline * 100:.1f}",
            f"{np.mean(masses) / baseline:.2f}x",
        ])

    print(format_table(
        ["trace", "attn on top-10% gaps (%)", "uniform baseline (%)", "lift"],
        rows,
        title="Attention mass on long-inter-arrival positions (Azure-trained model)",
    ))
    print("\nExpected shape (Fig. 14): lift > 1 on every trace — attention "
          "concentrates on long-gap (burst boundary) positions, including "
          "on traces the model never saw.")


if __name__ == "__main__":
    main()
