#!/usr/bin/env python
"""Drift-triggered fine-tuning (§III-D operationalized).

The paper fine-tunes "if there is a noticeable performance drop observed
due to differences in data distributions". This example shows the decision
loop: a drift detector fitted on the Azure training workload watches
incoming windows; in-distribution traffic (Twitter-like) does not trigger,
the bursty OOD traces do — and when the trigger fires, fine-tuning on the
flagged data cuts the surrogate's prediction error.

Run:  python examples/drift_detection.py
"""

import numpy as np

from repro.arrival import interarrivals, latest_window, sliding_windows
from repro.core import WorkloadDriftDetector, generate_dataset, prediction_drift
from repro.evaluation import format_table, get_workbench


def surrogate_error(model, history, wb, seed=0):
    """Coupled-simulation prediction error on a workload (MAPE fraction)."""
    ds = generate_dataset(history, n_samples=120, seq_len=wb.settings.seq_len,
                          configs=wb.grid, platform=wb.platform, seed=seed)
    pred = model.predict(ds.sequences, ds.features)
    return float(np.mean(np.abs(pred - ds.targets) / np.maximum(np.abs(ds.targets), 1e-8)))


def main() -> None:
    wb = get_workbench()
    base = wb.base_model()

    print("Fitting the drift detector on the Azure training workload...")
    detector = WorkloadDriftDetector().fit(
        wb.azure_training_history(), window_length=wb.settings.seq_len
    )
    baseline_err = surrogate_error(base, wb.azure_training_history(), wb)
    print(f"   baseline prediction error: {baseline_err * 100:.1f} %")

    rows = []
    for name in ("twitter", "alibaba", "synthetic"):
        trace = wb.trace(name)
        hist = interarrivals(trace.segment(0))
        # Scan the whole observable segment: drift anywhere triggers.
        wins = sliding_windows(hist, wb.settings.seq_len,
                               stride=max(1, hist.size // 20))
        if len(wins) == 0:
            wins = latest_window(hist, wb.settings.seq_len)[None, :]
        score = max(detector.score(w) for w in wins)
        statistical = score >= detector.threshold
        err = surrogate_error(base, hist, wb, seed=1)
        performance = prediction_drift(err, baseline_err, tolerance=1.25)
        action = "fine-tune" if (statistical or performance) else "keep model"
        rows.append([
            name, f"{score:.2f}", "yes" if statistical else "no",
            f"{err * 100:.1f}", "yes" if performance else "no", action,
        ])

    print()
    print(format_table(
        ["trace", "drift score", "stat. drift?", "pred err %", "perf drift?", "action"],
        rows,
        title="Drift detection on the first observable segment of each trace",
    ))

    print("\nFine-tuned models for the flagged traces (cached by the workbench):")
    for name in ("alibaba", "synthetic"):
        hist = interarrivals(wb.trace(name).segment(0))
        before = surrogate_error(base, hist, wb, seed=2)
        after = surrogate_error(wb.finetuned_model(name), hist, wb, seed=2)
        print(f"   {name:10s}: prediction error {before * 100:.1f} % -> {after * 100:.1f} %")


if __name__ == "__main__":
    main()
