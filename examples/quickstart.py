#!/usr/bin/env python
"""Quickstart: train a small DeepBAT surrogate and optimize one workload.

Walks the full pipeline in miniature (a couple of minutes on a laptop):

1. generate a bursty serverless workload,
2. label (window × configuration) pairs with the ground-truth simulator,
3. train the Transformer surrogate on those labels,
4. ask the DeepBAT controller for the cheapest SLO-meeting configuration,
5. verify the choice by simulating the *next* (unseen) hour.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arrival import azure_like, interarrivals
from repro.batching import config_grid, simulate
from repro.core import (
    DeepBATController,
    DeepBATSurrogate,
    TrainConfig,
    estimate_gamma,
    generate_dataset,
    train_surrogate,
)
from repro.serverless import ServerlessPlatform, cost_per_million

SLO = 0.1  # seconds, 95th-percentile target
SEQ_LEN = 64


def main() -> None:
    rng_seed = 0
    platform = ServerlessPlatform()
    grid = config_grid(
        memories=(512.0, 1024.0, 1792.0, 3008.0),
        batch_sizes=(1, 4, 8, 16),
        timeouts=(0.0, 0.025, 0.05, 0.1),
    )

    print("1) Generating an Azure-like bursty workload (4 'hours')...")
    trace = azure_like(seed=rng_seed, n_segments=4, segment_duration=45.0)
    train_part, test_part = trace.split(3)
    history = interarrivals(train_part.timestamps)
    print(f"   {train_part.timestamps.size} training arrivals, "
          f"{test_part.timestamps.size} held-out arrivals")

    print("2) Labelling 800 (window x config) pairs with the simulator...")
    dataset = generate_dataset(
        history, n_samples=800, seq_len=SEQ_LEN, configs=grid,
        platform=platform, seed=rng_seed,
    )

    print("3) Training the Transformer surrogate (~1-2 min)...")
    model = DeepBATSurrogate(seq_len=SEQ_LEN, seed=rng_seed)
    trained = train_surrogate(
        dataset, model=model,
        config=TrainConfig(epochs=20, batch_size=32, patience=5, seed=rng_seed),
    )
    print(f"   final validation MAPE: {trained.history.val_mape[-1]:.1f} %")

    print("4) Asking DeepBAT for the cheapest SLO-meeting configuration...")
    # Calibrate the SLO margin gamma by coupled simulation (paper §III-D):
    # a small model needs a real safety margin at the decision boundary.
    gamma = estimate_gamma(trained, history, grid, platform, seed=rng_seed, slo=SLO)
    print(f"   calibrated SLO margin gamma = {gamma:.2f}")
    controller = DeepBATController(trained, configs=grid, gamma=gamma)
    decision = controller.choose(history, slo=SLO)
    print(f"   chose {decision.config} "
          f"(predicted p95 = {decision.optimization.predicted_latency * 1e3:.1f} ms, "
          f"predicted cost = ${decision.optimization.predicted_cost_per_million:.3f}/1M req) "
          f"in {decision.decision_time * 1e3:.0f} ms")

    print("5) Verifying on the unseen next hour...")
    future = test_part.segment(0)
    result = simulate(future, decision.config, platform)
    naive = simulate(future, grid[0], platform)  # M=512, B=1: no batching
    print(f"   measured p95 latency : {result.latency_percentile(95) * 1e3:.1f} ms "
          f"(SLO {SLO * 1e3:.0f} ms, "
          f"{'MET' if not result.violates_slo(SLO) else 'VIOLATED'})")
    print(f"   measured cost        : ${cost_per_million(result.cost_per_request):.3f}/1M req")
    print(f"   no-batching baseline : ${cost_per_million(naive.cost_per_request):.3f}/1M req "
          f"({naive.cost_per_request / result.cost_per_request:.1f}x more expensive)")


if __name__ == "__main__":
    main()
