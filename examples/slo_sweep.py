#!/usr/bin/env python
"""SLO sensitivity sweep (§IV-D, "SLO Variations and Model Robustness").

For SLO targets 0.05 / 0.10 / 0.15 / 0.20 / 0.25 s, compares the
configurations DeepBAT and BATCH pick on the MAP-generated synthetic trace
and the latency/cost they actually achieve in ground-truth simulation.

Run:  python examples/slo_sweep.py
"""

import numpy as np

from repro.arrival import interarrivals
from repro.baseline import BATCHController
from repro.batching import simulate
from repro.core import DeepBATController, estimate_gamma
from repro.evaluation import format_table, get_workbench

SLOS = (0.05, 0.10, 0.15, 0.20, 0.25)
SEGMENT = 3  # the paper's hour 2-3 discussion uses one bursty hour


def main() -> None:
    wb = get_workbench()
    trace = wb.trace("synthetic")
    history = interarrivals(trace.segment(SEGMENT - 1))
    future = trace.segment(SEGMENT, relative=False)

    model = wb.finetuned_model("synthetic")
    gamma = estimate_gamma(model, interarrivals(trace.segment(0)), wb.grid, wb.platform)
    deepbat = DeepBATController(model, configs=wb.grid, gamma=gamma)
    batch = BATCHController(configs=wb.grid, profile=wb.platform.profile,
                            pricing=wb.platform.pricing)

    rows = []
    for slo in SLOS:
        d_dec = deepbat.choose(history, slo)
        b_dec = batch.choose(history, slo)
        d_sim = simulate(future, d_dec.config, wb.platform)
        b_sim = simulate(future, b_dec.config, wb.platform)
        rows.append([
            f"{slo * 1e3:.0f}",
            str(d_dec.config),
            f"{d_sim.latency_percentile(95) * 1e3:.1f}",
            "Y" if not d_sim.violates_slo(slo) else "N",
            str(b_dec.config),
            f"{b_sim.latency_percentile(95) * 1e3:.1f}",
            "Y" if not b_sim.violates_slo(slo) else "N",
        ])

    print(format_table(
        ["SLO ms", "DeepBAT config", "p95 ms", "ok", "BATCH config", "p95 ms", "ok"],
        rows,
        title=f"Synthetic (MAP) trace, segment {SEGMENT}: SLO sweep",
    ))
    print("\nExpected shape (§IV-D): DeepBAT tracks every SLO level; BATCH, "
          "fitted on the stale previous hour, misses on the bursty segments.")


if __name__ == "__main__":
    main()
