"""Shim for legacy editable installs (the offline environment lacks the
``wheel`` package, so ``pip install -e . --no-use-pep517`` goes through
``setup.py develop``). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
