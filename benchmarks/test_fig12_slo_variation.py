"""Fig. 12 + §IV-D SLO sweep — latency under varied SLO targets on the
synthetic trace (hour 2-3 in the paper, SLO 0.15 s shown; 0.05/0.2/0.25
confirmed in text).

Paper shape: DeepBAT returns configurations whose measured latency respects
every SLO level; BATCH (fitted on the previous hour) misses some."""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import interarrivals
from repro.baseline import BATCHController
from repro.batching import simulate
from repro.core import DeepBATController
from repro.evaluation import format_table, vcr

SLOS = (0.05, 0.1, 0.15, 0.2, 0.25)
SEGMENT = 3


def test_fig12_slo_sweep(wb, benchmark):
    trace = wb.trace("synthetic")
    hist = interarrivals(trace.segment(SEGMENT - 1))
    future = trace.segment(SEGMENT, relative=False)
    from benchmarks.conftest import deepbat_controller

    deepbat = deepbat_controller(wb, wb.finetuned_model("synthetic"), trace.segment(0))
    batch = BATCHController(configs=wb.grid, profile=wb.platform.profile,
                            pricing=wb.platform.pricing)

    rows = []
    d_vcrs, b_vcrs = [], []
    for slo in SLOS:
        d_sim = simulate(future, deepbat.choose(hist, slo).config, wb.platform)
        b_sim = simulate(future, batch.choose(hist, slo).config, wb.platform)
        d_v = vcr(d_sim.latencies, slo)
        b_v = vcr(b_sim.latencies, slo)
        d_vcrs.append(d_v)
        b_vcrs.append(b_v)
        rows.append([
            f"{slo * 1e3:.0f}",
            f"{d_sim.latency_percentile(95) * 1e3:.1f}", f"{d_v:.1f}",
            f"{b_sim.latency_percentile(95) * 1e3:.1f}", f"{b_v:.1f}",
        ])

    text = format_table(
        ["SLO ms", "DeepBAT p95 ms", "DeepBAT VCR %", "BATCH p95 ms", "BATCH VCR %"],
        rows,
        title=f"Fig. 12: SLO sweep on synthetic segment {SEGMENT}",
    )
    write_result("fig12_slo_variation", text)

    # Paper shape: across the sweep DeepBAT violates less than BATCH.
    assert np.mean(d_vcrs) <= np.mean(b_vcrs)

    benchmark(lambda: deepbat.choose(hist, 0.15))
