"""§IV-F — model prediction time: DeepBAT vs BATCH.

Paper numbers: BATCH takes 40.83 s to return the optimal configuration,
DeepBAT 0.73 s — a 55.93x speedup. Here BATCH runs its real methodology —
KPC-style numerical MAP fitting plus the matrix-analytic solve over the
full candidate grid — while DeepBAT runs one surrogate forward plus the
vectorized exhaustive search. The shape check mirrors the paper's claim
("over 55 times faster"); our measured factor is larger still because the
surrogate is small and the grid search is vectorized NumPy.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import interarrivals
from repro.baseline import BATCHController
from repro.core import DeepBATController
from repro.evaluation import format_table
from repro.utils.timing import Timer


def test_speedup_table(wb, base_model, benchmark):
    slo = wb.settings.slo
    hist = interarrivals(wb.trace("azure").segment(13))

    deepbat = DeepBATController(base_model, configs=wb.grid)
    batch = BATCHController(configs=wb.grid, profile=wb.platform.profile,
                            pricing=wb.platform.pricing,
                            fitting="kpc", fit_order=4)

    deepbat.choose(hist, slo)  # warm the surrogate path
    deepbat_times = []
    for _ in range(5):
        with Timer() as t_d:
            deepbat.choose(hist, slo)
        deepbat_times.append(t_d.elapsed)
    with Timer() as t_b:
        decision = batch.choose(hist, slo)

    t_deepbat = float(np.median(deepbat_times))
    t_batch = t_b.elapsed
    speedup = t_batch / t_deepbat

    text = format_table(
        ["method", "time to optimal config (s)"],
        [
            ["BATCH (KPC fit + analytic solve, full grid)", f"{t_batch:.3f}"],
            ["  of which: MAP fitting", f"{decision.fit_time:.3f}"],
            ["  of which: analytic grid solve", f"{decision.solve_time:.3f}"],
            ["DeepBAT (surrogate + search, full grid)", f"{t_deepbat:.4f}"],
            ["speedup", f"{speedup:.0f}x"],
        ],
        title=(f"Prediction-time comparison over {len(wb.grid)} candidate "
               "configurations (paper: 40.83 s vs 0.73 s = 55.93x)"),
    )
    write_result("speedup_table", text)

    # Paper shape: DeepBAT is *over 55x* faster.
    assert speedup > 55.0, f"expected >55x speedup, got {speedup:.1f}x"

    benchmark(lambda: deepbat.choose(hist, slo))
