"""Fig. 10 — VCR per hour (12 hours) on the MAP-generated synthetic trace.

Paper shape: DeepBAT's VCR stays far below BATCH's across the dramatically
changing workload."""

from benchmarks.conftest import write_result
from repro.evaluation import format_series, format_table, sparkline


def test_fig10_vcr_series(wb, synthetic_logs, benchmark):
    v_batch = synthetic_logs["batch"].vcr_series()
    v_ft = synthetic_logs["deepbat_ft"].vcr_series()

    hi = max(float(v_batch.max()), float(v_ft.max()), 1.0)
    text = "\n".join([
        format_series("BATCH VCR %       ", v_batch, "{:5.1f}"),
        format_series("DeepBAT fine-tuned", v_ft, "{:5.1f}"),
        f"BATCH    {sparkline(v_batch, 0.0, hi)}",
        f"DeepBAT  {sparkline(v_ft, 0.0, hi)}",
        "",
        format_table(
            ["controller", "mean VCR %", "max VCR %"],
            [
                ["BATCH", f"{v_batch.mean():.2f}", f"{v_batch.max():.2f}"],
                ["DeepBAT fine-tuned", f"{v_ft.mean():.2f}", f"{v_ft.max():.2f}"],
            ],
            title="Fig. 10: VCR per segment, synthetic (MAP) trace, SLO 100 ms",
        ),
    ])
    write_result("fig10_synthetic_vcr", text)

    assert v_ft.mean() < v_batch.mean()

    benchmark(lambda: synthetic_logs["batch"].vcr_series())
