"""Shared fixtures for the figure/table reproduction benchmarks.

Heavy artifacts are computed once per session (and the trained surrogates
are cached on disk by the workbench), so individual benchmarks stay cheap
and re-runnable. Every benchmark writes its figure's data series to
``benchmarks/results/<name>.txt`` in addition to printing it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.arrival import interarrivals
from repro.baseline import BATCHController
from repro.core import DeepBATController, estimate_gamma
from repro.evaluation import get_workbench, run_experiment

RESULTS_DIR = Path(__file__).parent / "results"
#: Segments used for the 12-"hour" VCR studies (Figs. 8 and 10).
VCR_SEGMENTS = range(1, 13)
#: How often DeepBAT re-optimizes inside a segment (its fast decisions make
#: intra-segment adaptation affordable; BATCH re-fits only per segment).
UPDATE_EVERY = 512
#: Eq. 11's request-sequence length for VCR, forced uniform across
#: controllers so the figures compare like with like (DeepBAT's own
#: observation window is shorter and would otherwise chunk differently).
VCR_SEQUENCE_LENGTH = 256


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is the slow tier: mark it ``bench`` so
    ``-m "not bench"`` (the Makefile's ``test`` target) skips it even when
    benchmarks are collected alongside the unit tests."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def write_result(name: str, text: str) -> None:
    """Print a figure's data and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def wb():
    return get_workbench()


@pytest.fixture(scope="session")
def base_model(wb):
    return wb.base_model()


def deepbat_controller(wb, model, gamma_trace_segment) -> DeepBATController:
    """A DeepBAT controller with γ measured by coupled simulation (§III-D).

    γ is the decision-boundary-calibrated underprediction margin of the
    model on the observable segment, floored by the *pretrained* model's
    margin on the same data — fine-tuning on one observed hour must not
    shrink the safety margin below the base model's broader uncertainty.
    """
    hist = interarrivals(gamma_trace_segment)
    slo = wb.settings.slo
    gamma = estimate_gamma(model, hist, wb.grid, wb.platform, seed=7, slo=slo)
    base = wb.base_model()
    if model is not base:
        gamma = max(
            gamma,
            estimate_gamma(base, hist, wb.grid, wb.platform, seed=7, slo=slo),
        )
    return DeepBATController(model, configs=wb.grid, gamma=gamma)


def _controller_logs(wb, trace_name: str) -> dict:
    """BATCH vs DeepBAT (pretrained and fine-tuned) over the VCR segments."""
    trace = wb.trace(trace_name)
    slo = wb.settings.slo
    logs = {}

    batch = BATCHController(
        configs=wb.grid, profile=wb.platform.profile, pricing=wb.platform.pricing
    )
    logs["batch"] = run_experiment(
        trace, batch, slo=slo, platform=wb.platform,
        segments=VCR_SEGMENTS, sequence_length=VCR_SEQUENCE_LENGTH, name="BATCH",
    )

    # γ is estimated on segment 0 — the same observable data used for
    # fine-tuning (§IV-C), never the evaluation segments.
    pre = deepbat_controller(wb, wb.base_model(), trace.segment(0))
    logs["deepbat_pre"] = run_experiment(
        trace, pre, slo=slo, platform=wb.platform,
        segments=VCR_SEGMENTS, update_every=UPDATE_EVERY,
        sequence_length=VCR_SEQUENCE_LENGTH, name="DeepBAT-pretrained",
    )

    ft = deepbat_controller(wb, wb.finetuned_model(trace_name), trace.segment(0))
    logs["deepbat_ft"] = run_experiment(
        trace, ft, slo=slo, platform=wb.platform,
        segments=VCR_SEGMENTS, update_every=UPDATE_EVERY,
        sequence_length=VCR_SEQUENCE_LENGTH, name="DeepBAT-finetuned",
    )
    return logs


@pytest.fixture(scope="session")
def alibaba_logs(wb):
    return _controller_logs(wb, "alibaba")


@pytest.fixture(scope="session")
def synthetic_logs(wb):
    return _controller_logs(wb, "synthetic")
