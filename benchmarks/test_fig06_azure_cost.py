"""Fig. 6 + Observation #1 — Azure/Twitter in-distribution results.

Paper shape: on the moderately bursty Azure and Twitter traces both BATCH
and DeepBAT meet the 0.1 s SLO (VCR = 0), while DeepBAT's configurations
are occasionally cheaper thanks to faster adaptation; the Azure-trained
model generalizes to Twitter without retraining."""

import numpy as np

from benchmarks.conftest import (
    UPDATE_EVERY,
    VCR_SEQUENCE_LENGTH,
    deepbat_controller,
    write_result,
)
from repro.baseline import BATCHController
from repro.core import DeepBATController
from repro.evaluation import format_series, format_table, run_experiment

SEGMENTS = range(13, 19)  # held-out half of the Azure trace (trained on 0-11)


def _run(wb, trace_name):
    trace = wb.trace(trace_name)
    slo = wb.settings.slo
    batch = BATCHController(configs=wb.grid, profile=wb.platform.profile,
                            pricing=wb.platform.pricing)
    # γ estimated on the segment just before the evaluation window.
    deepbat = deepbat_controller(wb, wb.base_model(), trace.segment(12))
    log_b = run_experiment(trace, batch, slo=slo, platform=wb.platform,
                           segments=SEGMENTS,
                           sequence_length=VCR_SEQUENCE_LENGTH, name="BATCH")
    log_d = run_experiment(trace, deepbat, slo=slo, platform=wb.platform,
                           segments=SEGMENTS, update_every=UPDATE_EVERY,
                           sequence_length=VCR_SEQUENCE_LENGTH,
                           name="DeepBAT")
    return log_b, log_d


def test_fig06_azure_twitter_cost_and_slo(wb, base_model, benchmark):
    sections = []
    for trace_name in ("azure", "twitter"):
        log_b, log_d = _run(wb, trace_name)
        rows = []
        for o_b, o_d in zip(log_b.outcomes, log_d.outcomes):
            rows.append([
                o_b.segment,
                f"{o_b.cost_per_request * 1e6:.3f}",
                f"{o_d.cost_per_request * 1e6:.3f}",
                f"{o_b.p(95) * 1e3:.1f}",
                f"{o_d.p(95) * 1e3:.1f}",
            ])
        sections.append(format_table(
            ["segment", "BATCH $/1M", "DeepBAT $/1M", "BATCH p95 ms", "DeepBAT p95 ms"],
            rows,
            title=f"Fig. 6 ({trace_name}): cost and latency per segment, SLO 100 ms",
        ))
        sections.append(format_series(
            f"{trace_name} VCR BATCH %", log_b.vcr_series(), "{:.1f}"))
        sections.append(format_series(
            f"{trace_name} VCR DeepBAT %", log_d.vcr_series(), "{:.1f}"))

        # Paper shape: both controllers essentially meet the SLO on these
        # moderately bursty traces (VCR ~ 0), and DeepBAT stays cost-
        # competitive (within a small band of BATCH on average).
        assert log_d.vcr_series().mean() <= 10.0
        assert (
            np.nanmean(log_d.cost_series())
            <= 1.35 * np.nanmean(log_b.cost_series())
        )

    write_result("fig06_azure_cost", "\n\n".join(sections))

    # Benchmark one DeepBAT decision round on Azure data (the per-interval
    # cost of the adaptive controller).
    from repro.arrival import interarrivals

    hist = interarrivals(wb.trace("azure").segment(13))
    ctrl = DeepBATController(base_model, configs=wb.grid)
    benchmark(lambda: ctrl.choose(hist, wb.settings.slo))
