"""Microbenchmarks of the live serving loop → ``BENCH_serving.json``.

Three measurements anchor the serving-side speed pass (PR 7), plus a
prewarm-overhead guard (PR 8) and a continuous-batching guard (PR 9):

* **Engine** — the reference trace (60k Poisson arrivals through a finite
  keep-alive pool) on the optimized engine (fast drive loop, heap pool,
  memoized service/cost, chunked batch columns) vs the pre-speed-pass
  behaviour (stepwise loop, linear-scan :class:`ReferenceWarmPool`, no
  memoization). Acceptance bar: **≥ 3× events/sec**, outputs bit-identical.
* **Pool** — raw acquire/release churn on the heap-backed
  :class:`WarmPool` vs the linear-scan reference, identical op sequences,
  identical leases/stats asserted first.
* **Fleet** — an 8-endpoint fleet on the lane-key-heap loop
  (``FleetEngine._drive_lanes``) vs the scan-every-lane specification
  (``_drive_lanes_scan``), logs bit-identical.
* **Prewarm** — the same reference trace with the predictive prewarmer
  ticking at 4 Hz vs prewarm-off. Acceptance bar: **≤ 50% overhead** —
  the forecaster and pool provisioning must not give back the speed pass.
* **Generation** — continuous batching (token-streaming, every
  prefill/decode iteration a heap event) vs the request-level engine on
  the same arrivals. Acceptance bar: the *event-processing* rate stays
  **≥ 0.15×** the request-level engine's — a collapse means the genstep
  path fell off the fast drive loop.
* **Outage** — a run passing disabled outage/degradation configs (PR 10)
  vs one passing none. Acceptance bar: bit-identical outputs and **≤ 10%
  overhead** — the defaults-off fault layer must stay free.

Every "before" implementation is the executable specification kept in the
tree (``ReferenceWarmPool``, ``_drive_lanes_scan``, the stepwise
``_step`` loop), so the comparison stays honest as the code evolves.

Run via ``make bench-serving`` (or ``make bench-perf`` for all perf
benchmarks); results land in ``BENCH_serving.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.serverless.platform import ServerlessPlatform
from repro.serving.engine import ServingEngine
from repro.serving.fleet import EndpointSpec, FleetEngine
from repro.serving.pool import ReferenceWarmPool, WarmPool, WarmPoolConfig

RESULT_PATH = Path(__file__).parent.parent / "BENCH_serving.json"

pytestmark = pytest.mark.perf

REFERENCE_CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
REFERENCE_POOL = WarmPoolConfig(keep_alive_s=30.0, max_containers=64)


def _reference_trace(n: int = 60_000, rate: float = 2000.0,
                     seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def _best_of_pair(before_fn, after_fn, repeats: int = 3):
    """Best wall-clock for each side over interleaved runs.

    Interleaving (before, after, before, after, …) and collecting garbage
    outside the timed region keeps both sides exposed to the same ambient
    noise — this file runs after other benchmarks inside one pytest
    process, so allocator and GC state are anything but pristine.
    """
    best = {"before": (float("inf"), None), "after": (float("inf"), None)}
    was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            for side, fn in (("before", before_fn), ("after", after_fn)):
                gc.collect()
                gc.disable()
                t0 = time.perf_counter()
                result = fn()
                elapsed = time.perf_counter() - t0
                if was_enabled:
                    gc.enable()
                if elapsed < best[side][0]:
                    best[side] = (elapsed, result)
    finally:
        if was_enabled:
            gc.enable()
    return best["before"], best["after"]


def _merge_results(section: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data[section] = payload
    data["cpu_count"] = os.cpu_count()
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _assert_logs_identical(a, b) -> None:
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(a.shed, b.shed)
    np.testing.assert_array_equal(a.failed, b.failed)
    np.testing.assert_array_equal(a.dispatch_times, b.dispatch_times)
    np.testing.assert_array_equal(a.start_times, b.start_times)
    np.testing.assert_array_equal(a.batch_sizes, b.batch_sizes)
    np.testing.assert_array_equal(a.batch_costs, b.batch_costs)
    np.testing.assert_array_equal(a.batch_cold, b.batch_cold)
    np.testing.assert_array_equal(a.batch_memory, b.batch_memory)
    np.testing.assert_array_equal(a.batch_retries, b.batch_retries)
    assert a.n_events == b.n_events
    assert (a.cold_starts, a.warm_starts, a.expired_containers,
            a.evicted_containers) == (b.cold_starts, b.warm_starts,
                                      b.expired_containers,
                                      b.evicted_containers)


class _NoCache(dict):
    """A cache that never hits and never stores (the pre-memoization path)."""

    def get(self, key, default=None):  # noqa: ARG002 - dict signature
        return None

    def __setitem__(self, key, value):
        pass


class _ReferenceEngine(ServingEngine):
    """Pre-speed-pass behaviour: stepwise event loop, linear-scan pool,
    and a fresh service-time/cost computation for every batch."""

    def _make_pool(self) -> WarmPool:
        return ReferenceWarmPool(self.pool_config, self.platform.cold_start)

    def _drive(self, st, ctx):
        ctx.service_cache = _NoCache()
        ctx.cost_cache = _NoCache()
        while self._step(st, ctx):
            st.events_processed += 1
        return self._finish(st)


class _ScanFleet(FleetEngine):
    """Fleet on the original scan-every-lane selection loop."""

    _scan_lanes = True


def test_engine_throughput_floor():
    """Reference trace: optimized engine ≥ 3× events/sec over the
    pre-speed-pass path, outputs bit-identical."""
    ts = _reference_trace()

    def run(engine_cls):
        return engine_cls(
            REFERENCE_CONFIG, platform=ServerlessPlatform(),
            pool=REFERENCE_POOL,
        ).run(ts)

    (before_s, before), (after_s, after) = _best_of_pair(
        lambda: run(_ReferenceEngine), lambda: run(ServingEngine)
    )

    # Equivalence first — a fast wrong answer is no speedup.
    _assert_logs_identical(before, after)

    speedup = before_s / after_s
    payload = {
        "n_requests": int(ts.size),
        "n_events": int(after.n_events),
        "before_seconds": round(before_s, 4),
        "after_seconds": round(after_s, 4),
        "speedup": round(speedup, 2),
        "events_per_sec_before": round(after.n_events / before_s),
        "events_per_sec_after": round(after.n_events / after_s),
        "requests_per_sec_before": round(ts.size / before_s),
        "requests_per_sec_after": round(ts.size / after_s),
    }
    _merge_results("engine", payload)
    print(f"\nengine: {json.dumps(payload)}")
    assert speedup >= 3.0, (
        f"serving fast path only {speedup:.2f}x over the reference trace"
    )


def test_prewarm_overhead_bounded():
    """PR 8 guard: the predictive prewarmer must not give back the PR 7
    speed pass. A prewarm-on run (empirical forecaster, 4 Hz ticks) pays
    for periodic forecasts and pool provisioning on top of the fast drive
    loop; that overhead has to stay a fraction of the baseline, not a
    multiple of it."""
    from repro.serving.config import PrewarmConfig
    from repro.serving.prewarm import EmpiricalRateForecaster

    ts = _reference_trace()
    prewarm = PrewarmConfig(forecaster=EmpiricalRateForecaster(),
                            interval_s=0.25, headroom=2.0, window=256)

    def run(cfg):
        return ServingEngine(
            REFERENCE_CONFIG, platform=ServerlessPlatform(),
            pool=REFERENCE_POOL, prewarm=cfg,
        ).run(ts)

    (off_s, off), (on_s, on) = _best_of_pair(
        lambda: run(None), lambda: run(prewarm)
    )

    assert on.prewarm_ticks > 0  # the policy genuinely ran
    overhead = on_s / off_s - 1.0
    payload = {
        "n_requests": int(ts.size),
        "interval_s": prewarm.interval_s,
        "ticks": int(on.prewarm_ticks),
        "prewarmed_containers": int(on.prewarmed_containers),
        "off_seconds": round(off_s, 4),
        "on_seconds": round(on_s, 4),
        "overhead_pct": round(100.0 * overhead, 1),
        "requests_per_sec_off": round(ts.size / off_s),
        "requests_per_sec_on": round(ts.size / on_s),
    }
    _merge_results("prewarm", payload)
    print(f"\nprewarm: {json.dumps(payload)}")
    assert overhead <= 0.5, (
        f"prewarming costs {100 * overhead:.0f}% of engine throughput"
    )


def test_generation_throughput_floor():
    """PR 9 guard: continuous batching must stay in the fast lane.

    Token streaming multiplies the event count — every prefill/decode
    iteration is a heap event — so requests/sec inevitably drops, but the
    *event-processing* rate must remain within a constant factor of the
    request-level engine's. A collapse here would mean the genstep path
    fell off the fast drive loop (e.g. per-iteration allocation or a
    missed memoization), which is invisible to correctness tests."""
    from repro.serving.config import GenerationConfig

    ts = _reference_trace(n=20_000)
    generation = GenerationConfig(dispatcher="continuous")

    def run(gen):
        return ServingEngine(
            REFERENCE_CONFIG, platform=ServerlessPlatform(),
            pool=REFERENCE_POOL, generation=gen,
        ).run(ts)

    (plain_s, plain), (gen_s, gen) = _best_of_pair(
        lambda: run(None), lambda: run(generation)
    )

    assert gen.gen_decode_iterations > 0  # token streaming genuinely ran
    plain_eps = plain.n_events / plain_s
    gen_eps = gen.n_events / gen_s
    ratio = gen_eps / plain_eps
    payload = {
        "n_requests": int(ts.size),
        "plain_events": int(plain.n_events),
        "gen_events": int(gen.n_events),
        "gen_sessions": int(gen.gen_sessions),
        "gen_tokens": int(gen.gen_tokens),
        "plain_seconds": round(plain_s, 4),
        "gen_seconds": round(gen_s, 4),
        "events_per_sec_plain": round(plain_eps),
        "events_per_sec_gen": round(gen_eps),
        "events_per_sec_ratio": round(ratio, 2),
    }
    _merge_results("generation", payload)
    print(f"\ngeneration: {json.dumps(payload)}")
    assert ratio >= 0.15, (
        f"continuous-batching loop processes events at only {ratio:.2f}x "
        "the request-level engine's rate"
    )


def test_outage_disabled_overhead_bounded():
    """PR 10 guard: the defaults-off fault layer must cost nothing.

    Disabled outage/degradation configs are normalized to ``None`` at
    construction, so a run that passes them must stay on the exact same
    data plane as one that never heard of the feature — bit-identical
    outputs and at most measurement noise in wall-clock. A regression here
    means a hot-path branch started keying off non-``None`` state. An
    enabled full-stack run is also timed, informationally."""
    from repro.serverless.faults import RetryPolicy
    from repro.serverless.outages import (
        CrashHazard, OutageModel, OutageWindow, StragglerModel,
    )
    from repro.serving.degrade import DegradeConfig, HedgeConfig

    ts = _reference_trace()

    def run(outages, degrade):
        return ServingEngine(
            REFERENCE_CONFIG, platform=ServerlessPlatform(),
            pool=REFERENCE_POOL, outages=outages, degrade=degrade,
        ).run(ts)

    (off_s, off), (disabled_s, disabled) = _best_of_pair(
        lambda: run(None, None),
        lambda: run(OutageModel(), DegradeConfig()),
    )
    _assert_logs_identical(off, disabled)

    horizon = float(ts[-1])
    enabled = OutageModel(
        windows=(OutageWindow(horizon / 3, horizon / 2),),
        crash=CrashHazard(rate=0.002, outage_rate=0.02),
        straggler=StragglerModel(rate=0.1, slowdown=3.0),
        seed=5,
    )
    stack = DegradeConfig(
        backoff=RetryPolicy(max_attempts=3, base_backoff_s=0.05,
                            max_total_delay_s=2.0),
        hedge=HedgeConfig(percentile=95.0, multiplier=1.5),
    )
    t0 = time.perf_counter()
    full = run(enabled, stack)
    enabled_s = time.perf_counter() - t0

    overhead = disabled_s / off_s - 1.0
    payload = {
        "n_requests": int(ts.size),
        "off_seconds": round(off_s, 4),
        "disabled_seconds": round(disabled_s, 4),
        "disabled_overhead_pct": round(100.0 * overhead, 1),
        "requests_per_sec_off": round(ts.size / off_s),
        "requests_per_sec_disabled": round(ts.size / disabled_s),
        "enabled_seconds": round(enabled_s, 4),
        "enabled_events_per_sec": round(full.n_events / enabled_s),
        "enabled_crashes": int(full.crashed_containers),
        "enabled_hedges": int(full.hedges),
        "enabled_cold_retries": int(full.cold_retries),
    }
    _merge_results("outage", payload)
    print(f"\noutage: {json.dumps(payload)}")
    assert overhead <= 0.1, (
        f"disabled outage/degrade configs cost {100 * overhead:.0f}% of "
        "engine throughput — the defaults-off path is no longer free"
    )


def test_pool_churn_throughput():
    """Raw warm-pool churn: heap pool vs linear-scan reference on one
    deterministic acquire/release sequence."""
    n_ops = 60_000
    tiers = (512.0, 1024.0, 2048.0, 4096.0)
    cfg = WarmPoolConfig(keep_alive_s=5.0, max_containers=256)
    rng = np.random.default_rng(11)
    ops = rng.random(n_ops).tolist()
    gaps = (rng.random(n_ops) * 0.02).tolist()

    def churn(pool_cls):
        pool = pool_cls(cfg)
        leases: list[int] = []
        trail = []
        now = 0.0
        for op, gap in zip(ops, gaps):
            now += gap
            if op < 0.6 or not leases:
                lease = pool.acquire(now, tiers[int(op * 1e4) % len(tiers)])
                if lease is not None:
                    leases.append(lease.container_id)
                    trail.append(lease.container_id)
                else:
                    trail.append(-1)
            else:
                cid = leases.pop()
                pool.release(cid, now)
        s = pool.stats
        return trail, (s.cold_starts, s.warm_starts, s.expired, s.evicted)

    (before_s, before), (after_s, after) = _best_of_pair(
        lambda: churn(ReferenceWarmPool), lambda: churn(WarmPool)
    )
    assert before == after  # identical leases and stats

    payload = {
        "n_ops": n_ops,
        "max_containers": cfg.max_containers,
        "before_seconds": round(before_s, 4),
        "after_seconds": round(after_s, 4),
        "speedup": round(before_s / after_s, 2),
        "ops_per_sec_before": round(n_ops / before_s),
        "ops_per_sec_after": round(n_ops / after_s),
    }
    _merge_results("pool", payload)
    print(f"\npool: {json.dumps(payload)}")


def test_fleet_throughput():
    """8-endpoint fleet: lane-key heap vs scan-every-lane, bit-identical."""
    n_lanes = 8
    endpoints = [
        EndpointSpec(
            name=f"ep{i}",
            config=BatchConfig(memory_mb=1024.0 * (1 + i % 3),
                               batch_size=4, timeout=0.04),
            slo=0.2,
            share=1.0 / n_lanes,
            pool=WarmPoolConfig(keep_alive_s=20.0, max_containers=16),
        )
        for i in range(n_lanes)
    ]
    ts = _reference_trace(n=40_000, rate=600.0, seed=3)

    def run(fleet_cls):
        return fleet_cls(endpoints).run(ts, name="bench")

    (before_s, before), (after_s, after) = _best_of_pair(
        lambda: run(_ScanFleet), lambda: run(FleetEngine)
    )

    for spec in endpoints:
        _assert_logs_identical(before[spec.name], after[spec.name])

    n_events = sum(after[s.name].n_events for s in endpoints)
    payload = {
        "n_endpoints": n_lanes,
        "n_requests": int(ts.size),
        "n_events": int(n_events),
        "before_seconds": round(before_s, 4),
        "after_seconds": round(after_s, 4),
        "speedup": round(before_s / after_s, 2),
        "events_per_sec_before": round(n_events / before_s),
        "events_per_sec_after": round(n_events / after_s),
    }
    _merge_results("fleet", payload)
    print(f"\nfleet: {json.dumps(payload)}")
