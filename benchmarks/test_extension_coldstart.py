"""Extension / failure injection: cold starts.

The paper (like BATCH) assumes warm functions. This bench injects Lambda
cold starts and measures how the DeepBAT-chosen configuration degrades —
quantifying the gap a production deployment must budget for, and checking
the simulator's cold-start machinery end to end."""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import interarrivals
from repro.batching import simulate
from repro.core import DeepBATController
from repro.evaluation import format_table, vcr
from repro.serverless import ColdStartModel, ServerlessPlatform


def test_extension_cold_starts(wb, base_model, benchmark):
    slo = wb.settings.slo
    trace = wb.trace("azure")
    hist = interarrivals(trace.segment(13))
    future = trace.segment(14, relative=False)

    ctrl = DeepBATController(base_model, configs=wb.grid)
    cfg = ctrl.choose(hist, slo).config

    rows = []
    p95s = {}
    for label, prob in [("warm", 0.0), ("1% cold", 0.01), ("5% cold", 0.05)]:
        platform = ServerlessPlatform(
            profile=wb.platform.profile,
            pricing=wb.platform.pricing,
            cold_start=ColdStartModel(cold_probability=prob, base_delay=0.25),
            seed=0,
        )
        sim = simulate(future, cfg, platform)
        p95s[label] = sim.latency_percentile(95)
        rows.append([
            label, f"{p95s[label] * 1e3:.1f}", f"{vcr(sim.latencies, slo):.1f}",
            f"{sim.cost_per_request * 1e6:.4f}",
        ])

    text = format_table(
        ["scenario", "p95 ms", "VCR %", "cost $/1M"],
        rows,
        title=f"Cold-start injection under the DeepBAT config {cfg}",
    )
    write_result("extension_coldstart", text)

    # Shape: cold starts strictly degrade the tail, monotonically in the
    # cold probability; the warm case matches the main evaluation.
    assert p95s["warm"] <= p95s["1% cold"] <= p95s["5% cold"]

    benchmark(lambda: simulate(future, cfg, wb.platform))
