"""Fig. 5 — index of dispersion (IDC) of the four traces. Paper shape:
Twitter ~4 for most periods (mild), Azure higher and more variable,
Alibaba and the synthetic trace much higher with strong hour-to-hour
variability."""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import idc, interarrivals
from repro.evaluation import format_series, format_table

TRACES = ("azure", "twitter", "alibaba", "synthetic")


def test_fig05_idc_series(wb, benchmark):
    lines, stats = [], []
    medians = {}
    for name in TRACES:
        trace = wb.trace(name)
        series = trace.idc_series()
        lines.append(format_series(f"{name} IDC per segment", series, "{:.1f}"))
        medians[name] = float(np.median(series))
        stats.append([name, f"{medians[name]:.1f}", f"{series.min():.1f}",
                      f"{series.max():.1f}"])
    text = "\n".join(lines) + "\n\n" + format_table(
        ["trace", "median IDC", "min", "max"], stats,
        title="Fig. 5: index of dispersion per segment",
    )
    write_result("fig05_idc", text)

    # Paper shapes: twitter mildest (IDC around 4); azure in between;
    # alibaba and synthetic an order of magnitude above twitter.
    assert 1.5 < medians["twitter"] < 15.0
    assert medians["azure"] > medians["twitter"]
    assert medians["alibaba"] > 10 * medians["twitter"]
    assert medians["synthetic"] > 10 * medians["twitter"]

    x = interarrivals(wb.trace("azure").segment(5))
    benchmark(lambda: idc(x))
