"""Extension: multi-class batching (MBS, §VI related work).

Two request classes with different SLOs share one deployed function; the
decomposed exhaustive optimizer assigns per-class (B, T) under a shared
memory tier. Shape: both SLOs met, the loose class batches more
aggressively, and the shared optimum beats serving everything with the
tight class's conservative parameters."""

from benchmarks.conftest import write_result
from repro.batching import (
    MultiClassConfig,
    RequestClass,
    optimize_multiclass,
    simulate_multiclass,
)
from repro.evaluation import format_table


def test_extension_multiclass(wb, benchmark):
    azure = wb.trace("azure")
    twitter = wb.trace("twitter")
    classes = [
        RequestClass("interactive", azure.segment(14), slo=0.05),
        RequestClass("analytics", twitter.segment(14), slo=0.3),
    ]
    cfg, result = optimize_multiclass(
        classes, wb.platform,
        memories=(512.0, 1024.0, 1792.0),
        batch_sizes=(1, 2, 4, 8, 16, 32),
        timeouts=(0.0, 0.025, 0.05, 0.1, 0.2),
    )
    naive = simulate_multiclass(
        classes,
        MultiClassConfig(cfg.memory_mb,
                         {c.name: cfg.per_class["interactive"] for c in classes}),
        wb.platform,
    )

    rows = []
    for c in classes:
        r = result.per_class[c.name]
        b, t = cfg.per_class[c.name]
        rows.append([
            c.name, f"{c.slo * 1e3:.0f}", f"B={b}, T={t * 1e3:.0f}ms",
            f"{r.latency_percentile(c.percentile) * 1e3:.1f}",
            f"{r.cost_per_request * 1e6:.4f}",
        ])
    text = format_table(
        ["class", "SLO ms", "chosen (B,T)", "p95 ms", "cost $/1M"],
        rows,
        title=f"Multi-class optimum: shared M={cfg.memory_mb:.0f} MB",
    ) + (
        f"\n\ntotal cost: optimized ${result.total_cost:.6f} vs "
        f"tight-for-all ${naive.total_cost:.6f} "
        f"({naive.total_cost / result.total_cost:.2f}x)"
    )
    write_result("extension_multiclass", text)

    assert result.meets_all_slos(classes)
    assert cfg.per_class["analytics"][0] >= cfg.per_class["interactive"][0]
    assert result.total_cost <= naive.total_cost + 1e-12

    benchmark(lambda: simulate_multiclass(classes, cfg, wb.platform))
