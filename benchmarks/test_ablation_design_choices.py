"""Ablations of DeepBAT's design knobs (DESIGN.md §5, beyond the paper's
figures):

* the γ robustness margin (§III-D): larger γ trades cost for fewer
  violations on the bursty OOD trace;
* DeepBAT's intra-segment update frequency: more frequent re-optimization
  is what buys the adaptivity of §IV-C/D.
"""

import numpy as np

from benchmarks.conftest import VCR_SEQUENCE_LENGTH, write_result
from repro.core import DeepBATController
from repro.evaluation import format_table, run_experiment

SEGMENTS = range(2, 8)


def test_ablation_gamma_margin(wb, benchmark):
    trace = wb.trace("synthetic")
    slo = wb.settings.slo
    model = wb.finetuned_model("synthetic")
    rows = []
    outcomes = {}
    for gamma in (0.0, 0.1, 0.3):
        ctrl = DeepBATController(model, configs=wb.grid, gamma=gamma)
        log = run_experiment(trace, ctrl, slo=slo, platform=wb.platform,
                             segments=SEGMENTS, update_every=512,
                             sequence_length=VCR_SEQUENCE_LENGTH,
                             name=f"gamma={gamma}")
        outcomes[gamma] = (log.vcr_series().mean(), np.nanmean(log.cost_series()))
        rows.append([f"{gamma:.1f}", f"{outcomes[gamma][0]:.2f}",
                     f"{outcomes[gamma][1] * 1e6:.4f}"])

    text = format_table(
        ["gamma", "mean VCR %", "cost $/1M"],
        rows, title="Ablation: SLO-margin gamma on the synthetic trace",
    )

    # Shape: tightening the constraint does not increase violations.
    assert outcomes[0.3][0] <= outcomes[0.0][0] + 1e-9

    # ---- update-frequency ablation ------------------------------------
    from benchmarks.conftest import deepbat_controller

    rows2 = []
    freq_outcomes = {}
    for every in (None, 2048, 512):
        ctrl = deepbat_controller(wb, model, trace.segment(0))
        log = run_experiment(trace, ctrl, slo=slo, platform=wb.platform,
                             segments=SEGMENTS, update_every=every,
                             sequence_length=VCR_SEQUENCE_LENGTH,
                             name=f"every={every}")
        key = "per-segment" if every is None else str(every)
        freq_outcomes[key] = log.vcr_series().mean()
        rows2.append([key, f"{freq_outcomes[key]:.2f}",
                      f"{np.nanmean(log.cost_series()) * 1e6:.4f}"])

    text += "\n\n" + format_table(
        ["re-optimize every N requests", "mean VCR %", "cost $/1M"],
        rows2, title="Ablation: DeepBAT adaptation frequency",
    )
    write_result("ablation_design_choices", text)

    # Shape: adapting within the segment does not hurt vs one decision per
    # segment (it is the mechanism behind Figs. 8/10).
    assert freq_outcomes["512"] <= freq_outcomes["per-segment"] + 5.0

    from repro.arrival import interarrivals

    hist = interarrivals(trace.segment(2))
    ctrl = DeepBATController(model, configs=wb.grid)
    benchmark(lambda: ctrl.choose(hist, slo))
