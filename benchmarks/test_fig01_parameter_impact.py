"""Fig. 1 — impact of memory size, batch size, and timeout on latency and
cost. Paper shape: (a) latency falls steeply with M while cost rises;
(b) per-request cost falls with B while latency rises; (c) same for T."""

import numpy as np

from benchmarks.conftest import write_result
from repro.batching import BatchConfig, simulate
from repro.evaluation import format_table
from repro.serverless import cost_per_million

MEMORIES = (256.0, 512.0, 1024.0, 1792.0, 3008.0)
BATCHES = (1, 2, 4, 8, 16, 32)
TIMEOUTS = (0.01, 0.025, 0.05, 0.1, 0.2)


def _sweep(wb, configs):
    seg = wb.trace("azure").segment(14, relative=False)
    rows = []
    for cfg in configs:
        r = simulate(seg, cfg, wb.platform)
        rows.append((cfg, r.latency_percentile(95), cost_per_million(r.cost_per_request)))
    return rows


def test_fig01_memory_batch_timeout_impact(wb, benchmark):
    mem_rows = _sweep(wb, [BatchConfig(m, 8, 0.05) for m in MEMORIES])
    b_rows = _sweep(wb, [BatchConfig(1024.0, b, 0.05) for b in BATCHES])
    t_rows = _sweep(wb, [BatchConfig(1024.0, 16, t) for t in TIMEOUTS])

    text = "\n\n".join(
        [
            format_table(
                ["memory MB", "p95 latency ms", "cost $/1M req"],
                [[f"{c.memory_mb:.0f}", f"{l * 1e3:.1f}", f"{cost:.3f}"] for c, l, cost in mem_rows],
                title="Fig. 1a: memory impact (B=8, T=50ms)",
            ),
            format_table(
                ["batch size", "p95 latency ms", "cost $/1M req"],
                [[str(c.batch_size), f"{l * 1e3:.1f}", f"{cost:.3f}"] for c, l, cost in b_rows],
                title="Fig. 1b: batch-size impact (M=1024, T=50ms)",
            ),
            format_table(
                ["timeout ms", "p95 latency ms", "cost $/1M req"],
                [[f"{c.timeout * 1e3:.0f}", f"{l * 1e3:.1f}", f"{cost:.3f}"] for c, l, cost in t_rows],
                title="Fig. 1c: timeout impact (M=1024, B=16)",
            ),
        ]
    )
    write_result("fig01_parameter_impact", text)

    # Paper shapes: latency monotone down in M, cost up in M; cost down in B
    # and T, latency up in B and T.
    mem_lat = [l for _, l, _ in mem_rows]
    mem_cost = [c for _, _, c in mem_rows]
    assert all(np.diff(mem_lat) < 0)
    assert all(np.diff(mem_cost) > 0)
    b_cost = [c for _, _, c in b_rows]
    assert b_cost[-1] < b_cost[0]
    t_cost = [c for _, _, c in t_rows]
    t_lat = [l for _, l, _ in t_rows]
    assert t_cost[-1] < t_cost[0]
    assert t_lat[-1] > t_lat[0]

    # Benchmark: one ground-truth simulation of a full segment.
    seg = wb.trace("azure").segment(14, relative=False)
    benchmark(lambda: simulate(seg, BatchConfig(1024.0, 8, 0.05), wb.platform))
