"""Ablation (beyond the paper's figures, motivated by §I.2): Transformer
encoder vs LSTM/GRU vs a summary-statistics MLP as the surrogate.

Expected shape: the attention-based model is at least competitive with the
recurrent models at equal budget, and the sequence models beat the MLP that
only sees aggregate statistics of the window."""

import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core import (
    DeepBATSurrogate,
    MLPSurrogate,
    RecurrentSurrogate,
    TrainConfig,
    generate_dataset,
    train_surrogate,
)
from repro.evaluation import format_table

SEQ_LEN = 32
BUDGET = TrainConfig(epochs=10, batch_size=32, patience=None, seed=0)


def _evaluate(model_factory, ds_train, ds_val):
    t0 = time.perf_counter()
    trained = train_surrogate(ds_train, model=model_factory(), config=BUDGET)
    train_time = time.perf_counter() - t0
    pred = trained.predict(ds_val.sequences, ds_val.features)
    err = float(
        np.mean(np.abs(pred - ds_val.targets) / np.maximum(np.abs(ds_val.targets), 1e-8))
        * 100
    )
    t0 = time.perf_counter()
    trained.predict(ds_val.sequences[:1], ds_val.features[:64])
    pred_time = time.perf_counter() - t0
    return err, train_time, pred_time


def test_ablation_surrogate_architecture(wb, benchmark):
    hist = wb.azure_training_history()
    ds_train = generate_dataset(hist, n_samples=700, seq_len=SEQ_LEN,
                                configs=wb.grid, platform=wb.platform, seed=3)
    ds_val = generate_dataset(hist, n_samples=200, seq_len=SEQ_LEN,
                              configs=wb.grid, platform=wb.platform, seed=4)

    factories = {
        "transformer": lambda: DeepBATSurrogate(seq_len=SEQ_LEN, seed=0),
        "lstm": lambda: RecurrentSurrogate(seq_len=SEQ_LEN, cell="lstm", seed=0),
        "gru": lambda: RecurrentSurrogate(seq_len=SEQ_LEN, cell="gru", seed=0),
        "mlp": lambda: MLPSurrogate(seq_len=SEQ_LEN, seed=0),
    }
    rows, errs = [], {}
    for name, factory in factories.items():
        err, t_train, t_pred = _evaluate(factory, ds_train, ds_val)
        errs[name] = err
        rows.append([name, f"{err:.1f}", f"{t_train:.1f}", f"{t_pred * 1e3:.1f}"])

    text = format_table(
        ["architecture", "held-out MAPE %", "train time s", "predict 64 cfgs ms"],
        rows,
        title="Ablation: surrogate architecture at equal training budget",
    )
    write_result("ablation_architecture", text)

    # Shape: the Transformer is competitive with the best recurrent model
    # (within 25 %) and clearly better than the aggregate-statistics MLP.
    best_rnn = min(errs["lstm"], errs["gru"])
    assert errs["transformer"] <= 1.25 * best_rnn
    assert errs["transformer"] < errs["mlp"]

    model = DeepBATSurrogate(seq_len=SEQ_LEN, seed=0)
    x = np.abs(np.random.default_rng(0).normal(size=(1, SEQ_LEN))) + 0.01
    f = np.random.default_rng(1).normal(size=(16, 3))
    benchmark(lambda: model.predict(x, f))
