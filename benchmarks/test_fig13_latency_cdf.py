"""Fig. 13 — predicted vs observed latency distribution on all four traces.

Paper numbers: MAPE over all percentiles of 2.85 % (Azure, in-distribution),
3.11 % (Twitter, unseen but similar), 3.32 % (Alibaba, OOD + fine-tuned),
3.07 % (synthetic, OOD + fine-tuned). Our substrate differs, so the shape
check is: single-digit-to-low-teens MAPE everywhere, with the in-
distribution traces at least as good as the OOD ones are after fine-tuning.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import interarrivals, sliding_windows
from repro.batching import BatchConfig, simulate
from repro.evaluation import cdf_percentile_mape, empirical_cdf, format_series, format_table

#: Per-trace fixed configurations (Fig. 13 uses one config per subplot).
CONFIGS = {
    "azure": BatchConfig(1024.0, 16, 0.1),
    "twitter": BatchConfig(1024.0, 10, 0.05),
    "alibaba": BatchConfig(512.0, 16, 0.1),
    "synthetic": BatchConfig(512.0, 10, 0.05),
}
EVAL_SEGMENTS = range(13, 19)


def _trace_mape(wb, name, model):
    trace = wb.trace(name)
    cfg = CONFIGS[name]
    seq_len = wb.settings.seq_len
    all_lat, preds = [], []
    for seg in EVAL_SEGMENTS:
        ts = trace.segment(seg, relative=False)
        if ts.size < seq_len + 2:
            continue
        all_lat.append(simulate(ts, cfg, wb.platform).latencies)
        x = interarrivals(trace.segment(seg))
        wins = sliding_windows(x, seq_len, stride=max(1, x.size // 40))[:40]
        feats = np.tile(cfg.as_array(), (len(wins), 1))
        preds.append(model.predict(wins, feats))
    observed = np.concatenate(all_lat)
    mean_pred = np.concatenate(preds).mean(axis=0)
    pcts = wb.spec.percentiles
    return (
        cdf_percentile_mape(mean_pred[1:], observed, pcts),
        mean_pred[1:],
        np.percentile(observed, pcts),
        observed,
    )


def test_fig13_latency_distribution(wb, base_model, benchmark):
    rows, lines = [], []
    mapes = {}
    for name in ("azure", "twitter", "alibaba", "synthetic"):
        model = base_model if name in ("azure", "twitter") else wb.finetuned_model(name)
        m, pred_p, obs_p, observed = _trace_mape(wb, name, model)
        mapes[name] = m
        rows.append([name,
                     "base" if name in ("azure", "twitter") else "fine-tuned",
                     f"{m:.2f}"])
        lines.append(format_series(f"{name} predicted percentiles (s)", pred_p, "{:.4f}"))
        lines.append(format_series(f"{name} observed percentiles (s)", obs_p, "{:.4f}"))
        grid, cdf = empirical_cdf(observed, n_points=10)
        lines.append(format_series(f"{name} observed CDF grid (s)", grid, "{:.4f}"))
        lines.append(format_series(f"{name} observed CDF value", cdf, "{:.2f}"))

    text = format_table(
        ["trace", "model", "percentile MAPE %"], rows,
        title="Fig. 13: predicted vs observed latency percentiles "
              "(paper: 2.85/3.11/3.32/3.07 %)",
    ) + "\n\n" + "\n".join(lines)
    write_result("fig13_latency_cdf", text)

    # Shape: the surrogate's distribution prediction is accurate on every
    # trace (within a generous band of the paper's 3 %), and the unseen-but-
    # similar Twitter result stays close to Azure's.
    for name, m in mapes.items():
        assert m < 25.0, f"{name}: MAPE {m:.1f}% too high"
    assert abs(mapes["twitter"] - mapes["azure"]) < 15.0

    x = interarrivals(wb.trace("azure").segment(13))
    wins = sliding_windows(x, wb.settings.seq_len, stride=200)[:8]
    feats = np.tile(CONFIGS["azure"].as_array(), (len(wins), 1))
    benchmark(lambda: base_model.predict(wins, feats))
