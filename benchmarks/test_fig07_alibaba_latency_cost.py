"""Fig. 7 — latency and cost on the Alibaba-like trace (one bursty hour).

Paper shape: BATCH's configurations (fitted on the stale previous hour)
violate the SLO on the bursty segment, while the fine-tuned DeepBAT stays
within it, at the price of a somewhat higher cost."""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation import format_table


def test_fig07_alibaba_hour(wb, alibaba_logs, benchmark):
    slo = wb.settings.slo
    log_b = alibaba_logs["batch"]
    log_d = alibaba_logs["deepbat_ft"]

    # Pick the most violating BATCH segment as the figure's "hour 5-6".
    worst = int(np.argmax(log_b.vcr_series()))
    o_b, o_d = log_b.outcomes[worst], log_d.outcomes[worst]
    rows = [
        ["BATCH", f"{o_b.p(95) * 1e3:.1f}", f"{o_b.vcr(slo):.1f}",
         f"{o_b.cost_per_request * 1e6:.3f}"],
        ["DeepBAT (fine-tuned)", f"{o_d.p(95) * 1e3:.1f}", f"{o_d.vcr(slo):.1f}",
         f"{o_d.cost_per_request * 1e6:.3f}"],
    ]
    text = format_table(
        ["controller", "p95 latency ms", "VCR %", "cost $/1M req"],
        rows,
        title=(f"Fig. 7: Alibaba-like segment {o_b.segment} "
               f"(burstiest for BATCH), SLO {slo * 1e3:.0f} ms"),
    )
    write_result("fig07_alibaba_latency_cost", text)

    # Paper shape: BATCH violates on the bursty hour; DeepBAT doesn't (or
    # violates far less).
    assert o_b.vcr(slo) > o_d.vcr(slo)
    assert o_d.vcr(slo) <= 25.0

    benchmark(lambda: (o_b.p(95), o_d.p(95)))
