"""Microbenchmarks of the fast simulation core → ``BENCH_simcore.json``.

Two measurements anchor the repo's performance trajectory:

* **Grid sweep** — ``simulate_grid`` groups the candidate grid by (B, T),
  forms batches once per group, and evaluates all memory tiers over the
  shared formation. Benchmarked against the naive per-config path
  (``simulate`` in a loop, one formation per config); the acceptance bar
  is ≥ 3× on the default 285-config grid, with bit-identical outputs.
* **Dataset labeling** — ``label_windows`` / ``generate_dataset`` with the
  batched path and the opt-in ``workers=N`` process pool. On multi-core
  hosts the pool scales labeling throughput; the JSON records the host's
  CPU count so single-core CI numbers are read in context. Parallel labels
  are asserted bit-identical to serial either way.

Run via ``make bench-perf``; results land in ``BENCH_simcore.json`` at the
repo root (requests/sec and labels/sec, naive vs fast).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.batching.config import config_grid
from repro.batching.simulator import simulate, simulate_grid
from repro.core.dataset import generate_dataset, label_window
from repro.core.features import TargetSpec
from repro.serverless.platform import ServerlessPlatform

RESULT_PATH = Path(__file__).parent.parent / "BENCH_simcore.json"

pytestmark = pytest.mark.perf


def _best_of(fn, repeats: int = 2) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs (guards against scheduler noise)."""
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, out = elapsed, result
    return best, out


def _merge_results(section: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data[section] = payload
    data["cpu_count"] = os.cpu_count()
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_grid_sweep_speedup():
    """Full-grid sweep: (B, T)-grouped fast path vs naive per-config."""
    ts = poisson_map(100.0).sample(duration=30.0, seed=0)
    grid = config_grid()
    platform = ServerlessPlatform()

    naive_s, naive = _best_of(lambda: [simulate(ts, c, platform) for c in grid])
    fast_s, fast = _best_of(lambda: simulate_grid(ts, grid, platform))

    # Equivalence first — a fast wrong answer is no speedup.
    for a, b in zip(naive, fast):
        np.testing.assert_array_equal(a.latencies, b.latencies)
        np.testing.assert_array_equal(a.batch_costs, b.batch_costs)

    speedup = naive_s / fast_s
    sweep_requests = ts.size * len(grid)
    payload = {
        "n_requests": int(ts.size),
        "n_configs": len(grid),
        "n_bt_groups": len({(c.batch_size, c.timeout) for c in grid}),
        "naive_seconds": round(naive_s, 4),
        "fast_seconds": round(fast_s, 4),
        "speedup": round(speedup, 2),
        "requests_per_sec_naive": round(sweep_requests / naive_s),
        "requests_per_sec_fast": round(sweep_requests / fast_s),
    }
    _merge_results("grid_sweep", payload)
    print(f"\ngrid sweep: {json.dumps(payload)}")
    assert speedup >= 3.0, f"grid fast path only {speedup:.2f}x over naive"


def test_labeling_throughput():
    """Dataset labeling: per-sample loop vs batched path vs process pool."""
    hist = np.diff(poisson_map(150.0).sample(duration=120.0, seed=1))
    grid = config_grid()
    platform = ServerlessPlatform()
    spec = TargetSpec()
    n_samples, seq_len, workers = 300, 64, max(2, os.cpu_count() or 1)

    def naive():
        # The pre-perf-layer path: one label_window call per sample.
        rng = np.random.default_rng(0)
        from repro.arrival.window import sample_windows
        from repro.batching.config import grid_features

        windows = sample_windows(hist, seq_len, n_samples, rng)
        chosen = rng.integers(0, len(grid), size=n_samples)
        targets = np.empty((n_samples, spec.n_outputs))
        for i in range(n_samples):
            targets[i] = label_window(windows[i], grid[chosen[i]], platform, spec)
        return grid_features(grid)[chosen], targets

    serial_s, (_, naive_targets) = _best_of(naive, repeats=1)
    batched_s, batched = _best_of(
        lambda: generate_dataset(hist, n_samples, seq_len=seq_len, configs=grid,
                                 platform=platform, spec=spec, seed=0),
        repeats=1,
    )
    parallel_s, parallel = _best_of(
        lambda: generate_dataset(hist, n_samples, seq_len=seq_len, configs=grid,
                                 platform=platform, spec=spec, seed=0,
                                 workers=workers),
        repeats=1,
    )

    np.testing.assert_array_equal(naive_targets, batched.targets)
    np.testing.assert_array_equal(batched.targets, parallel.targets)

    payload = {
        "n_samples": n_samples,
        "seq_len": seq_len,
        "workers": workers,
        "naive_seconds": round(serial_s, 4),
        "batched_seconds": round(batched_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "labels_per_sec_naive": round(n_samples / serial_s, 1),
        "labels_per_sec_batched": round(n_samples / batched_s, 1),
        "labels_per_sec_parallel": round(n_samples / parallel_s, 1),
    }
    _merge_results("labeling", payload)
    print(f"\nlabeling: {json.dumps(payload)}")
    # The pool's win is host-dependent (CPU count); correctness — parallel
    # labels bit-identical to serial — is the invariant asserted above.
    # Guard only against a pathological slowdown of the batched path.
    assert batched_s <= serial_s * 1.5
