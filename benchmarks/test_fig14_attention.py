"""Fig. 14 — attention-score visualization across the four traces.

Paper shape: the Azure-trained model's attention concentrates on the parts
of the sequence with long inter-arrival periods (burst boundaries), on all
four traces — including the three it never saw (generalization)."""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import interarrivals, latest_window
from repro.evaluation import format_table

TRACES = ("azure", "twitter", "alibaba", "synthetic")


def test_fig14_attention_scores(wb, base_model, benchmark):
    seq_len = wb.settings.seq_len
    rows = []
    lifts = {}
    for name in TRACES:
        trace = wb.trace(name)
        masses = []
        for seg in range(12, trace.n_segments):
            x = interarrivals(trace.segment(seg))
            if x.size < seq_len:
                continue
            window = latest_window(x, seq_len)
            scores = base_model.model.attention_scores(window / window.mean())
            k = max(1, seq_len // 10)
            top_gap_positions = np.argsort(window)[-k:]
            masses.append(scores[top_gap_positions].sum() / (k / seq_len))
            if len(masses) >= 6:
                break
        lifts[name] = float(np.mean(masses))
        rows.append([name, f"{lifts[name]:.2f}x"])

    text = format_table(
        ["trace", "attention lift on top-10% longest gaps"],
        rows,
        title="Fig. 14: attention concentration on long-inter-arrival "
              "positions (model trained on Azure only)",
    )
    write_result("fig14_attention", text)

    # Paper shape: attention correlates with long-gap positions on every
    # trace (lift > 1 = more attention than a uniform model would give).
    for name, lift in lifts.items():
        assert lift > 1.0, f"{name}: no attention concentration (lift {lift:.2f})"

    x = interarrivals(wb.trace("azure").segment(13))
    window = latest_window(x, seq_len)
    benchmark(lambda: base_model.model.attention_scores(window / window.mean()))
