"""Fig. 4 — arrival rate of the four workloads. Paper shape: Azure and
Twitter vary moderately (diurnal); Alibaba and the MAP-synthetic trace swing
sharply between near-idle and hot periods."""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import azure_like
from repro.evaluation import format_series, format_table

TRACES = ("azure", "twitter", "alibaba", "synthetic")


def test_fig04_arrival_rate_series(wb, benchmark):
    lines = []
    stats = []
    swings = {}
    for name in TRACES:
        trace = wb.trace(name)
        rates = np.array([trace.segment_rate(i) for i in range(trace.n_segments)])
        lines.append(format_series(f"{name} req/s per segment", rates, "{:.0f}"))
        swing = rates.max() / max(rates.min(), 1e-9)
        swings[name] = swing
        stats.append([name, f"{rates.mean():.0f}", f"{rates.min():.0f}",
                      f"{rates.max():.0f}", f"{swing:.1f}x"])
    text = "\n".join(lines) + "\n\n" + format_table(
        ["trace", "mean req/s", "min", "max", "max/min swing"], stats,
        title="Fig. 4: arrival-rate profile of the four workloads",
    )
    write_result("fig04_arrival_rates", text)

    # Paper shape: the bursty traces swing far more than Azure/Twitter.
    assert swings["alibaba"] > 2 * swings["twitter"]
    assert swings["synthetic"] > 2 * swings["twitter"]

    benchmark(lambda: azure_like(seed=0, n_segments=2, segment_duration=30.0))
