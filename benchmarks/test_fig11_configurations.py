"""Fig. 11 — the configurations (memory, batch size, timeout) returned by
DeepBAT, BATCH, and the ground truth on a bursty synthetic hour.

Paper shape: DeepBAT's choices track the ground-truth optimum more closely
than BATCH's (which reflect the stale previous hour)."""

import numpy as np

from benchmarks.conftest import write_result
from repro.arrival import interarrivals
from repro.baseline import BATCHController
from repro.batching import ground_truth_optimum
from repro.core import DeepBATController
from repro.evaluation import format_table

SEGMENTS = (3, 4)  # the paper's hour 3-4


def test_fig11_returned_configurations(wb, benchmark):
    slo = wb.settings.slo
    trace = wb.trace("synthetic")
    from benchmarks.conftest import deepbat_controller

    deepbat = deepbat_controller(wb, wb.finetuned_model("synthetic"), trace.segment(0))
    batch = BATCHController(configs=wb.grid, profile=wb.platform.profile,
                            pricing=wb.platform.pricing)

    rows = []
    distances = {"DeepBAT": [], "BATCH": []}
    for seg in SEGMENTS:
        hist = interarrivals(trace.segment(seg - 1))
        future = trace.segment(seg, relative=False)
        gt_cfg, _ = ground_truth_optimum(future, wb.grid, wb.platform, slo)
        d_cfg = deepbat.choose(hist, slo).config
        b_cfg = batch.choose(hist, slo).config
        rows.append([seg, str(gt_cfg), str(d_cfg), str(b_cfg)])
        for name, cfg in (("DeepBAT", d_cfg), ("BATCH", b_cfg)):
            # Normalized parameter distance to the ground-truth optimum.
            distances[name].append(
                abs(np.log2(cfg.memory_mb / gt_cfg.memory_mb)) / 5
                + abs(cfg.batch_size - gt_cfg.batch_size) / 32
                + abs(cfg.timeout - gt_cfg.timeout) / 0.2
            )

    text = format_table(
        ["segment", "ground truth", "DeepBAT", "BATCH"],
        rows,
        title="Fig. 11: configurations returned on synthetic segments 3-4",
    ) + (
        f"\n\nmean normalized distance to optimum: "
        f"DeepBAT={np.mean(distances['DeepBAT']):.3f} "
        f"BATCH={np.mean(distances['BATCH']):.3f}"
    )
    write_result("fig11_configurations", text)

    hist = interarrivals(trace.segment(SEGMENTS[0] - 1))
    benchmark(lambda: deepbat.choose(hist, slo))
