"""Fig. 8 — VCR per hour (12 hours) on the Alibaba-like trace.

Paper shape: BATCH shows large VCR spikes on the hours whose workload
differs from the previous hour (65.9 %/65.12 % in the paper's 4th/5th
hours); fine-tuned DeepBAT stays far lower (2.27 %/4.65 %); the pretrained
(no fine-tuning) DeepBAT sits in between (14.18 %/17.06 %)."""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation import format_series, format_table


def test_fig08_vcr_series(wb, alibaba_logs, benchmark):
    v_batch = alibaba_logs["batch"].vcr_series()
    v_pre = alibaba_logs["deepbat_pre"].vcr_series()
    v_ft = alibaba_logs["deepbat_ft"].vcr_series()

    text = "\n".join([
        format_series("BATCH VCR %        ", v_batch, "{:5.1f}"),
        format_series("DeepBAT pretrained ", v_pre, "{:5.1f}"),
        format_series("DeepBAT fine-tuned ", v_ft, "{:5.1f}"),
        "",
        format_table(
            ["controller", "mean VCR %", "max VCR %"],
            [
                ["BATCH", f"{v_batch.mean():.2f}", f"{v_batch.max():.2f}"],
                ["DeepBAT pretrained", f"{v_pre.mean():.2f}", f"{v_pre.max():.2f}"],
                ["DeepBAT fine-tuned", f"{v_ft.mean():.2f}", f"{v_ft.max():.2f}"],
            ],
            title="Fig. 8: VCR per segment, Alibaba-like trace, 12 segments, SLO 100 ms",
        ),
    ])
    write_result("fig08_alibaba_vcr", text)

    # Paper shapes: DeepBAT (fine-tuned) beats BATCH decisively on mean VCR,
    # and fine-tuning improves on the pretrained model.
    assert v_ft.mean() < v_batch.mean()
    assert v_ft.mean() <= v_pre.mean() + 1e-9
    # BATCH suffers at least one serious violation spike on this trace.
    assert v_batch.max() >= 20.0

    benchmark(lambda: alibaba_logs["deepbat_ft"].vcr_series())
