"""Fig. 15 — sensitivity analysis.

(a) Sequence length: prediction time per sequence rises sharply with the
window length while the error falls — the paper picks 256 as the balance
point (we sweep a compressed range, same trade-off shape).
(b) Encoder layers: 2 layers suffice; 1 underfits, more layers do not help.
"""

import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core import DeepBATSurrogate, TrainConfig, generate_dataset, train_surrogate
from repro.evaluation import format_table

SEQ_LENS = (16, 32, 64, 128)
LAYER_COUNTS = (1, 2, 4)
TRAIN_BUDGET = TrainConfig(epochs=8, batch_size=32, patience=None, seed=0)


def _train_and_score(wb, seq_len, num_layers, hist):
    ds = generate_dataset(
        hist, n_samples=500, seq_len=seq_len, configs=wb.grid,
        platform=wb.platform, seed=1,
    )
    model = DeepBATSurrogate(seq_len=seq_len, num_layers=num_layers, seed=0)
    trained = train_surrogate(ds, model=model, config=TRAIN_BUDGET)
    val_mape = trained.history.val_mape[trained.history.best_epoch]
    # Prediction time per sequence over the whole candidate grid.
    window = ds.sequences[0]
    t0 = time.perf_counter()
    from repro.batching import grid_features

    trained.predict(window, grid_features(wb.grid))
    pred_time = time.perf_counter() - t0
    return val_mape, pred_time


def test_fig15_sensitivity(wb, benchmark):
    hist = wb.azure_training_history()

    # (a) sequence length sweep
    seq_rows, times, errors = [], [], []
    for sl in SEQ_LENS:
        mape_v, pred_t = _train_and_score(wb, sl, 2, hist)
        seq_rows.append([sl, f"{pred_t * 1e3:.1f}", f"{mape_v:.1f}"])
        times.append(pred_t)
        errors.append(mape_v)

    # (b) encoder layer sweep at a fixed length
    layer_rows, layer_err = [], {}
    for nl in LAYER_COUNTS:
        mape_v, _ = _train_and_score(wb, 32, nl, hist)
        layer_rows.append([nl, f"{mape_v:.1f}"])
        layer_err[nl] = mape_v

    text = format_table(
        ["seq length", "prediction time ms (full grid)", "val MAPE %"],
        seq_rows, title="Fig. 15a: sequence-length trade-off",
    ) + "\n\n" + format_table(
        ["encoder layers", "val MAPE %"],
        layer_rows, title="Fig. 15b: encoder-layer ablation (seq len 32)",
    )
    write_result("fig15_sensitivity", text)

    # Paper shapes: prediction time grows with sequence length; the longest
    # window is not *less* accurate than the shortest; 2 layers do not lose
    # to 1, and 4 layers bring no decisive gain over 2.
    assert times[-1] > times[0]
    assert errors[-1] <= errors[0] * 1.25
    assert layer_err[2] <= layer_err[1] * 1.25
    assert layer_err[4] >= layer_err[2] * 0.5

    benchmark(lambda: wb.base_model().predict(
        hist[: wb.settings.seq_len],
        np.tile(wb.grid[0].as_array(), (8, 1)),
    ))
