"""Fig. 9 — latency and cost on the MAP-generated synthetic trace.

Paper shape: qualitatively the same as the Alibaba results — BATCH violates
the SLO after sudden intensity changes; DeepBAT avoids the violations at a
somewhat higher cost (its loss deliberately penalizes violations, §IV-D)."""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation import format_table


def test_fig09_synthetic_hour(wb, synthetic_logs, benchmark):
    slo = wb.settings.slo
    log_b = synthetic_logs["batch"]
    log_d = synthetic_logs["deepbat_ft"]

    worst = int(np.argmax(log_b.vcr_series()))
    o_b, o_d = log_b.outcomes[worst], log_d.outcomes[worst]
    rows = [
        ["BATCH", f"{o_b.p(95) * 1e3:.1f}", f"{o_b.vcr(slo):.1f}",
         f"{o_b.cost_per_request * 1e6:.3f}"],
        ["DeepBAT (fine-tuned)", f"{o_d.p(95) * 1e3:.1f}", f"{o_d.vcr(slo):.1f}",
         f"{o_d.cost_per_request * 1e6:.3f}"],
    ]
    text = format_table(
        ["controller", "p95 latency ms", "VCR %", "cost $/1M req"],
        rows,
        title=(f"Fig. 9: synthetic (MAP) segment {o_b.segment}, "
               f"SLO {slo * 1e3:.0f} ms"),
    )
    write_result("fig09_synthetic_latency_cost", text)

    # Paper shape: fewer violations for DeepBAT than BATCH on the bursty
    # hour; DeepBAT's safety can cost more (assert only the violation side).
    assert o_d.vcr(slo) < o_b.vcr(slo)

    benchmark(lambda: (o_b.cost_per_request, o_d.cost_per_request))
