"""The Workload Parser (Fig. 2, §III-C).

Unlike BATCH's MAP-fitting front end, the parser simply collects arrival
timestamps and exposes the raw inter-arrival window the surrogate consumes
— no fitting step, no fitting error, and statistics can refresh on every
arrival.
"""

from __future__ import annotations

import numpy as np

from repro.arrival.window import latest_window


class WorkloadParser:
    """Streaming collector of arrival timestamps → inter-arrival windows."""

    def __init__(self, window_length: int = 256, max_history: int = 100_000) -> None:
        if window_length < 1:
            raise ValueError(f"window_length must be >= 1, got {window_length}")
        if max_history < window_length + 1:
            raise ValueError("max_history must exceed window_length")
        self.window_length = window_length
        self.max_history = max_history
        self._times: list[float] = []

    @property
    def n_observed(self) -> int:
        return len(self._times)

    def observe(self, arrival_time: float) -> None:
        """Record one arrival (non-decreasing times enforced)."""
        if self._times and arrival_time < self._times[-1]:
            raise ValueError(
                f"arrival times must be non-decreasing: {arrival_time} < {self._times[-1]}"
            )
        self._times.append(float(arrival_time))
        if len(self._times) > self.max_history:
            del self._times[: len(self._times) - self.max_history]

    def observe_many(self, arrival_times: np.ndarray) -> None:
        for t in np.asarray(arrival_times, dtype=float):
            self.observe(float(t))

    def interarrivals(self) -> np.ndarray:
        """All currently held inter-arrival times."""
        if len(self._times) < 2:
            return np.empty(0)
        return np.diff(np.asarray(self._times))

    def window(self) -> np.ndarray:
        """The most recent ``window_length`` inter-arrivals, left-padded
        when the history is still short (§III-A padding note)."""
        return latest_window(self.interarrivals(), self.window_length)

    def has_full_window(self) -> bool:
        return len(self._times) >= self.window_length + 1

    def reset(self) -> None:
        self._times.clear()
