"""The unified Controller/Decision API.

Every chooser — DeepBAT, BATCH, the reactive baseline, the ground-truth
oracle, and any test double — returns a :class:`Decision` (or a subclass
adding controller-specific detail). The evaluation harness and the
telemetry layer program against exactly this surface, so there is one
contract instead of per-controller duck typing:

* ``config`` — the chosen ``(M, B, T)`` batching configuration;
* ``decision_time`` — wall-clock seconds the controller spent deciding
  (the §IV-F comparison metric);
* ``predictions`` — optional model outputs that justified the choice;
* ``diagnostics`` — optional free-form extras for logging/debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.batching.config import BatchConfig


@dataclass(frozen=True)
class Decision:
    """What every chooser returns: a configuration plus how it was reached."""

    config: BatchConfig
    decision_time: float = 0.0
    predictions: np.ndarray | None = None
    diagnostics: Mapping[str, Any] | None = None
