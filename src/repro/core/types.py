"""The unified Controller/Decision API.

Every chooser — DeepBAT, BATCH, the reactive baseline, the ground-truth
oracle, and any test double — returns a :class:`Decision` (or a subclass
adding controller-specific detail). The evaluation harness and the
telemetry layer program against exactly this surface, so there is one
contract instead of per-controller duck typing:

* ``config`` — the chosen ``(M, B, T)`` batching configuration;
* ``decision_time`` — wall-clock seconds the controller spent deciding
  (the §IV-F comparison metric);
* ``predictions`` — optional model outputs that justified the choice;
* ``diagnostics`` — optional free-form extras for logging/debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.batching.config import BatchConfig


@dataclass(frozen=True)
class Decision:
    """What every chooser returns: a configuration plus how it was reached."""

    config: BatchConfig
    decision_time: float = 0.0
    predictions: np.ndarray | None = None
    diagnostics: Mapping[str, Any] | None = None

    @property
    def degraded(self) -> bool:
        """True when this decision is a degraded-mode fallback (the
        controller re-issued its last known-good choice)."""
        return bool(self.diagnostics and self.diagnostics.get("degraded"))


def history_fault(interarrival_history: np.ndarray) -> str | None:
    """Why an inter-arrival history is unusable, or ``None`` if it is fine.

    A corrupted window — NaN/inf from a broken telemetry feed, or negative
    inter-arrivals from out-of-order timestamps — must not reach a fitting
    or inference stage where it would poison the decision silently; the
    controllers route it into degraded-mode serving instead.
    """
    x = np.asarray(interarrival_history, dtype=float)
    if x.size and not np.all(np.isfinite(x)):
        return "inter-arrival history contains NaN/inf"
    if x.size and np.any(x < 0):
        return "inter-arrival history contains negative inter-arrivals"
    return None
