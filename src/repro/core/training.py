"""Offline training and OOD fine-tuning of the surrogate (§III-D).

Loss: ``L = α·MAPE + (1−α)·Huber_δ`` (Eq. 9; α=0.05, δ=1), with the
SLO-violation up-weighting the paper describes ("intentionally defined to
penalize more for those configurations that violate the SLO"). Optimizer:
Adam, lr=1e-3, batch size 8, 100 epochs (all paper defaults; the test and
benchmark suites use smaller budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dataset import SurrogateDataset
from repro.core.features import FeaturePipeline
from repro.core.surrogate import DeepBATSurrogate
from repro.nn.data import ArrayDataset, DataLoader, train_val_split
from repro.nn.losses import combined_loss, slo_violation_weights
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.telemetry.metrics import get_registry
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters (defaults = paper §III-D)."""

    epochs: int = 100
    batch_size: int = 8
    lr: float = 1e-3
    alpha: float = 0.05
    huber_delta: float = 1.0
    grad_clip: float = 5.0
    val_fraction: float = 0.2
    patience: int | None = 15
    slo: float | None = None
    slo_penalty: float = 4.0
    slo_percentile: float = 95.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if not 0 < self.val_fraction < 1:
            raise ValueError("val_fraction must be in (0, 1)")


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_mape: list[float] = field(default_factory=list)

    @property
    def best_epoch(self) -> int:
        if not self.val_loss:
            raise RuntimeError("no epochs recorded")
        return int(np.argmin(self.val_loss))


@dataclass
class TrainedSurrogate:
    """A surrogate plus the pipeline its inputs must go through."""

    model: DeepBATSurrogate
    pipeline: FeaturePipeline
    history: TrainingHistory

    def predict(self, sequence: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Predict targets [cost per 1M, percentiles] for raw inputs."""
        seq = np.atleast_2d(np.asarray(sequence, dtype=float))
        feats = np.atleast_2d(np.asarray(features, dtype=float))
        seq_s, feats_s = self.pipeline.transform(seq, feats)
        return self.model.predict(seq_s, feats_s)

    def scale_features(self, features: np.ndarray) -> np.ndarray:
        """Standardize raw (M, B, T) features once, for reuse across calls."""
        return self.pipeline.config.transform(
            np.atleast_2d(np.asarray(features, dtype=float))
        )

    def predict_scaled(
        self, sequence: np.ndarray, features_scaled: np.ndarray
    ) -> np.ndarray:
        """Predict with *pre-standardized* config features.

        The candidate grid is constant across decisions, so callers that
        sweep it every round (:class:`~repro.core.controller.DeepBATController`)
        standardize it once via :meth:`scale_features` and skip the
        per-call transform; sequence scaling still runs per window.
        """
        seq = np.atleast_2d(np.asarray(sequence, dtype=float))
        seq_s = self.pipeline.sequence.transform(seq)
        return self.model.predict(seq_s, np.atleast_2d(features_scaled))


def _epoch_weights(targets: np.ndarray, cfg: TrainConfig, spec) -> np.ndarray | None:
    if cfg.slo is None:
        return None
    col = 1 + spec.percentile_index(cfg.slo_percentile)
    return slo_violation_weights(targets[:, col], cfg.slo, cfg.slo_penalty)


def train_surrogate(
    dataset: SurrogateDataset,
    model: DeepBATSurrogate | None = None,
    config: TrainConfig | None = None,
    pipeline: FeaturePipeline | None = None,
) -> TrainedSurrogate:
    """Fit a surrogate on a simulated dataset (fresh scalers unless given).

    With ``pipeline`` provided (already fitted) this is a *fine-tuning* run:
    the existing scalers are reused so old and new data share a
    representation, as §III-D's OOD procedure requires.
    """
    cfg = config if config is not None else TrainConfig()
    rng = as_rng(cfg.seed)

    if model is None:
        model = DeepBATSurrogate(
            seq_len=dataset.sequences.shape[1],
            n_outputs=dataset.spec.n_outputs,
            seed=rng,
        )
    if model.seq_len != dataset.sequences.shape[1]:
        raise ValueError(
            f"model seq_len {model.seq_len} != dataset window {dataset.sequences.shape[1]}"
        )
    if pipeline is None:
        pipeline = FeaturePipeline(spec=dataset.spec)
        pipeline.fit(dataset.sequences, dataset.features)

    seq_s, feats_s = pipeline.transform(dataset.sequences, dataset.features)
    data = ArrayDataset(seq_s, feats_s, dataset.targets)
    train_set, val_set = train_val_split(data, cfg.val_fraction, seed=rng)
    loader = DataLoader(train_set, batch_size=cfg.batch_size, shuffle=True, seed=rng)

    optimizer = Adam(model.parameters(), lr=cfg.lr)
    history = TrainingHistory()
    registry = get_registry()
    best_state = None
    best_val = np.inf
    stale = 0

    for _ in range(cfg.epochs):
        model.train()
        losses = []
        with registry.span("train.epoch"):
            for seq_b, feat_b, tgt_b in loader:
                pred = model(Tensor(seq_b), Tensor(feat_b))
                weights = _epoch_weights(tgt_b, cfg, dataset.spec)
                loss = combined_loss(
                    pred, Tensor(tgt_b), alpha=cfg.alpha, delta=cfg.huber_delta,
                    weights=weights,
                )
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(optimizer.params, cfg.grad_clip)
                optimizer.step()
                losses.append(loss.item())
            history.train_loss.append(float(np.mean(losses)))

            val_loss, val_mape = _validate(model, val_set, cfg)
            history.val_loss.append(val_loss)
            history.val_mape.append(val_mape)
        if registry.enabled:
            registry.counter("train.epochs").inc()
            registry.gauge("train.loss").set(history.train_loss[-1])
            registry.gauge("train.val_loss").set(val_loss)
            registry.gauge("train.val_mape").set(val_mape)
            registry.gauge("train.lr").set(optimizer.lr)

        if val_loss < best_val - 1e-9:
            best_val = val_loss
            best_state = model.state_dict()
            stale = 0
        else:
            stale += 1
            if cfg.patience is not None and stale >= cfg.patience:
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    return TrainedSurrogate(model=model, pipeline=pipeline, history=history)


def _validate(model: DeepBATSurrogate, val_set: ArrayDataset, cfg: TrainConfig) -> tuple[float, float]:
    model.eval()
    seq, feats, tgt = val_set[np.arange(len(val_set))]
    pred = model(Tensor(seq), Tensor(feats))
    loss = combined_loss(pred, Tensor(tgt), alpha=cfg.alpha, delta=cfg.huber_delta)
    mape = float(
        np.mean(np.abs(pred.data - tgt) / np.maximum(np.abs(tgt), 1e-8)) * 100.0
    )
    return loss.item(), mape


def fine_tune(
    trained: TrainedSurrogate,
    new_dataset: SurrogateDataset,
    epochs: int = 20,
    lr: float = 3e-4,
    config: TrainConfig | None = None,
) -> TrainedSurrogate:
    """Fine-tune a pre-trained surrogate on a small OOD sample (§III-D).

    Reuses the fitted pipeline (representation continuity) and a reduced
    epoch/learning-rate budget, exactly as the paper's fast-reaction
    procedure prescribes.
    """
    base = config if config is not None else TrainConfig()
    ft_cfg = replace(base, epochs=epochs, lr=lr, patience=None)
    return train_surrogate(
        new_dataset, model=trained.model, config=ft_cfg, pipeline=trained.pipeline
    )


def save_trained(trained: TrainedSurrogate, path) -> None:
    """Persist a trained surrogate (weights + scalers + architecture) as
    one ``.npz`` checkpoint loadable with :func:`load_trained`."""
    import json

    state = {f"model.{k}": v for k, v in trained.model.state_dict().items()}
    state.update({f"pipeline.{k}": v for k, v in trained.pipeline.state_dict().items()})
    hp = getattr(trained.model, "hyperparameters", None)
    if hp is None:
        raise ValueError(
            "model does not record hyperparameters; only DeepBATSurrogate "
            "checkpoints are supported"
        )
    state["hyperparameters"] = np.array([json.dumps(hp)])
    np.savez_compressed(path, **state)


def load_trained(path) -> TrainedSurrogate:
    """Load a checkpoint written by :func:`save_trained`."""
    import json

    from repro.core.surrogate import DeepBATSurrogate

    with np.load(path, allow_pickle=False) as archive:
        state = {k: archive[k] for k in archive.files}
    hp = json.loads(str(state.pop("hyperparameters")[0]))
    model = DeepBATSurrogate(**hp, seed=0)
    model.load_state_dict(
        {k[len("model."):]: v for k, v in state.items() if k.startswith("model.")}
    )
    pipeline = FeaturePipeline()
    pipeline.load_state_dict(
        {k[len("pipeline."):]: v for k, v in state.items() if k.startswith("pipeline.")}
    )
    return TrainedSurrogate(model=model, pipeline=pipeline, history=TrainingHistory())


def compute_gamma(predicted: np.ndarray, ground_truth: np.ndarray) -> float:
    """Penalty factor γ = MAPE(P̂, P) between predicted and simulated
    latency percentiles (§III-D, Model Fine-Tuning) — used to tighten the
    SLO constraint during optimization on unfamiliar workloads."""
    predicted = np.asarray(predicted, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    if predicted.shape != ground_truth.shape:
        raise ValueError("predicted and ground truth must align")
    denom = np.maximum(np.abs(ground_truth), 1e-8)
    return float(np.mean(np.abs(predicted - ground_truth) / denom))


def estimate_gamma(
    trained: TrainedSurrogate,
    interarrival_history: np.ndarray,
    configs,
    platform=None,
    n_samples: int = 160,
    seed: int = 0,
    method: str = "quantile",
    quantile: float = 0.9,
    headroom: float = 2.5,
    percentile: float = 95.0,
    stress_factors: tuple[float, ...] = (1.0 / 3.0, 3.0),
    slo: float | None = None,
    workers: int | None = None,
) -> float:
    """Measure γ for a workload by coupled simulation (§III-D).

    Samples (window × config) pairs from ``interarrival_history``, compares
    the surrogate's latency predictions with the simulated ground truth,
    and derives the SLO-tightening margin γ:

    * ``method="quantile"`` (default): γ is the ``quantile``-level
      *underprediction* margin of the SLO percentile —
      ``Q_q(true/pred − 1)`` clipped at 0 — so the tightened constraint
      ``SLO/(1+γ)`` covers the error tail that actually causes violations,
      not just the mean error;
    * ``method="mape"``: the paper-literal γ = MAPE(P̂, P), scaled by
      ``headroom`` (symmetric error; looser calibration).

    ``stress_factors`` additionally evaluates each window rescaled in time
    (rate regime shifts ×1/3 and ×3 by default) with freshly simulated
    labels. A bursty trace's observable first hour rarely contains the
    regimes of later hours; stress calibration measures the margin the
    model needs under the shifts it will actually face.
    """
    from repro.core.dataset import SurrogateDataset, generate_dataset, label_windows
    from repro.serverless.platform import ServerlessPlatform

    if method not in ("quantile", "mape"):
        raise ValueError(f"method must be 'quantile' or 'mape', got {method!r}")
    platform = platform if platform is not None else ServerlessPlatform()
    configs = list(configs)
    ds = generate_dataset(
        np.asarray(interarrival_history, dtype=float),
        n_samples=n_samples,
        seq_len=trained.model.seq_len,
        configs=configs,
        platform=platform,
        spec=trained.pipeline.spec,
        seed=seed,
        workers=workers,
    )
    datasets = [ds]
    feats_lookup = {tuple(c.as_array()): c for c in configs}
    sample_configs = [feats_lookup[tuple(row)] for row in ds.features]
    for k, factor in enumerate(stress_factors):
        if factor == 1.0:
            continue
        seqs = ds.sequences * factor
        targets = label_windows(
            seqs, sample_configs, platform, ds.spec,
            seed=seed + 1 + k if seed is not None else k,
            workers=workers,
        )
        datasets.append(SurrogateDataset(seqs, ds.features, targets, ds.spec))

    all_pred, all_true = [], []
    for d in datasets:
        all_pred.append(trained.predict(d.sequences, d.features))
        all_true.append(d.targets)
    preds = np.concatenate(all_pred)
    targets = np.concatenate(all_true)

    if method == "mape":
        return headroom * compute_gamma(preds[:, 1:], targets[:, 1:])
    col = 1 + ds.spec.percentile_index(percentile)
    pred_lat = np.maximum(preds[:, col], 1e-6)
    ratio = targets[:, col] / pred_lat - 1.0
    if slo is not None:
        # Violations are born at the decision boundary: restrict the
        # calibration to samples whose *predicted* latency is near the SLO
        # (where the optimizer actually trades off), falling back to the
        # full sample when the boundary region is too thin.
        near = (pred_lat > 0.5 * slo) & (pred_lat < 1.5 * slo)
        if near.sum() >= 20:
            ratio = ratio[near]
    return float(max(0.0, np.quantile(ratio, quantile)))
