"""Out-of-distribution (drift) detection — when to fine-tune.

§III-D triggers fine-tuning "if there is a noticeable performance drop
observed due to differences in data distributions ... (namely
out-of-distribution, short as OOD)". This module operationalizes that
trigger two ways:

* **statistical drift** (:class:`WorkloadDriftDetector`) — fit the training
  workload's window-statistics envelope (rate, CV², lag-1 ACF, tail
  quantile ratio) and flag live windows falling outside it. Cheap enough to
  run on every window, no simulation needed.
* **performance drift** (:func:`prediction_drift`) — the literal "noticeable
  performance drop": compare the surrogate's recent prediction error
  (via coupled simulation) against its validation-time error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrival.stats import autocorrelation
from repro.arrival.window import sliding_windows


def window_statistics(windows: np.ndarray) -> np.ndarray:
    """Per-window drift features: log mean inter-arrival, CV², lag-1 ACF,
    and the p99/p50 tail ratio. Shape ``(n_windows, 4)``."""
    w = np.atleast_2d(np.asarray(windows, dtype=float))
    mean = np.maximum(w.mean(axis=1), 1e-12)
    std = w.std(axis=1)
    cv2 = (std / mean) ** 2
    centered = w - mean[:, None]
    denom = np.maximum((centered**2).sum(axis=1), 1e-12)
    rho1 = (centered[:, :-1] * centered[:, 1:]).sum(axis=1) / denom
    q50 = np.maximum(np.percentile(w, 50, axis=1), 1e-12)
    q99 = np.percentile(w, 99, axis=1)
    return np.column_stack([np.log(mean), cv2, rho1, q99 / q50])


@dataclass
class WorkloadDriftDetector:
    """Envelope-based OOD detector over window statistics.

    ``fit`` learns per-feature quantile bounds (with a relative margin) on
    the training workload; ``score`` returns the fraction of features of a
    live window outside the envelope, and ``is_drifted`` thresholds it.
    """

    margin: float = 0.25
    lower_q: float = 1.0
    upper_q: float = 99.0
    #: Fraction of features outside the envelope that counts as drift; each
    #: feature is independently diagnostic (a pure rate shift only moves the
    #: rate feature), so one of four suffices by default.
    threshold: float = 0.25
    lo_: np.ndarray | None = None
    hi_: np.ndarray | None = None
    #: Window length the envelope was fitted at. The ACF/tail features are
    #: not length-invariant, so ``score`` validates live windows against it.
    window_length_: int | None = None

    def fit(self, training_interarrivals: np.ndarray, window_length: int,
            stride: int | None = None) -> "WorkloadDriftDetector":
        """Learn the envelope from sliding windows of the training data."""
        x = np.asarray(training_interarrivals, dtype=float)
        stride = stride if stride is not None else max(1, window_length // 2)
        windows = sliding_windows(x, window_length, stride)
        if len(windows) < 10:
            raise ValueError(
                f"need at least 10 training windows, got {len(windows)}"
            )
        stats = window_statistics(windows)
        lo = np.percentile(stats, self.lower_q, axis=0)
        hi = np.percentile(stats, self.upper_q, axis=0)
        span = np.maximum(hi - lo, 1e-9)
        self.lo_ = lo - self.margin * span
        self.hi_ = hi + self.margin * span
        self.window_length_ = int(window_length)
        return self

    def score(self, window: np.ndarray) -> float:
        """Fraction of drift features outside the training envelope."""
        if self.lo_ is None or self.hi_ is None:
            raise RuntimeError("detector has not been fitted")
        w = np.asarray(window, dtype=float)
        if self.window_length_ is not None and w.shape[-1] != self.window_length_:
            raise ValueError(
                f"window length {w.shape[-1]} does not match the envelope's "
                f"fitted length {self.window_length_}"
            )
        stats = window_statistics(w)[0]
        outside = (stats < self.lo_) | (stats > self.hi_)
        return float(outside.mean())

    def is_drifted(self, window: np.ndarray) -> bool:
        """True when the window looks out-of-distribution (fine-tune!)."""
        return self.score(window) >= self.threshold

    # ------------------------------------------------------------ state export
    def get_state(self) -> dict:
        """Snapshot the fitted envelope (for serving-runtime checkpoints).

        The detector can be refit mid-run (drift-triggered retraining), so
        a crash-safe resume must restore the envelope that was live at the
        snapshot, not the one the detector was constructed with.
        """
        return {
            "margin": self.margin,
            "lower_q": self.lower_q,
            "upper_q": self.upper_q,
            "threshold": self.threshold,
            "lo": None if self.lo_ is None else self.lo_.copy(),
            "hi": None if self.hi_ is None else self.hi_.copy(),
            "window_length": self.window_length_,
        }

    def set_state(self, state: dict) -> "WorkloadDriftDetector":
        """Restore a :meth:`get_state` snapshot (bit-exact envelope)."""
        for name in ("margin", "lower_q", "upper_q", "threshold"):
            if name not in state:
                raise ValueError(f"drift-detector state is missing {name!r}")
            setattr(self, name, float(state[name]))
        lo, hi = state.get("lo"), state.get("hi")
        self.lo_ = None if lo is None else np.asarray(lo, dtype=float).copy()
        self.hi_ = None if hi is None else np.asarray(hi, dtype=float).copy()
        # Pre-window-length snapshots carry no "window_length" key; restore
        # them without length validation rather than refusing to load.
        wl = state.get("window_length")
        self.window_length_ = None if wl is None else int(wl)
        return self


def prediction_drift(
    recent_error: float,
    baseline_error: float,
    tolerance: float = 2.0,
) -> bool:
    """The literal §III-D trigger: the surrogate's recent coupled-simulation
    error exceeds its validation-time error by more than ``tolerance``×."""
    if baseline_error < 0 or recent_error < 0:
        raise ValueError("errors must be non-negative")
    if tolerance <= 1.0:
        raise ValueError(f"tolerance must be > 1, got {tolerance}")
    return recent_error > tolerance * max(baseline_error, 1e-12)
