"""Training-set generation for the surrogate (§III-D, Offline Model
Training).

Following the paper: randomly sample arrival-sequence windows of length
``l`` from the processed historical data, pair each with a randomly picked
configuration (M, B, T) from the candidate space, and label the pair with
the simulated ground truth — per-request cost and latency percentiles of
serving exactly that window under that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrival.window import sample_windows
from repro.batching.config import BatchConfig, config_grid, grid_features
from repro.batching.simulator import simulate
from repro.core.features import TargetSpec
from repro.serverless.platform import ServerlessPlatform
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class SurrogateDataset:
    """Aligned (sequence, config-features, targets) arrays.

    ``sequences``: (n, seq_len) raw inter-arrival windows (unscaled);
    ``features``: (n, 3) raw (M, B, T);
    ``targets``: (n, 1 + #percentiles) [cost per 1M req, latency percentiles].
    """

    sequences: np.ndarray
    features: np.ndarray
    targets: np.ndarray
    spec: TargetSpec

    def __post_init__(self) -> None:
        n = len(self.sequences)
        if len(self.features) != n or len(self.targets) != n:
            raise ValueError("sequences, features and targets must align")
        if self.targets.shape[1] != self.spec.n_outputs:
            raise ValueError(
                f"targets must have {self.spec.n_outputs} columns, "
                f"got {self.targets.shape[1]}"
            )

    def __len__(self) -> int:
        return len(self.sequences)

    def subset(self, idx: np.ndarray) -> "SurrogateDataset":
        return SurrogateDataset(
            self.sequences[idx], self.features[idx], self.targets[idx], self.spec
        )

    def concat(self, other: "SurrogateDataset") -> "SurrogateDataset":
        if other.spec.percentiles != self.spec.percentiles:
            raise ValueError("cannot concatenate datasets with different specs")
        return SurrogateDataset(
            np.concatenate([self.sequences, other.sequences]),
            np.concatenate([self.features, other.features]),
            np.concatenate([self.targets, other.targets]),
            self.spec,
        )


def label_window(
    window: np.ndarray,
    config: BatchConfig,
    platform: ServerlessPlatform,
    spec: TargetSpec,
) -> np.ndarray:
    """Ground-truth label of one (window, config) pair via simulation."""
    timestamps = np.concatenate([[0.0], np.cumsum(window)])
    result = simulate(timestamps, config, platform)
    return spec.pack(
        result.cost_per_request, result.latency_percentiles(spec.percentiles)
    )


def generate_dataset(
    interarrival_history: np.ndarray,
    n_samples: int,
    seq_len: int = 256,
    configs: list[BatchConfig] | None = None,
    platform: ServerlessPlatform | None = None,
    spec: TargetSpec | None = None,
    seed: int | None | np.random.Generator = None,
) -> SurrogateDataset:
    """Sample ``n_samples`` (window × random config) training pairs.

    ``interarrival_history`` is the processed historical data (e.g. the
    first 12 hours of the Azure trace); configurations are drawn uniformly
    from ``configs`` (default: the standard candidate grid), so the model
    sees the whole decision space during training.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = as_rng(seed)
    platform = platform if platform is not None else ServerlessPlatform()
    spec = spec if spec is not None else TargetSpec()
    configs = configs if configs is not None else config_grid()
    if not configs:
        raise ValueError("configs must be non-empty")

    windows = sample_windows(interarrival_history, seq_len, n_samples, rng)
    chosen = rng.integers(0, len(configs), size=n_samples)
    feats = grid_features(configs)[chosen]
    targets = np.empty((n_samples, spec.n_outputs))
    for i in range(n_samples):
        targets[i] = label_window(windows[i], configs[chosen[i]], platform, spec)
    return SurrogateDataset(windows, feats, targets, spec)
