"""Training-set generation for the surrogate (§III-D, Offline Model
Training).

Following the paper: randomly sample arrival-sequence windows of length
``l`` from the processed historical data, pair each with a randomly picked
configuration (M, B, T) from the candidate space, and label the pair with
the simulated ground truth — per-request cost and latency percentiles of
serving exactly that window under that configuration.

Labeling is the dominant cost of offline training, so it has a batched
path (:func:`label_windows`) and an opt-in process pool (``workers=N``).
Determinism is preserved under parallelism: each sample's cold-start
randomness derives from a per-sample :class:`numpy.random.SeedSequence`
child keyed by the sample index, never from the platform's shared mutable
generator, so serial and parallel labeling are bit-identical.

:func:`generate_generation_dataset` is the token-streaming variant: the
label simulation is the serving engine in buffer-generation mode, the
configuration features grow two output-token columns (the window's mean
prompt and output lengths, sampled by the per-sample length model), and
the latency block holds **TTFT** percentiles instead of end-to-end
latency — the quantity generation SLOs are written against. Training on
it requires a surrogate built with ``n_features=5``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.arrival.window import sample_windows
from repro.batching.config import BatchConfig, config_grid, grid_features
from repro.batching.simulator import simulate
from repro.core.features import TargetSpec
from repro.serverless.platform import ServerlessPlatform
from repro.telemetry.metrics import get_registry
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class SurrogateDataset:
    """Aligned (sequence, config-features, targets) arrays.

    ``sequences``: (n, seq_len) raw inter-arrival windows (unscaled);
    ``features``: (n, 3) raw (M, B, T);
    ``targets``: (n, 1 + #percentiles) [cost per 1M req, latency percentiles].
    """

    sequences: np.ndarray
    features: np.ndarray
    targets: np.ndarray
    spec: TargetSpec

    def __post_init__(self) -> None:
        n = len(self.sequences)
        if len(self.features) != n or len(self.targets) != n:
            raise ValueError("sequences, features and targets must align")
        if self.targets.shape[1] != self.spec.n_outputs:
            raise ValueError(
                f"targets must have {self.spec.n_outputs} columns, "
                f"got {self.targets.shape[1]}"
            )

    def __len__(self) -> int:
        return len(self.sequences)

    def subset(self, idx: np.ndarray) -> "SurrogateDataset":
        return SurrogateDataset(
            self.sequences[idx], self.features[idx], self.targets[idx], self.spec
        )

    def concat(self, other: "SurrogateDataset") -> "SurrogateDataset":
        if other.spec.percentiles != self.spec.percentiles:
            raise ValueError("cannot concatenate datasets with different specs")
        return SurrogateDataset(
            np.concatenate([self.sequences, other.sequences]),
            np.concatenate([self.features, other.features]),
            np.concatenate([self.targets, other.targets]),
            self.spec,
        )


def _sample_rng(entropy: int, index: int) -> np.random.Generator:
    """The per-sample cold-start generator: a stable function of
    ``(entropy, index)``, independent of labeling order or process."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=entropy, spawn_key=(index,))
    )


def label_window(
    window: np.ndarray,
    config: BatchConfig,
    platform: ServerlessPlatform,
    spec: TargetSpec,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Ground-truth label of one (window, config) pair via simulation."""
    timestamps = np.concatenate([[0.0], np.cumsum(window)])
    result = simulate(timestamps, config, platform, rng=rng)
    return spec.pack(
        result.cost_per_request, result.latency_percentiles(spec.percentiles)
    )


def _label_chunk(
    windows: np.ndarray,
    configs: list[BatchConfig],
    platform: ServerlessPlatform,
    spec: TargetSpec,
    entropy: int | None,
    offset: int,
) -> np.ndarray:
    """Label a contiguous chunk of samples (runs in-process or in a worker)."""
    targets = np.empty((len(windows), spec.n_outputs))
    for i in range(len(windows)):
        rng = _sample_rng(entropy, offset + i) if entropy is not None else None
        targets[i] = label_window(windows[i], configs[i], platform, spec, rng=rng)
    return targets


def label_windows(
    windows: np.ndarray,
    configs: list[BatchConfig],
    platform: ServerlessPlatform,
    spec: TargetSpec,
    seed: int = 0,
    workers: int | None = None,
) -> np.ndarray:
    """Label ``(window, config)`` pairs in batch; the fast labeling path.

    ``workers > 1`` fans chunks out over a process pool. Results are
    bit-identical to the serial path regardless of ``workers`` because each
    sample's cold-start generator is keyed by ``(seed, sample index)``.
    """
    windows = np.atleast_2d(np.asarray(windows, dtype=float))
    if len(configs) != len(windows):
        raise ValueError("windows and configs must align")
    n = len(windows)
    if n == 0:
        return np.empty((0, spec.n_outputs))
    # Per-sample generators whenever any randomness (cold starts, fault
    # injection) is active — they key the draws to the sample index, which
    # is what makes labeling independent of the worker count.
    entropy = (
        int(seed)
        if platform.cold_start is not None or platform.faults_active
        else None
    )

    registry = get_registry()
    t0 = time.perf_counter()
    if workers is not None and workers > 1 and n > 1:
        from concurrent.futures import ProcessPoolExecutor

        bounds = np.linspace(0, n, min(workers, n) + 1).astype(int)
        chunks = [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(
                _label_chunk,
                [windows[lo:hi] for lo, hi in chunks],
                [configs[lo:hi] for lo, hi in chunks],
                [platform] * len(chunks),
                [spec] * len(chunks),
                [entropy] * len(chunks),
                [lo for lo, _ in chunks],
            ))
        targets = np.concatenate(parts)
    else:
        targets = _label_chunk(windows, configs, platform, spec, entropy, 0)
    if registry.enabled:
        registry.histogram("dataset.label_time").observe(time.perf_counter() - t0)
        registry.counter("dataset.labels").inc(n)
        registry.gauge("dataset.workers").set(workers if workers else 1)
    return targets


def _label_gen_chunk(
    windows: np.ndarray,
    configs: list[BatchConfig],
    platform: ServerlessPlatform,
    generation,
    spec: TargetSpec,
    entropy: int,
    offset: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Label a chunk of generation samples (in-process or in a worker).

    Returns ``(token_features, targets)``: per-sample (mean prompt tokens,
    mean output tokens) plus [cost per 1M, TTFT percentiles].
    """
    from repro.serving.engine import ServingEngine  # circular at module level

    token_feats = np.empty((len(windows), 2))
    targets = np.empty((len(windows), spec.n_outputs))
    for i in range(len(windows)):
        # The per-sample length-model seed is a stable function of
        # (entropy, sample index) — labeling order and worker count
        # cannot change any sample's token draw.
        sample_seed = int(
            np.random.SeedSequence(
                entropy=entropy, spawn_key=(offset + i,)
            ).generate_state(1)[0]
        )
        timestamps = np.concatenate([[0.0], np.cumsum(windows[i])])
        engine = ServingEngine(
            configs[i], platform=platform,
            generation=replace(generation, seed=sample_seed),
        )
        log = engine.run(timestamps, name="label-gen")
        token_feats[i] = (log.prompt_tokens.mean(), log.output_tokens.mean())
        targets[i] = spec.pack(
            log.cost_per_request, np.percentile(log.ttft, spec.percentiles)
        )
    return token_feats, targets


def generate_generation_dataset(
    interarrival_history: np.ndarray,
    n_samples: int,
    generation,
    seq_len: int = 256,
    configs: list[BatchConfig] | None = None,
    platform: ServerlessPlatform | None = None,
    spec: TargetSpec | None = None,
    seed: int | None | np.random.Generator = None,
    workers: int | None = None,
) -> SurrogateDataset:
    """Sample token-streaming training pairs labeled by the serving engine.

    Like :func:`generate_dataset`, but each (window × config) pair is
    served as a generation workload: ``generation`` is a
    :class:`~repro.serving.config.GenerationConfig` whose length model
    draws every request's (prompt, output) token counts with a per-sample
    seed, and whose dispatcher/profile define the prefill/decode timing.
    The resulting dataset has five feature columns —
    ``(M, B, T, mean prompt tokens, mean output tokens)`` — and its
    latency block holds **TTFT** percentiles, so train with
    ``DeepBATSurrogate(n_features=5, ...)``.

    Determinism matches the request-level path: per-sample seeding keys
    every token draw to the sample index, so ``workers`` never changes the
    dataset. (Pair it with a platform free of stochastic cold starts —
    the default — since the engine draws those from the platform's shared
    generator.)
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = as_rng(seed)
    platform = platform if platform is not None else ServerlessPlatform()
    spec = spec if spec is not None else TargetSpec()
    configs = configs if configs is not None else config_grid()
    if not configs:
        raise ValueError("configs must be non-empty")

    windows = sample_windows(interarrival_history, seq_len, n_samples, rng)
    chosen = rng.integers(0, len(configs), size=n_samples)
    sample_configs = [configs[i] for i in chosen]
    entropy = int(rng.integers(0, 2**63))

    registry = get_registry()
    t0 = time.perf_counter()
    if workers is not None and workers > 1 and n_samples > 1:
        from concurrent.futures import ProcessPoolExecutor

        bounds = np.linspace(0, n_samples, min(workers, n_samples) + 1)
        bounds = bounds.astype(int)
        chunks = [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(
                _label_gen_chunk,
                [windows[lo:hi] for lo, hi in chunks],
                [sample_configs[lo:hi] for lo, hi in chunks],
                [platform] * len(chunks),
                [generation] * len(chunks),
                [spec] * len(chunks),
                [entropy] * len(chunks),
                [lo for lo, _ in chunks],
            ))
        token_feats = np.concatenate([p[0] for p in parts])
        targets = np.concatenate([p[1] for p in parts])
    else:
        token_feats, targets = _label_gen_chunk(
            windows, sample_configs, platform, generation, spec, entropy, 0
        )
    if registry.enabled:
        registry.histogram("dataset.label_time").observe(time.perf_counter() - t0)
        registry.counter("dataset.labels").inc(n_samples)
        registry.gauge("dataset.workers").set(workers if workers else 1)
    feats = np.column_stack([grid_features(configs)[chosen], token_feats])
    return SurrogateDataset(windows, feats, targets, spec)


def generate_dataset(
    interarrival_history: np.ndarray,
    n_samples: int,
    seq_len: int = 256,
    configs: list[BatchConfig] | None = None,
    platform: ServerlessPlatform | None = None,
    spec: TargetSpec | None = None,
    seed: int | None | np.random.Generator = None,
    workers: int | None = None,
) -> SurrogateDataset:
    """Sample ``n_samples`` (window × random config) training pairs.

    ``interarrival_history`` is the processed historical data (e.g. the
    first 12 hours of the Azure trace); configurations are drawn uniformly
    from ``configs`` (default: the standard candidate grid), so the model
    sees the whole decision space during training. ``workers > 1`` labels
    in parallel with deterministic per-sample seeding — the dataset is
    identical for every worker count.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = as_rng(seed)
    platform = platform if platform is not None else ServerlessPlatform()
    spec = spec if spec is not None else TargetSpec()
    configs = configs if configs is not None else config_grid()
    if not configs:
        raise ValueError("configs must be non-empty")

    windows = sample_windows(interarrival_history, seq_len, n_samples, rng)
    chosen = rng.integers(0, len(configs), size=n_samples)
    feats = grid_features(configs)[chosen]
    targets = label_windows(
        windows,
        [configs[i] for i in chosen],
        platform,
        spec,
        seed=int(rng.integers(0, 2**63)),
        workers=workers,
    )
    return SurrogateDataset(windows, feats, targets, spec)
