"""Feature/target scaling for the surrogate model.

Three streams need consistent scaling (§III-D):

* the inter-arrival **sequence** S — heavy-tailed positive values, scaled by
  a fitted reference mean so the network sees O(1) inputs on any workload;
* the **configuration features** F = (M, B, T) — standardized ("we first
  implement standardization to scale the values", Eq. 5);
* the **targets** O — cost reported in USD per 10⁶ requests and latency in
  seconds, both naturally O(1) (which is why the paper sets the Huber δ=1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serverless.pricing import cost_per_million


@dataclass
class StandardScaler:
    """Per-column standardization ``(x − μ)/σ`` with σ floored at 1e-12."""

    mean: np.ndarray | None = None
    std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D data, got shape {x.shape}")
        if len(x) < 1:
            raise ValueError("cannot fit scaler on empty data")
        self.mean = x.mean(axis=0)
        self.std = np.maximum(x.std(axis=0), 1e-12)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(x, dtype=float) - self.mean) / self.std

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(z, dtype=float) * self.std + self.mean

    def _check_fitted(self) -> None:
        if self.mean is None or self.std is None:
            raise RuntimeError("scaler has not been fitted")

    def state_dict(self) -> dict[str, np.ndarray]:
        self._check_fitted()
        return {"mean": self.mean.copy(), "std": self.std.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.mean = np.asarray(state["mean"], dtype=float)
        self.std = np.asarray(state["std"], dtype=float)


@dataclass
class SequenceScaler:
    """Scale inter-arrival sequences by a fitted reference mean.

    Dividing by the training-set mean inter-arrival keeps the transformer's
    inputs O(1) across workloads whose absolute rates differ by orders of
    magnitude — the scale information the model still needs survives in the
    *relative* values within each window.
    """

    reference: float | None = None

    def fit(self, sequences: np.ndarray) -> "SequenceScaler":
        x = np.asarray(sequences, dtype=float)
        ref = float(x.mean())
        if not ref > 0:
            raise ValueError("sequence data must have a positive mean")
        self.reference = ref
        return self

    def transform(self, sequences: np.ndarray) -> np.ndarray:
        if self.reference is None:
            raise RuntimeError("scaler has not been fitted")
        return np.asarray(sequences, dtype=float) / self.reference

    def fit_transform(self, sequences: np.ndarray) -> np.ndarray:
        return self.fit(sequences).transform(sequences)

    def state_dict(self) -> dict[str, np.ndarray]:
        if self.reference is None:
            raise RuntimeError("scaler has not been fitted")
        return {"reference": np.array([self.reference])}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.reference = float(np.asarray(state["reference"]).ravel()[0])


@dataclass(frozen=True)
class TargetSpec:
    """Layout of the surrogate's output vector O = [cost, P(percentiles)]."""

    percentiles: tuple[float, ...] = (50.0, 75.0, 90.0, 95.0, 99.0)

    @property
    def n_outputs(self) -> int:
        return 1 + len(self.percentiles)

    def pack(self, cost_per_request: "float | np.ndarray",
             latency_percentiles: np.ndarray) -> np.ndarray:
        """Build a target row [cost per 1M requests, latency percentiles]."""
        lat = np.asarray(latency_percentiles, dtype=float)
        if lat.shape[-1] != len(self.percentiles):
            raise ValueError(
                f"expected {len(self.percentiles)} percentiles, got {lat.shape[-1]}"
            )
        cost = cost_per_million(np.asarray(cost_per_request, dtype=float))
        cost_col = np.expand_dims(np.atleast_1d(cost), -1) if lat.ndim > 1 else np.atleast_1d(cost)
        return np.concatenate([cost_col, lat], axis=-1)

    def unpack(self, outputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split model outputs into (cost per 1M requests, percentile block)."""
        outputs = np.asarray(outputs, dtype=float)
        return outputs[..., 0], outputs[..., 1:]

    def percentile_index(self, percentile: float) -> int:
        """Column of ``percentile`` inside the *latency block*."""
        try:
            return self.percentiles.index(percentile)
        except ValueError as exc:
            raise ValueError(
                f"percentile {percentile} not in spec {self.percentiles}"
            ) from exc


@dataclass
class FeaturePipeline:
    """Bundles the three scalers; fitted once on the training set and reused
    verbatim online and during fine-tuning."""

    sequence: SequenceScaler = field(default_factory=SequenceScaler)
    config: StandardScaler = field(default_factory=StandardScaler)
    spec: TargetSpec = field(default_factory=TargetSpec)

    def fit(self, sequences: np.ndarray, config_features: np.ndarray) -> "FeaturePipeline":
        self.sequence.fit(sequences)
        self.config.fit(config_features)
        return self

    def transform(
        self, sequences: np.ndarray, config_features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.sequence.transform(sequences), self.config.transform(config_features)

    def state_dict(self) -> dict[str, np.ndarray]:
        out = {f"sequence.{k}": v for k, v in self.sequence.state_dict().items()}
        out.update({f"config.{k}": v for k, v in self.config.state_dict().items()})
        out["spec.percentiles"] = np.asarray(self.spec.percentiles)
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.sequence.load_state_dict({"reference": state["sequence.reference"]})
        self.config.load_state_dict(
            {"mean": state["config.mean"], "std": state["config.std"]}
        )
        self.spec = TargetSpec(tuple(float(p) for p in state["spec.percentiles"]))
