"""The DeepBAT deep surrogate model (Fig. 3).

Architecture, following §III-D exactly:

1. ``E_seq = FeedForward(S)`` — per-position embedding of the inter-arrival
   sequence into d_model dimensions (Eq. 1);
2. ``E_pos`` — sinusoidal positional encoding;
3. ``E_trans = TransformerEncoder(E_pos)`` — N stackable encoder layers
   (Eq. 2; paper uses N=2, d=16, FFN hidden 32, ReLU);
4. ``E_p`` — mean pooling over the sequence axis;
5. ``E_1 = MultiHeadAtt(E_p, E_p, E_p)`` — the extra fusion attention over
   the pooled representation (Eq. 4);
6. ``E_2 = FeedForward(Standardize(F))`` — embedding of the configuration
   features (Eq. 5; standardization lives in
   :class:`repro.core.features.FeaturePipeline`);
7. ``O = FeedForward(Concat(E_1, E_2))`` — the output head predicting the
   cost and the latency-percentile vector (Eq. 6).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import FeedForward, Module
from repro.nn.tensor import Tensor
from repro.nn.transformer import PositionalEncoding, TransformerEncoder
from repro.utils.rng import as_rng


class DeepBATSurrogate(Module):
    """Transformer-based predictor of (cost, latency percentiles).

    Parameters mirror the paper's grid-searched defaults: 2 encoder layers,
    embedding dimension 16, feed-forward hidden width 32, sequence length
    256 (the §V trade-off point).
    """

    def __init__(
        self,
        seq_len: int = 256,
        d_model: int = 16,
        num_heads: int = 4,
        ff_hidden: int = 32,
        num_layers: int = 2,
        n_features: int = 3,
        n_outputs: int = 6,
        dropout: float = 0.0,
        seed: int | None | np.random.Generator = 0,
    ) -> None:
        super().__init__()
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        if n_outputs < 2:
            raise ValueError("n_outputs must cover cost + at least one percentile")
        rng = as_rng(seed)
        self.seq_len = seq_len
        self.d_model = d_model
        self.n_features = n_features
        self.n_outputs = n_outputs
        #: Constructor arguments, recorded so checkpoints can rebuild the
        #: exact architecture (see repro.core.training.save_trained).
        self.hyperparameters = {
            "seq_len": seq_len,
            "d_model": d_model,
            "num_heads": num_heads,
            "ff_hidden": ff_hidden,
            "num_layers": num_layers,
            "n_features": n_features,
            "n_outputs": n_outputs,
            "dropout": dropout,
        }

        self.seq_embed = FeedForward(1, ff_hidden, d_model, dropout=dropout, seed=rng)
        self.pos_enc = PositionalEncoding(d_model, max_len=max(seq_len, 1024),
                                          dropout=dropout, seed=rng)
        self.encoder = TransformerEncoder(
            d_model, num_heads, ff_hidden, num_layers, dropout=dropout, seed=rng
        )
        self.fusion_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, seed=rng)
        self.feat_embed = FeedForward(n_features, ff_hidden, d_model,
                                      dropout=dropout, seed=rng)
        self.head = FeedForward(2 * d_model, ff_hidden, n_outputs,
                                dropout=dropout, seed=rng)

    # ------------------------------------------------------------- forward
    def forward(self, sequence: Tensor, features: Tensor) -> Tensor:
        """Predict O for scaled inputs.

        ``sequence``: (batch, seq_len) scaled inter-arrival windows;
        ``features``: (batch, n_features) standardized (M, B, T).
        """
        if sequence.ndim != 2 or sequence.shape[1] != self.seq_len:
            raise ValueError(
                f"sequence must be (batch, {self.seq_len}), got {sequence.shape}"
            )
        if features.ndim != 2 or features.shape[1] != self.n_features:
            raise ValueError(
                f"features must be (batch, {self.n_features}), got {features.shape}"
            )
        batch = sequence.shape[0]
        e_seq = self.seq_embed(sequence.reshape(batch, self.seq_len, 1))  # Eq. 1
        e_pos = self.pos_enc(e_seq)
        e_trans = self.encoder(e_pos)  # Eq. 2
        e_p = F.mean_pool(e_trans, axis=1)  # (batch, d_model)
        e_1 = self.fusion_attn(e_p, e_p, e_p)  # Eq. 4
        e_2 = self.feat_embed(features)  # Eq. 5
        return self.head(F.concat([e_1, e_2], axis=-1))  # Eq. 6

    # --------------------------------------------------------- conveniences
    def predict(self, sequence: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Eval-mode forward on raw arrays; returns a NumPy array."""
        self.eval()
        seq = np.atleast_2d(np.asarray(sequence, dtype=float))
        feats = np.atleast_2d(np.asarray(features, dtype=float))
        if seq.shape[0] == 1 and feats.shape[0] > 1:
            return self.predict_grid(seq[0], feats)
        return self.forward(Tensor(seq), Tensor(feats)).data

    def predict_grid(self, sequence: np.ndarray, features: np.ndarray) -> np.ndarray:
        """One window × many candidate configurations (§III-E fast path).

        ``E_1`` depends only on the sequence, not on F, so the expensive
        encoder branch runs once; only the cheap feature embedding and the
        output head are batched over the candidate grid. Numerically
        identical to tiling the window through :meth:`forward`.
        """
        self.eval()
        seq = np.asarray(sequence, dtype=float).reshape(1, -1)
        if seq.shape[1] != self.seq_len:
            raise ValueError(f"sequence must have length {self.seq_len}")
        feats = np.atleast_2d(np.asarray(features, dtype=float))
        n = feats.shape[0]
        e_seq = self.seq_embed(Tensor(seq.reshape(1, self.seq_len, 1)))
        e_trans = self.encoder(self.pos_enc(e_seq))
        e_p = F.mean_pool(e_trans, axis=1)
        e_1 = self.fusion_attn(e_p, e_p, e_p)  # (1, d_model)
        e_1_grid = Tensor(np.broadcast_to(e_1.data, (n, self.d_model)).copy())
        e_2 = self.feat_embed(Tensor(feats))
        return self.head(F.concat([e_1_grid, e_2], axis=-1)).data

    def attention_scores(self, sequence: np.ndarray) -> np.ndarray:
        """Aggregated encoder attention over the input positions (Fig. 14).

        Runs the encoder on ``sequence`` (no features needed) and returns
        the column-wise attention mass each position receives, averaged
        over layers and heads, normalized to sum to 1.
        """
        self.eval()
        seq = np.atleast_2d(np.asarray(sequence, dtype=float))
        batch = seq.shape[0]
        e_seq = self.seq_embed(Tensor(seq.reshape(batch, -1, 1)))
        self.encoder(self.pos_enc(e_seq))
        maps = self.encoder.attention_maps()  # [(batch, heads, L, L)] per layer
        agg = np.mean([m.mean(axis=1) for m in maps], axis=0)  # (batch, L, L)
        received = agg.mean(axis=1)  # attention mass received per position
        received = received / received.sum(axis=-1, keepdims=True)
        return received[0] if sequence.ndim == 1 else received
