"""Alternative surrogate architectures for the model ablation.

The paper's §I.2 argues for the Transformer encoder over recurrent models;
§VI positions the deep surrogate against classic predictors. These
drop-in replacements for :class:`repro.core.surrogate.DeepBATSurrogate`
make those claims testable on the same data:

* :class:`RecurrentSurrogate` — LSTM or GRU encoder in place of the
  Transformer stack (everything else identical);
* :class:`MLPSurrogate` — no sequence model at all: the window is reduced
  to summary statistics (mean, CV², tail quantiles, lag-1 ACF) and fed to a
  plain MLP; the "classic feature engineering" strawman.

All three share the forward signature ``(sequence, features) -> O`` so they
slot into :func:`repro.core.training.train_surrogate` and the controller
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import FeedForward, Module
from repro.nn.recurrent import GRU, LSTM
from repro.nn.tensor import Tensor
from repro.utils.rng import as_rng


class RecurrentSurrogate(Module):
    """DeepBAT's architecture with the Transformer swapped for an RNN.

    The pooled RNN state replaces ``E_1``; the feature path and output head
    are identical to the Transformer surrogate.
    """

    def __init__(
        self,
        seq_len: int = 256,
        d_model: int = 16,
        ff_hidden: int = 32,
        cell: str = "lstm",
        n_features: int = 3,
        n_outputs: int = 6,
        seed: int | None | np.random.Generator = 0,
    ) -> None:
        super().__init__()
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        if cell not in ("lstm", "gru"):
            raise ValueError(f"cell must be 'lstm' or 'gru', got {cell!r}")
        rng = as_rng(seed)
        self.seq_len = seq_len
        self.n_features = n_features
        self.n_outputs = n_outputs
        self.cell = cell
        self.seq_embed = FeedForward(1, ff_hidden, d_model, seed=rng)
        rnn_cls = LSTM if cell == "lstm" else GRU
        self.rnn = rnn_cls(d_model, d_model, seed=rng)
        self.feat_embed = FeedForward(n_features, ff_hidden, d_model, seed=rng)
        self.head = FeedForward(2 * d_model, ff_hidden, n_outputs, seed=rng)

    def forward(self, sequence: Tensor, features: Tensor) -> Tensor:
        if sequence.ndim != 2 or sequence.shape[1] != self.seq_len:
            raise ValueError(
                f"sequence must be (batch, {self.seq_len}), got {sequence.shape}"
            )
        batch = sequence.shape[0]
        e_seq = self.seq_embed(sequence.reshape(batch, self.seq_len, 1))
        states = self.rnn(e_seq)
        pooled = F.mean_pool(states, axis=1)
        e_2 = self.feat_embed(features)
        return self.head(F.concat([pooled, e_2], axis=-1))

    def predict(self, sequence: np.ndarray, features: np.ndarray) -> np.ndarray:
        self.eval()
        seq = np.atleast_2d(np.asarray(sequence, dtype=float))
        feats = np.atleast_2d(np.asarray(features, dtype=float))
        if seq.shape[0] == 1 and feats.shape[0] > 1:
            seq = np.broadcast_to(seq, (feats.shape[0], seq.shape[1]))
        return self.forward(Tensor(seq), Tensor(feats)).data


def summary_statistics(sequences: np.ndarray) -> np.ndarray:
    """Hand-crafted window features for the MLP baseline: mean, CV², the
    10/50/90/99 % quantiles, and the lag-1 autocorrelation."""
    x = np.atleast_2d(np.asarray(sequences, dtype=float))
    mean = x.mean(axis=1)
    std = x.std(axis=1)
    cv2 = np.where(mean > 0, (std / np.maximum(mean, 1e-12)) ** 2, 0.0)
    qs = np.percentile(x, [10, 50, 90, 99], axis=1).T
    centered = x - mean[:, None]
    denom = np.maximum((centered**2).sum(axis=1), 1e-12)
    rho1 = (centered[:, :-1] * centered[:, 1:]).sum(axis=1) / denom
    return np.column_stack([mean, cv2, qs, rho1])


class MLPSurrogate(Module):
    """Summary-statistics MLP: no sequence model, no attention.

    Represents the classic feature-engineering approach the deep surrogate
    replaces; it cannot see *where* in the window the bursts sit, only
    aggregate statistics.
    """

    N_SUMMARY = 7

    def __init__(
        self,
        seq_len: int = 256,
        hidden: int = 64,
        n_features: int = 3,
        n_outputs: int = 6,
        seed: int | None | np.random.Generator = 0,
    ) -> None:
        super().__init__()
        rng = as_rng(seed)
        self.seq_len = seq_len
        self.n_features = n_features
        self.n_outputs = n_outputs
        self.net = FeedForward(self.N_SUMMARY + n_features, hidden, n_outputs, seed=rng)

    def forward(self, sequence: Tensor, features: Tensor) -> Tensor:
        stats = Tensor(summary_statistics(sequence.data))
        return self.net(F.concat([stats, features], axis=-1))

    def predict(self, sequence: np.ndarray, features: np.ndarray) -> np.ndarray:
        self.eval()
        seq = np.atleast_2d(np.asarray(sequence, dtype=float))
        feats = np.atleast_2d(np.asarray(features, dtype=float))
        if seq.shape[0] == 1 and feats.shape[0] > 1:
            seq = np.broadcast_to(seq, (feats.shape[0], seq.shape[1]))
        return self.forward(Tensor(seq), Tensor(feats)).data
