"""The DeepBAT controller — the full Fig. 2 loop.

Wires the Workload Parser, the trained deep surrogate, the SLO-aware
optimizer, and (for live serving) the batching buffer: observe arrivals →
build the inter-arrival window → batch-predict every candidate
configuration in one surrogate forward → pick the cheapest SLO-feasible
configuration → reconfigure the buffer.

Each optimization round is traced through :mod:`repro.telemetry`: nested
spans attribute decision time to window building, the surrogate forward,
and the optimizer search, and a :class:`DecisionEvent` records the chosen
``(M, B, T)`` with its predicted cost/latency. With the default no-op
registry this instrumentation adds only attribute lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrival.window import latest_window
from repro.batching.buffer import BatchingBuffer
from repro.batching.config import BatchConfig, config_grid
from repro.core.optimizer import OptimizationResult, SloAwareOptimizer
from repro.core.parser import WorkloadParser
from repro.core.training import TrainedSurrogate
from repro.core.types import Decision, history_fault as _history_fault
from repro.telemetry.events import DecisionEvent
from repro.telemetry.metrics import get_registry
from repro.utils.timing import Timer


@dataclass(frozen=True)
class DeepBATDecision(Decision):
    """Outcome of one DeepBAT optimization round.

    Inherits the unified :class:`~repro.core.types.Decision` surface
    (``config``, ``decision_time``, ``predictions``) and adds the
    optimizer's full result plus the surrogate-forward share of the time.
    """

    optimization: OptimizationResult | None = None
    inference_time: float = 0.0  # surrogate forward over the whole grid


class DeepBATController:
    """SLO-aware configuration chooser backed by the deep surrogate."""

    def __init__(
        self,
        surrogate: TrainedSurrogate,
        configs: list[BatchConfig] | None = None,
        percentile: float = 95.0,
        gamma: float = 0.0,
        window_length: int | None = None,
    ) -> None:
        self.surrogate = surrogate
        configs = configs if configs is not None else config_grid()
        self.optimizer = SloAwareOptimizer(
            configs, spec=surrogate.pipeline.spec, percentile=percentile, gamma=gamma
        )
        self.window_length = (
            window_length if window_length is not None else surrogate.model.seq_len
        )
        if self.window_length != surrogate.model.seq_len:
            raise ValueError(
                f"window_length {self.window_length} must equal the surrogate's "
                f"sequence length {surrogate.model.seq_len}"
            )
        self.parser = WorkloadParser(window_length=self.window_length)
        # The candidate grid is constant, so its standardized features are
        # precomputed once; choose() then skips the per-call config
        # transform (sequence scaling still runs per window).
        self._features_scaled = surrogate.scale_features(self.optimizer.features)
        self.last_decision: DeepBATDecision | None = None

    # ------------------------------------------------------------ decisions
    def choose(self, interarrival_history: np.ndarray, slo: float) -> DeepBATDecision:
        """One optimization round from a raw inter-arrival history.

        Degraded mode: when the history window is corrupted (NaN/inf or
        negative inter-arrivals) or any stage of the round raises, the
        controller keeps serving by re-issuing its last known-good decision
        (marked ``diagnostics["degraded"]``) instead of taking the serving
        loop down. With no prior decision to fall back on, the error
        propagates.
        """
        history = np.asarray(interarrival_history, dtype=float)
        fault = _history_fault(history)
        if fault is not None:
            return self._fall_back(fault)
        try:
            return self._choose(history, slo)
        except Exception as exc:  # degraded-mode serving: keep the last config
            return self._fall_back(f"choose() raised {type(exc).__name__}: {exc}", exc)

    def _choose(self, history: np.ndarray, slo: float) -> DeepBATDecision:
        registry = get_registry()
        with registry.span("deepbat.choose"):
            with registry.span("deepbat.window"):
                window = latest_window(history, self.window_length)
            with Timer() as t_inf:
                with registry.span("deepbat.forward"):
                    preds = self.surrogate.predict_scaled(window, self._features_scaled)
            with Timer() as t_opt:
                with registry.span("deepbat.search"):
                    result = self.optimizer.choose(preds, slo)
        decision = DeepBATDecision(
            config=result.config,
            optimization=result,
            predictions=preds,
            inference_time=t_inf.elapsed,
            decision_time=t_inf.elapsed + t_opt.elapsed,
        )
        if registry.enabled:
            registry.counter("deepbat.decisions").inc()
            registry.histogram("deepbat.decision_time").observe(decision.decision_time)
            registry.record_event(DecisionEvent(
                controller="deepbat",
                memory_mb=result.config.memory_mb,
                batch_size=result.config.batch_size,
                timeout=result.config.timeout,
                decision_time=decision.decision_time,
                predicted_cost=result.predicted_cost_per_million,
                predicted_p95=result.predicted_latency,
                feasible=result.feasible,
            ))
        self.last_decision = decision
        return decision

    def _fall_back(self, reason: str, exc: Exception | None = None) -> DeepBATDecision:
        """Re-issue the last known-good decision, or re-raise without one."""
        if self.last_decision is None:
            if exc is not None:
                raise exc
            raise ValueError(reason)
        registry = get_registry()
        if registry.enabled:
            registry.counter("fault.degraded_decisions").inc()
        # Deliberately NOT stored as last_decision: the known-good anchor
        # must survive a run of degraded rounds.
        return DeepBATDecision(
            config=self.last_decision.config,
            optimization=self.last_decision.optimization,
            predictions=self.last_decision.predictions,
            decision_time=0.0,
            diagnostics={"degraded": True, "reason": reason},
        )

    def set_gamma(self, gamma: float) -> None:
        """Tighten/relax the SLO margin γ (fast OOD reaction, §III-D)."""
        self.optimizer.set_gamma(gamma)

    # ---------------------------------------------------------- live serving
    def serve(
        self, arrival_times: np.ndarray, slo: float, reoptimize_every: int = 256
    ) -> tuple[list, list[DeepBATDecision]]:
        """Drive a live buffer over an arrival stream (Fig. 2 request flow).

        Re-optimizes after every ``reoptimize_every`` arrivals once a full
        window is available. Returns the dispatched batches and the decision
        log. This exercises the *online* code path; the evaluation harness
        uses the vectorized per-segment variant instead.
        """
        if reoptimize_every < 1:
            raise ValueError("reoptimize_every must be >= 1")
        arrival_times = np.asarray(arrival_times, dtype=float)
        registry = get_registry()
        with registry.span("deepbat.serve"):
            decisions: list[DeepBATDecision] = []
            buffer = BatchingBuffer(self.optimizer.configs[0])
            batches = []
            for i, t in enumerate(arrival_times):
                self.parser.observe(float(t))
                batches.extend(buffer.observe(float(t)))
                if self.parser.has_full_window() and (i + 1) % reoptimize_every == 0:
                    decision = self.choose(self.parser.interarrivals(), slo)
                    decisions.append(decision)
                    buffer.reconfigure(decision.config)
            if arrival_times.size:
                batches.extend(buffer.flush(float(arrival_times[-1])))
        if registry.enabled:
            registry.counter("deepbat.served_requests").inc(arrival_times.size)
        return batches, decisions
