"""The SLO-aware two-step optimizer (§III-E).

Given the surrogate's predictions for every candidate configuration, solve
Eq. 10 by exhaustive search: step 1 keeps configurations whose predicted
SLO-percentile latency satisfies the (γ-tightened) constraint; step 2
returns the cheapest survivor. An infeasible step 1 falls back to the
lowest-predicted-latency configuration — a safe answer rather than none.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batching.config import BatchConfig, grid_features
from repro.core.features import TargetSpec


@dataclass(frozen=True)
class OptimizationResult:
    """Chosen configuration plus the predictions that justified it."""

    config: BatchConfig
    index: int
    predicted_cost_per_million: float
    predicted_latency: float
    feasible: bool
    n_feasible: int


class SloAwareOptimizer:
    """Exhaustive-search optimizer over surrogate predictions.

    Parameters
    ----------
    configs:
        Candidate grid (Eq. 10c–e bounds are enforced by
        :class:`BatchConfig` itself).
    spec:
        Output layout of the surrogate.
    percentile:
        Which latency percentile the SLO constrains (Eq. 10b; paper: 95).
    gamma:
        Robustness margin γ ≥ 0: the constraint becomes
        ``P̂ ≤ SLO / (1 + γ)`` (§III-D fine-tuning discussion).
    """

    def __init__(
        self,
        configs: list[BatchConfig],
        spec: TargetSpec | None = None,
        percentile: float = 95.0,
        gamma: float = 0.0,
    ) -> None:
        if not configs:
            raise ValueError("configs must be non-empty")
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.configs = list(configs)
        self.spec = spec if spec is not None else TargetSpec()
        self.percentile = percentile
        self.gamma = gamma
        self._features = grid_features(self.configs)
        self._lat_col = 1 + self.spec.percentile_index(percentile)

    @property
    def features(self) -> np.ndarray:
        """(n_configs, 3) raw feature matrix for batched prediction."""
        return self._features

    def set_gamma(self, gamma: float) -> None:
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.gamma = gamma

    def choose(self, predictions: np.ndarray, slo: float) -> OptimizationResult:
        """Step-1 filter + step-2 argmin over ``predictions``.

        ``predictions``: (n_configs, n_outputs) surrogate outputs aligned
        with ``self.configs``.
        """
        if slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        preds = np.asarray(predictions, dtype=float)
        if preds.shape != (len(self.configs), self.spec.n_outputs):
            raise ValueError(
                f"predictions must be {(len(self.configs), self.spec.n_outputs)}, "
                f"got {preds.shape}"
            )
        cost = preds[:, 0]
        latency = preds[:, self._lat_col]
        threshold = slo / (1.0 + self.gamma)
        feasible = latency <= threshold
        n_feasible = int(feasible.sum())
        if n_feasible:
            candidates = np.where(feasible)[0]
            best = int(candidates[np.argmin(cost[candidates])])
            ok = True
        else:
            best = int(np.argmin(latency))
            ok = False
        return OptimizationResult(
            config=self.configs[best],
            index=best,
            predicted_cost_per_million=float(cost[best]),
            predicted_latency=float(latency[best]),
            feasible=ok,
            n_feasible=n_feasible,
        )
