"""DeepBAT core: the Transformer surrogate, training/fine-tuning, the
SLO-aware optimizer, and the end-to-end controller."""

from repro.core.alternatives import (
    MLPSurrogate,
    RecurrentSurrogate,
    summary_statistics,
)
from repro.core.controller import DeepBATController, DeepBATDecision
from repro.core.drift import (
    WorkloadDriftDetector,
    prediction_drift,
    window_statistics,
)
from repro.core.dataset import (
    SurrogateDataset,
    generate_dataset,
    generate_generation_dataset,
    label_window,
    label_windows,
)
from repro.core.features import (
    FeaturePipeline,
    SequenceScaler,
    StandardScaler,
    TargetSpec,
)
from repro.core.optimizer import OptimizationResult, SloAwareOptimizer
from repro.core.parser import WorkloadParser
from repro.core.surrogate import DeepBATSurrogate
from repro.core.types import Decision
from repro.core.training import (
    TrainConfig,
    TrainedSurrogate,
    TrainingHistory,
    compute_gamma,
    estimate_gamma,
    fine_tune,
    load_trained,
    save_trained,
    train_surrogate,
)

__all__ = [
    "Decision",
    "DeepBATController",
    "DeepBATDecision",
    "DeepBATSurrogate",
    "FeaturePipeline",
    "MLPSurrogate",
    "OptimizationResult",
    "RecurrentSurrogate",
    "SequenceScaler",
    "SloAwareOptimizer",
    "StandardScaler",
    "SurrogateDataset",
    "TargetSpec",
    "TrainConfig",
    "TrainedSurrogate",
    "TrainingHistory",
    "WorkloadDriftDetector",
    "WorkloadParser",
    "compute_gamma",
    "estimate_gamma",
    "fine_tune",
    "generate_dataset",
    "generate_generation_dataset",
    "label_window",
    "label_windows",
    "load_trained",
    "prediction_drift",
    "save_trained",
    "summary_statistics",
    "train_surrogate",
    "window_statistics",
]
