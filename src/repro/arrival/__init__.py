"""Arrival-process machinery: MAPs/MMPPs, trace statistics, KPC-style
fitting, synthetic evaluation traces, and sequence windowing."""

from repro.arrival.fitting import FitReport, empirical_targets, fit_map
from repro.arrival.map_process import (
    MAP,
    erlang_map,
    hyperexp_map,
    poisson_map,
)
from repro.arrival.io import export_csv, import_csv, load_trace, save_trace
from repro.arrival.mmpp import mmpp2, mmpp2_mean_rate, mmpp2_with_burstiness, on_off
from repro.arrival.nhpp import diurnal_rate, sample_nhpp, superpose, thin
from repro.arrival.stats import (
    autocorrelation,
    binned_rate,
    counts_idc,
    idc,
    interarrivals,
    mean_rate,
    scv,
)
from repro.arrival.traces import (
    STANDARD_TRACES,
    Trace,
    alibaba_like,
    azure_like,
    map_synthetic,
    twitter_like,
)
from repro.arrival.window import latest_window, sample_windows, sliding_windows

__all__ = [
    "MAP",
    "STANDARD_TRACES",
    "FitReport",
    "Trace",
    "alibaba_like",
    "autocorrelation",
    "azure_like",
    "binned_rate",
    "counts_idc",
    "diurnal_rate",
    "empirical_targets",
    "erlang_map",
    "export_csv",
    "fit_map",
    "import_csv",
    "load_trace",
    "hyperexp_map",
    "idc",
    "interarrivals",
    "latest_window",
    "map_synthetic",
    "mean_rate",
    "mmpp2",
    "mmpp2_mean_rate",
    "mmpp2_with_burstiness",
    "on_off",
    "poisson_map",
    "sample_nhpp",
    "sample_windows",
    "save_trace",
    "scv",
    "sliding_windows",
    "superpose",
    "thin",
    "twitter_like",
]
