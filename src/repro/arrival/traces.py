"""Synthetic workload traces statistically matched to the paper's four
evaluation workloads (§IV-A, Fig. 4/5).

The real Azure/Twitter/Alibaba traces are unavailable offline; these
generators reproduce the three statistics the evaluation actually relies on
(see DESIGN.md §1):

* **Azure-like** — diurnal rate profile with moderate, time-varying
  burstiness (IDC tens, variable over hours).
* **Twitter-like** — statistically similar to Azure but milder and steadier
  (IDC ≈ 4 band) so it serves as the *unseen but in-distribution* test set.
* **Alibaba-like** — MLaaS on-off bursts with sharp rate swings between
  near-idle and hot hours (IDC hundreds; strongly out-of-distribution).
* **MAP-generated synthetic** — 24 independent MMPP(2) segments with widely
  varying burstiness, the paper's most challenging workload.

A "hour" in the paper is one :attr:`Trace.segment_duration` of simulated
time here (time compression is a pure rescaling; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.arrival.stats import binned_rate, idc, interarrivals, mean_rate
from repro.utils.rng import as_rng, spawn_rngs


@dataclass(frozen=True)
class Trace:
    """An arrival trace split into equal-duration segments ("hours")."""

    name: str
    timestamps: np.ndarray
    segment_duration: float
    n_segments: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        ts = np.asarray(self.timestamps, dtype=float)
        if ts.size and np.any(np.diff(ts) < 0):
            raise ValueError("timestamps must be sorted")
        if self.segment_duration <= 0:
            raise ValueError("segment_duration must be > 0")
        if self.n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        object.__setattr__(self, "timestamps", ts)

    @property
    def duration(self) -> float:
        return self.segment_duration * self.n_segments

    def segment(self, index: int, relative: bool = True) -> np.ndarray:
        """Timestamps of segment ``index`` (0-based); ``relative`` shifts
        them to start at the segment origin."""
        if not 0 <= index < self.n_segments:
            raise IndexError(f"segment index {index} out of range [0, {self.n_segments})")
        lo = index * self.segment_duration
        hi = lo + self.segment_duration
        i0, i1 = np.searchsorted(self.timestamps, [lo, hi])
        seg = self.timestamps[i0:i1]
        return seg - lo if relative else seg

    def segment_interarrivals(self, index: int) -> np.ndarray:
        return interarrivals(self.segment(index))

    def segment_rate(self, index: int) -> float:
        return self.segment(index).size / self.segment_duration

    def segment_idc(self, index: int) -> float:
        x = self.segment_interarrivals(index)
        return idc(x) if x.size >= 3 else 1.0

    def rate_series(self, bins_per_segment: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Binned arrival rate over the whole trace (Fig. 4 series)."""
        width = self.segment_duration / bins_per_segment
        return binned_rate(self.timestamps, width, t_start=0.0, t_end=self.duration)

    def idc_series(self) -> np.ndarray:
        """Per-segment IDC (Fig. 5 series)."""
        return np.array([self.segment_idc(i) for i in range(self.n_segments)])

    def overall_rate(self) -> float:
        return mean_rate(self.timestamps, self.duration)

    def split(self, at_segment: int) -> tuple["Trace", "Trace"]:
        """Split into two traces at a segment boundary (train/test split)."""
        if not 0 < at_segment < self.n_segments:
            raise ValueError(f"at_segment must be in (0, {self.n_segments})")
        cut = at_segment * self.segment_duration
        i = int(np.searchsorted(self.timestamps, cut))
        head = Trace(self.name + "[:%d]" % at_segment, self.timestamps[:i],
                     self.segment_duration, at_segment, dict(self.metadata))
        tail = Trace(self.name + "[%d:]" % at_segment, self.timestamps[i:] - cut,
                     self.segment_duration, self.n_segments - at_segment, dict(self.metadata))
        return head, tail


def _assemble(name: str, segments: list[np.ndarray], segment_duration: float,
              metadata: dict) -> Trace:
    parts = [seg + i * segment_duration for i, seg in enumerate(segments)]
    ts = np.concatenate(parts) if parts else np.empty(0)
    return Trace(name, ts, segment_duration, len(segments), metadata)


def azure_like(
    seed: int | None | np.random.Generator = 0,
    n_segments: int = 24,
    segment_duration: float = 60.0,
    base_rate: float = 120.0,
) -> Trace:
    """Azure-Functions-like trace: diurnal profile, moderate burstiness."""
    rng = as_rng(seed)
    child = spawn_rngs(rng, n_segments)
    segments = []
    rates = []
    for i in range(n_segments):
        diurnal = 1.0 + 0.55 * np.sin(2 * np.pi * (i / n_segments - 0.25))
        wiggle = rng.uniform(0.75, 1.3)
        rate = base_rate * diurnal * wiggle
        burst = rng.uniform(1.4, 1.9)
        proc = mmpp2_with_burstiness(rate, burst, cycle_time=rng.uniform(1.0, 2.5),
                                     duty=rng.uniform(0.4, 0.5))
        segments.append(proc.sample(duration=segment_duration, seed=child[i]))
        rates.append(rate)
    return _assemble("azure", segments, segment_duration, {"rates": rates})


def twitter_like(
    seed: int | None | np.random.Generator = 1,
    n_segments: int = 24,
    segment_duration: float = 60.0,
    base_rate: float = 140.0,
) -> Trace:
    """Twitter-stream-like trace: statistically similar to Azure but milder
    and steadier (IDC ≈ 4 band) — the in-distribution unseen test set."""
    rng = as_rng(seed)
    child = spawn_rngs(rng, n_segments)
    segments = []
    for i in range(n_segments):
        diurnal = 1.0 + 0.35 * np.sin(2 * np.pi * (i / n_segments - 0.2))
        rate = base_rate * diurnal * rng.uniform(0.9, 1.1)
        proc = mmpp2_with_burstiness(rate, rng.uniform(1.2, 1.35),
                                     cycle_time=rng.uniform(0.8, 1.5),
                                     duty=0.5)
        segments.append(proc.sample(duration=segment_duration, seed=child[i]))
    return _assemble("twitter", segments, segment_duration, {})


def alibaba_like(
    seed: int | None | np.random.Generator = 2,
    n_segments: int = 24,
    segment_duration: float = 60.0,
    base_rate: float = 100.0,
) -> Trace:
    """Alibaba-PAI-like MLaaS trace: sharp swings between near-idle and hot
    segments with strong on-off burstiness (high, variable IDC; OOD)."""
    rng = as_rng(seed)
    child = spawn_rngs(rng, n_segments)
    segments = []
    # Alternate calm/hot regimes with abrupt jumps; the 4th/6th-style peaks
    # (§IV-C) follow flat periods, which is what defeats BATCH's fitting.
    # The first segment starts hot (as in the paper's Fig. 4c), so the
    # observable fine-tuning hour contains the bursty regime.
    regime = rng.uniform(1.2, 2.2)
    for i in range(n_segments):
        if i > 0 and rng.random() < 0.4:  # regime switch
            regime = rng.uniform(0.08, 1.0) ** 2 * 4.0  # heavy-tailed multiplier
        rate = base_rate * max(regime, 0.05) * rng.uniform(0.7, 1.4)
        burst = rng.uniform(2.5, 4.0)
        proc = mmpp2_with_burstiness(rate, burst, cycle_time=rng.uniform(4.0, 10.0),
                                     duty=rng.uniform(0.15, 0.3))
        segments.append(proc.sample(duration=segment_duration, seed=child[i]))
    return _assemble("alibaba", segments, segment_duration, {})


def map_synthetic(
    seed: int | None | np.random.Generator = 3,
    n_segments: int = 24,
    segment_duration: float = 60.0,
    base_rate: float = 150.0,
) -> Trace:
    """The paper's MAP-generated synthetic workload: 24 unique MMPP
    segments with significant variation and on-off behaviour (§IV-A.2)."""
    rng = as_rng(seed)
    child = spawn_rngs(rng, n_segments)
    segments = []
    for i in range(n_segments):
        # Fluctuate sharply between low and high intensities.
        level = rng.choice([0.15, 0.4, 1.0, 2.0], p=[0.3, 0.25, 0.3, 0.15])
        rate = base_rate * level * rng.uniform(0.8, 1.25)
        burst = rng.uniform(3.0, 6.0)
        proc = mmpp2_with_burstiness(rate, burst, cycle_time=rng.uniform(5.0, 15.0),
                                     duty=rng.uniform(0.1, 0.2))
        segments.append(proc.sample(duration=segment_duration, seed=child[i]))
    return _assemble("synthetic", segments, segment_duration, {})


STANDARD_TRACES = {
    "azure": azure_like,
    "twitter": twitter_like,
    "alibaba": alibaba_like,
    "synthetic": map_synthetic,
}
