"""KPC-style MAP fitting from an observed inter-arrival sample.

This is the workload-model step of the BATCH baseline (§II of the BATCH
paper, §IV-B here): every hour BATCH collects the previous window's
arrivals and fits a Markovian Arrival Process to them. We follow the
KPC-toolbox philosophy (Casale, Zhang & Smirni, *Perform. Evaluation* 2010):
match the first two inter-arrival moments plus the lag-1 autocorrelation,
with progressively simpler fallbacks when the data cannot support a
correlated 2-phase fit:

* SCV ≈ 1, ρ₁ ≈ 0 → Poisson process;
* SCV > 1, ρ₁ ≈ 0 → hyperexponential renewal MAP;
* SCV < 1            → Erlang renewal MAP;
* otherwise          → MMPP(2) via numerical moment matching.

The deliberate cost of this step (an optimizer run over analytic MAP
moments) reproduces BATCH's documented fitting overhead, and its
*staleness* — it describes last hour, not the next — reproduces BATCH's
failure mode on bursty traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.arrival.map_process import MAP, erlang_map, hyperexp_map, poisson_map
from repro.arrival.mmpp import mmpp2
from repro.arrival.stats import autocorrelation, scv


@dataclass(frozen=True)
class FitReport:
    """Diagnostics of a MAP fit."""

    kind: str
    target_mean: float
    target_scv: float
    target_rho1: float
    fitted_mean: float
    fitted_scv: float
    fitted_rho1: float

    @property
    def mean_error(self) -> float:
        return abs(self.fitted_mean - self.target_mean) / self.target_mean


def empirical_targets(interarrival_times: np.ndarray) -> tuple[float, float, float]:
    """(mean, SCV, lag-1 autocorrelation) of an inter-arrival sample."""
    x = np.asarray(interarrival_times, dtype=float)
    if x.size < 2:
        raise ValueError(f"need at least 2 inter-arrival samples, got {x.size}")
    if np.any(x < 0):
        raise ValueError("inter-arrival times must be non-negative")
    mean = float(x.mean())
    if mean <= 0:
        raise ValueError("mean inter-arrival time must be positive")
    c2 = scv(x)
    rho1 = float(autocorrelation(x, 1)[0]) if x.size >= 3 else 0.0
    return mean, c2, rho1


def fit_map(
    interarrival_times: np.ndarray,
    scv_tol: float = 0.05,
    rho_tol: float = 0.02,
) -> tuple[MAP, FitReport]:
    """Fit a MAP to an inter-arrival sample, with renewal/Poisson fallbacks.

    Returns the fitted process and a :class:`FitReport` comparing the
    empirical targets with the fitted process's analytic statistics.
    """
    mean, c2, rho1 = empirical_targets(interarrival_times)
    rate = 1.0 / mean

    if abs(c2 - 1.0) <= scv_tol and abs(rho1) <= rho_tol:
        fitted, kind = poisson_map(rate), "poisson"
    elif c2 < 1.0 - scv_tol:
        stages = max(2, min(20, int(round(1.0 / max(c2, 0.05)))))
        fitted, kind = erlang_map(rate, stages), f"erlang-{stages}"
    elif abs(rho1) <= rho_tol:
        fitted, kind = hyperexp_map(rate, max(c2, 1.0 + scv_tol)), "hyperexp"
    else:
        fitted, kind = _fit_mmpp2(mean, c2, max(rho1, 0.0)), "mmpp2"

    report = FitReport(
        kind=kind,
        target_mean=mean,
        target_scv=c2,
        target_rho1=rho1,
        fitted_mean=fitted.mean_interarrival(),
        fitted_scv=fitted.scv(),
        fitted_rho1=float(fitted.autocorrelation(1)[0]),
    )
    return fitted, report


def correlated_h2_map(mean: float, c2: float, rho1: float) -> MAP:
    """Closed-form MAP(2) matching (mean, SCV, ρ₁) exactly when feasible.

    Construction: a Markov-switching hyperexponential. The marginal is the
    balanced-means H2 that matches ``(mean, c2)``; the phase chain embedded
    at arrivals is the *sticky* matrix ``P = ρ·I + (1−ρ)·𝟙π``, which keeps
    the marginal exact for any stickiness ρ and yields a geometric
    inter-arrival ACF ρ_k = ρ^k · V_between/Var. Solving for ρ matches the
    empirical lag-1 autocorrelation (clamped to the feasible range
    ``[0, ρ_max)`` — a two-phase MAP cannot exceed ρ_max = V_between/Var).
    """
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")
    if c2 <= 1.0:
        raise ValueError(f"correlated H2 requires SCV > 1, got {c2}")
    # Balanced-means H2 marginal.
    p1 = 0.5 * (1.0 + np.sqrt((c2 - 1.0) / (c2 + 1.0)))
    p2 = 1.0 - p1
    rate = 1.0 / mean
    mu1 = 2.0 * p1 * rate
    mu2 = 2.0 * p2 * rate
    pi = np.array([p1, p2])
    m = np.array([1.0 / mu1, 1.0 / mu2])
    between = float(pi @ m**2 - mean**2)  # variance of conditional means
    var = 2.0 * float(pi @ m**2) - mean**2
    rho_max = between / var if var > 0 else 0.0
    if rho_max <= 0:
        stick = 0.0
    else:
        stick = float(np.clip(rho1 / rho_max, 0.0, 0.999))
    p = stick * np.eye(2) + (1.0 - stick) * np.outer(np.ones(2), pi)
    d0 = np.diag([-mu1, -mu2])
    d1 = np.array([[mu1, 0.0], [0.0, mu2]]) @ p
    return MAP(d0, d1)


def _fit_mmpp2(mean: float, c2: float, rho1: float) -> MAP:
    """Correlated 2-phase fit; falls back to renewal H2 for SCV ≤ 1 edge
    cases that slip past the branch logic."""
    if c2 <= 1.0:
        return hyperexp_map(1.0 / mean, 1.0 + 1e-3)
    return correlated_h2_map(mean, c2, rho1)


def fit_map_kpc(
    interarrival_times: np.ndarray,
    order: int = 4,
    n_lags: int = 5,
    restarts: int = 5,
    max_nfev: int = 200,
    seed: int = 0,
) -> tuple[MAP, FitReport]:
    """KPC-toolbox-style numerical MAP(``order``) fit.

    Matches the first two inter-arrival moments plus the autocorrelation at
    lags 1..``n_lags`` by nonlinear least squares over a general MAP's rate
    parameters (log-space, multiple random restarts) — the genuinely
    expensive fitting procedure BATCH relies on (§IV-F attributes most of
    BATCH's 40 s decision latency to it). Use :func:`fit_map` for the fast
    closed-form 2-phase alternative.
    """
    from scipy import optimize

    if order < 2:
        raise ValueError(f"order must be >= 2, got {order}")
    if restarts < 1 or n_lags < 1:
        raise ValueError("restarts and n_lags must be >= 1")
    mean, c2, _ = empirical_targets(interarrival_times)
    x = np.asarray(interarrival_times, dtype=float)
    from repro.arrival.stats import autocorrelation

    rho = autocorrelation(x, n_lags) if x.size >= n_lags + 2 else np.zeros(n_lags)
    target = np.concatenate([[mean, c2], rho])
    weights = np.concatenate([[1.0 / mean, 1.0 / max(c2, 1.0)],
                              np.full(n_lags, 1.0 / 0.1)])
    rate = 1.0 / mean
    m = order
    n_off = m * (m - 1)

    def build(theta: np.ndarray) -> MAP | None:
        off = np.exp(theta[:n_off])
        d1 = np.exp(theta[n_off:]).reshape(m, m)
        d0 = np.zeros((m, m))
        idx = 0
        for i in range(m):
            for j in range(m):
                if i != j:
                    d0[i, j] = off[idx]
                    idx += 1
        np.fill_diagonal(d0, 0.0)
        diag = -(d0.sum(axis=1) + d1.sum(axis=1))
        if np.any(diag >= -1e-12):
            return None
        np.fill_diagonal(d0, diag)
        try:
            return MAP(d0, d1)
        except (ValueError, np.linalg.LinAlgError):
            return None

    def residuals(theta: np.ndarray) -> np.ndarray:
        candidate = build(theta)
        if candidate is None:
            return np.full(target.size, 1e3)
        try:
            got = np.concatenate([
                [candidate.mean_interarrival(), candidate.scv()],
                candidate.autocorrelation(n_lags),
            ])
        except (np.linalg.LinAlgError, RuntimeError):
            return np.full(target.size, 1e3)
        if not np.all(np.isfinite(got)):
            return np.full(target.size, 1e3)
        return (got - target) * weights

    rng = np.random.default_rng(seed)
    best_theta, best_cost = None, np.inf
    for _ in range(restarts):
        # Start near a Poisson-equivalent with random perturbation.
        theta0 = np.concatenate([
            np.log(np.full(n_off, rate * 0.2)) + rng.normal(0, 1.0, n_off),
            np.log(np.full(m * m, rate / m)) + rng.normal(0, 1.0, m * m),
        ])
        try:
            sol = optimize.least_squares(residuals, theta0, max_nfev=max_nfev)
        except Exception:
            continue
        if sol.cost < best_cost and build(sol.x) is not None:
            best_theta, best_cost = sol.x, sol.cost
    if best_theta is None:
        # Optimization failed everywhere: fall back to the closed form.
        return fit_map(interarrival_times)
    fitted = build(best_theta)
    report = FitReport(
        kind=f"kpc-{order}",
        target_mean=mean,
        target_scv=c2,
        target_rho1=float(rho[0]),
        fitted_mean=fitted.mean_interarrival(),
        fitted_scv=fitted.scv(),
        fitted_rho1=float(fitted.autocorrelation(1)[0]),
    )
    return fitted, report
