"""Fixed-length inter-arrival windows — the surrogate model's input S.

The paper's model consumes the most recent ``l`` inter-arrival times
(default 256, §V). When fewer arrivals are available the window is padded on
the left (§III-A mentions padding/sliding-window techniques).
"""

from __future__ import annotations

import numpy as np


def latest_window(
    interarrival_times: np.ndarray,
    length: int,
    pad_value: float | None = None,
) -> np.ndarray:
    """Return the last ``length`` inter-arrival samples, left-padded.

    ``pad_value`` defaults to the sample mean (or 0 when the sample is
    empty), which keeps padded windows statistically neutral.

    Non-finite inter-arrivals are rejected: with the mean default a single
    NaN would silently poison every padded slot (and any downstream
    surrogate input), so the poisoning is surfaced here with a clear error
    instead.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    x = np.asarray(interarrival_times, dtype=float)
    if x.size and not np.isfinite(x).all():
        bad = np.flatnonzero(~np.isfinite(x))
        raise ValueError(
            f"interarrival_times contains {bad.size} non-finite "
            f"value(s) (first at index {bad[0]}); windows must be finite"
        )
    if x.size >= length:
        return x[-length:].copy()
    if pad_value is None:
        pad_value = float(x.mean()) if x.size else 0.0
    out = np.full(length, pad_value)
    if x.size:
        out[-x.size:] = x
    return out


def sliding_windows(
    interarrival_times: np.ndarray,
    length: int,
    stride: int = 1,
) -> np.ndarray:
    """All complete sliding windows as a ``(n_windows, length)`` view-copy."""
    if length < 1 or stride < 1:
        raise ValueError("length and stride must be >= 1")
    x = np.asarray(interarrival_times, dtype=float)
    if x.size < length:
        return np.empty((0, length))
    n = (x.size - length) // stride + 1
    idx = np.arange(length)[None, :] + stride * np.arange(n)[:, None]
    return x[idx]


def sample_windows(
    interarrival_times: np.ndarray,
    length: int,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Randomly sample ``n_samples`` windows (with replacement) — the
    paper's offline-training sampling of arrival sequences (§III-D)."""
    x = np.asarray(interarrival_times, dtype=float)
    if x.size < length:
        raise ValueError(
            f"need at least {length} inter-arrival samples, got {x.size}"
        )
    starts = rng.integers(0, x.size - length + 1, size=n_samples)
    idx = starts[:, None] + np.arange(length)[None, :]
    return x[idx]
