"""Trace persistence: save/load :class:`repro.arrival.traces.Trace` objects.

Two formats:

* ``.npz`` — lossless, fast, the library's native round-trip format;
* ``.csv`` — one timestamp per line (plus a small header), for exchanging
  traces with external tools or loading real trace excerpts prepared
  elsewhere.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.arrival.traces import Trace


def save_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace to ``.npz`` (timestamps + segmentation + metadata)."""
    np.savez_compressed(
        path,
        timestamps=trace.timestamps,
        segment_duration=np.array([trace.segment_duration]),
        n_segments=np.array([trace.n_segments]),
        name=np.array([trace.name]),
        metadata=np.array([json.dumps(trace.metadata, default=str)]),
    )


def load_trace(path: str | os.PathLike) -> Trace:
    """Load a trace saved by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        return Trace(
            name=str(archive["name"][0]),
            timestamps=archive["timestamps"],
            segment_duration=float(archive["segment_duration"][0]),
            n_segments=int(archive["n_segments"][0]),
            metadata=json.loads(str(archive["metadata"][0])),
        )


def export_csv(trace: Trace, path: str | os.PathLike) -> None:
    """Write ``# name,segment_duration,n_segments`` then one timestamp/line."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {trace.name},{trace.segment_duration},{trace.n_segments}\n")
        for t in trace.timestamps:
            fh.write(f"{t:.9f}\n")


def import_csv(
    path: str | os.PathLike,
    name: str | None = None,
    segment_duration: float | None = None,
    n_segments: int | None = None,
) -> Trace:
    """Read a CSV trace; header values can be overridden by the arguments.

    Files without the ``#`` header need ``segment_duration`` and
    ``n_segments`` passed explicitly.
    """
    path = Path(path)
    header_name, header_sd, header_ns = None, None, None
    with path.open() as fh:
        first = fh.readline().strip()
        body_start = 0
        if first.startswith("#"):
            parts = first.lstrip("# ").split(",")
            if len(parts) != 3:
                raise ValueError(f"malformed trace header: {first!r}")
            header_name, header_sd, header_ns = parts[0], float(parts[1]), int(parts[2])
        else:
            body_start = None  # first line is data
        rest = fh.read().splitlines()
    lines = ([first] if body_start is None else []) + rest
    timestamps = np.array([float(x) for x in lines if x.strip()])

    sd = segment_duration if segment_duration is not None else header_sd
    ns = n_segments if n_segments is not None else header_ns
    if sd is None or ns is None:
        raise ValueError(
            "segment_duration and n_segments required (no header in file)"
        )
    return Trace(
        name=name if name is not None else (header_name or path.stem),
        timestamps=np.sort(timestamps),
        segment_duration=sd,
        n_segments=ns,
    )
