"""Markovian Arrival Processes (MAPs).

A MAP is defined by two matrices ``(D0, D1)``: ``D0`` holds the rates of
hidden (non-arrival) transitions plus the diagonal of total outflow, ``D1``
the rates of transitions that generate an arrival. ``D0 + D1`` is the
generator of the background CTMC. MAPs capture *bursty*, autocorrelated
arrival streams and are the workhorse of both the paper's synthetic trace
(§IV-A) and the BATCH baseline's workload model.

References: Casale et al., "How to parameterize models with bursty
workloads" (SIGMETRICS PER 2008); Riska & Smirni, "M/G/1-type Markov
processes: a tutorial".
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_finite


class MAP:
    """A Markovian Arrival Process ``(D0, D1)``.

    Parameters are validated on construction: ``D0`` must have non-negative
    off-diagonal entries and a strictly negative diagonal, ``D1`` must be
    non-negative, and the rows of ``D0 + D1`` must sum to zero.
    """

    def __init__(self, d0: np.ndarray, d1: np.ndarray) -> None:
        d0 = np.asarray(d0, dtype=float)
        d1 = np.asarray(d1, dtype=float)
        if d0.ndim != 2 or d0.shape[0] != d0.shape[1]:
            raise ValueError(f"D0 must be square, got shape {d0.shape}")
        if d1.shape != d0.shape:
            raise ValueError(f"D1 shape {d1.shape} must match D0 shape {d0.shape}")
        check_finite(d0, "D0")
        check_finite(d1, "D1")
        off = d0 - np.diag(np.diag(d0))
        if np.any(off < -1e-12):
            raise ValueError("D0 off-diagonal entries must be non-negative")
        if np.any(np.diag(d0) >= 0):
            raise ValueError("D0 diagonal entries must be negative")
        if np.any(d1 < -1e-12):
            raise ValueError("D1 entries must be non-negative")
        rowsums = (d0 + d1).sum(axis=1)
        if not np.allclose(rowsums, 0.0, atol=1e-8):
            raise ValueError(f"rows of D0 + D1 must sum to zero, got {rowsums}")
        self.d0 = d0
        self.d1 = np.clip(d1, 0.0, None)

    # ------------------------------------------------------------ structure
    @property
    def order(self) -> int:
        """Number of phases."""
        return self.d0.shape[0]

    @property
    def generator(self) -> np.ndarray:
        """Generator ``Q = D0 + D1`` of the background CTMC."""
        return self.d0 + self.d1

    def stationary_phase(self) -> np.ndarray:
        """Stationary distribution θ of the background CTMC (θQ = 0)."""
        q = self.generator
        m = self.order
        # Solve θQ = 0 with normalization by replacing one equation.
        a = np.vstack([q.T, np.ones(m)])
        b = np.zeros(m + 1)
        b[-1] = 1.0
        theta, *_ = np.linalg.lstsq(a, b, rcond=None)
        theta = np.clip(theta, 0.0, None)
        return theta / theta.sum()

    def embedded_chain(self) -> np.ndarray:
        """Transition matrix ``P = (-D0)^{-1} D1`` of the phase chain
        embedded at arrival epochs."""
        return np.linalg.solve(-self.d0, self.d1)

    def arrival_phase_distribution(self) -> np.ndarray:
        """Stationary phase distribution π just after an arrival (πP = π)."""
        p = self.embedded_chain()
        m = self.order
        # Solve π(P − I) = 0 with the normalization πᵀ𝟙 = 1 appended.
        a = np.vstack([(p - np.eye(m)).T, np.ones(m)])
        b = np.zeros(m + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise RuntimeError("failed to compute arrival phase distribution")
        return pi / total

    # -------------------------------------------------------------- moments
    def arrival_rate(self) -> float:
        """Long-run arrival rate λ = θ D1 𝟙."""
        return float(self.stationary_phase() @ self.d1 @ np.ones(self.order))

    def interarrival_moment(self, k: int) -> float:
        """Raw k-th moment of the stationary interarrival time:
        E[X^k] = k! · π (−D0)^{−k} 𝟙."""
        if k < 1:
            raise ValueError(f"moment order must be >= 1, got {k}")
        pi = self.arrival_phase_distribution()
        inv = np.linalg.inv(-self.d0)
        acc = pi.copy()
        for _ in range(k):
            acc = acc @ inv
        return float(_factorial(k) * acc.sum())

    def mean_interarrival(self) -> float:
        return self.interarrival_moment(1)

    def scv(self) -> float:
        """Squared coefficient of variation of interarrival times."""
        m1 = self.interarrival_moment(1)
        m2 = self.interarrival_moment(2)
        return m2 / m1**2 - 1.0

    def autocorrelation(self, lags: int) -> np.ndarray:
        """Lag-k autocorrelation ρ_k of interarrival times, k = 1..lags.

        ρ_k = (λ² · π M P^k M 𝟙 − 1) / (2λ² m₂/2 − ... ) — implemented via
        the standard joint-moment identity
        E[X₀ X_k] = π M P^k M 𝟙 with M = (−D0)^{−1}.
        """
        if lags < 1:
            raise ValueError(f"lags must be >= 1, got {lags}")
        pi = self.arrival_phase_distribution()
        m = np.linalg.inv(-self.d0)
        p = self.embedded_chain()
        ones = np.ones(self.order)
        m1 = self.interarrival_moment(1)
        var = self.interarrival_moment(2) - m1**2
        if var <= 0:
            return np.zeros(lags)
        rho = np.empty(lags)
        left = pi @ m
        pk = np.eye(self.order)
        for k in range(1, lags + 1):
            pk = pk @ p
            joint = left @ pk @ m @ ones
            rho[k - 1] = (joint - m1**2) / var
        return rho

    def idi(self, max_lag: int = 200) -> float:
        """Index of dispersion for intervals (the paper's IDC formula):
        (σ²/μ²)(1 + 2 Σ_k ρ_k), truncated at ``max_lag``."""
        rho = self.autocorrelation(max_lag)
        return self.scv() * (1.0 + 2.0 * float(rho.sum()))

    # ------------------------------------------------------------- sampling
    def sample(
        self,
        n_arrivals: int | None = None,
        duration: float | None = None,
        seed: int | None | np.random.Generator = None,
        start_phase: int | None = None,
    ) -> np.ndarray:
        """Generate arrival timestamps starting at time 0.

        Exactly one of ``n_arrivals`` / ``duration`` must be given. The
        simulation walks the background CTMC event by event, pre-drawing
        random numbers in blocks so the Python loop stays lean.
        """
        if (n_arrivals is None) == (duration is None):
            raise ValueError("specify exactly one of n_arrivals or duration")
        rng = as_rng(seed)
        m = self.order
        exit_rate = -np.diag(self.d0)
        # Per-phase next-state distribution over 2m outcomes:
        # columns 0..m-1 hidden transitions, m..2m-1 arrival transitions.
        trans = np.hstack([self.d0 - np.diag(np.diag(self.d0)), self.d1])
        trans = trans / exit_rate[:, None]
        cum = np.cumsum(trans, axis=1)

        if start_phase is None:
            theta = self.stationary_phase()
            phase = int(rng.choice(m, p=theta))
        else:
            if not 0 <= start_phase < m:
                raise ValueError(f"start_phase must be in [0, {m}), got {start_phase}")
            phase = start_phase

        arrivals: list[float] = []
        t = 0.0
        block = 8192
        exp_buf = rng.exponential(size=block)
        uni_buf = rng.random(size=block)
        i = 0
        target_n = n_arrivals if n_arrivals is not None else np.inf
        target_t = duration if duration is not None else np.inf
        while len(arrivals) < target_n and t < target_t:
            if i >= block:
                exp_buf = rng.exponential(size=block)
                uni_buf = rng.random(size=block)
                i = 0
            t += exp_buf[i] / exit_rate[phase]
            outcome = int(np.searchsorted(cum[phase], uni_buf[i]))
            i += 1
            if outcome >= m:  # arrival transition
                if t < target_t:
                    arrivals.append(t)
                phase = outcome - m
            else:
                phase = outcome
        return np.asarray(arrivals)

    def __repr__(self) -> str:
        return f"MAP(order={self.order}, rate={self.arrival_rate():.4g})"


def _factorial(k: int) -> int:
    out = 1
    for i in range(2, k + 1):
        out *= i
    return out


def poisson_map(rate: float) -> MAP:
    """The Poisson process as a 1-phase MAP."""
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    return MAP(np.array([[-rate]]), np.array([[rate]]))


def erlang_map(rate: float, stages: int = 2) -> MAP:
    """Erlang-``stages`` renewal process as a MAP (SCV < 1, no correlation)."""
    if rate <= 0 or stages < 1:
        raise ValueError("rate must be > 0 and stages >= 1")
    nu = rate * stages  # per-stage rate so the mean interarrival is 1/rate
    d0 = np.diag(np.full(stages, -nu)) + np.diag(np.full(stages - 1, nu), k=1)
    d1 = np.zeros((stages, stages))
    d1[-1, 0] = nu
    return MAP(d0, d1)


def hyperexp_map(rate: float, scv: float, balance: float = 0.5) -> MAP:
    """Two-phase hyperexponential renewal process with target SCV > 1.

    Uses balanced means: phase i chosen with prob p_i, rate μ_i, no
    autocorrelation. ``balance`` sets p₁ (0 < balance < 1).
    """
    if scv <= 1.0:
        raise ValueError(f"hyperexponential requires SCV > 1, got {scv}")
    if not 0 < balance < 1:
        raise ValueError(f"balance must be in (0, 1), got {balance}")
    p1 = 0.5 * (1.0 + np.sqrt((scv - 1.0) / (scv + 1.0)))
    p2 = 1.0 - p1
    mu1 = 2.0 * p1 * rate
    mu2 = 2.0 * p2 * rate
    d0 = np.diag([-mu1, -mu2])
    d1 = np.array([[p1 * mu1, p2 * mu1], [p1 * mu2, p2 * mu2]])
    return MAP(d0, d1)
