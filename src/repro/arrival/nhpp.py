"""Non-homogeneous Poisson processes (NHPPs) and process composition.

Real serverless workloads modulate a base process with slow rate profiles
(diurnal cycles, deploy events). The NHPP sampler uses thinning (Lewis &
Shedler) against an arbitrary rate function; :func:`superpose` merges
independent streams (multi-tenant aggregation) and :func:`thin` splits one.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import as_rng


def sample_nhpp(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    duration: float,
    rate_bound: float,
    seed: int | None | np.random.Generator = None,
) -> np.ndarray:
    """Sample an NHPP on ``[0, duration)`` by thinning.

    ``rate_fn`` maps an array of times to instantaneous rates; it must be
    bounded above by ``rate_bound`` (violations raise, because silently
    clipping would bias the process).
    """
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if rate_bound <= 0:
        raise ValueError(f"rate_bound must be > 0, got {rate_bound}")
    rng = as_rng(seed)
    # Candidate homogeneous stream at the bound, generated in blocks.
    t = 0.0
    out: list[float] = []
    block = max(64, int(rate_bound * duration * 1.2))
    while t < duration:
        gaps = rng.exponential(1.0 / rate_bound, size=block)
        times = t + np.cumsum(gaps)
        times = times[times < duration]
        if times.size == 0:
            break
        rates = np.asarray(rate_fn(times), dtype=float)
        if np.any(rates > rate_bound * (1 + 1e-9)):
            raise ValueError("rate_fn exceeds rate_bound; thinning would be biased")
        if np.any(rates < 0):
            raise ValueError("rate_fn must be non-negative")
        keep = rng.random(times.size) < rates / rate_bound
        out.extend(times[keep])
        t = times[-1] if times.size else duration
        if times.size < block:
            break
    return np.asarray(out)


def diurnal_rate(
    base_rate: float,
    amplitude: float = 0.5,
    period: float = 86_400.0,
    phase: float = 0.0,
) -> Callable[[np.ndarray], np.ndarray]:
    """A sinusoidal day/night rate profile: base·(1 + amplitude·sin(...))."""
    if base_rate <= 0:
        raise ValueError(f"base_rate must be > 0, got {base_rate}")
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")

    def rate(t: np.ndarray) -> np.ndarray:
        return base_rate * (1.0 + amplitude * np.sin(2 * np.pi * (np.asarray(t) / period) + phase))

    return rate


def superpose(*streams: np.ndarray) -> np.ndarray:
    """Merge independent arrival streams (multi-tenant aggregation)."""
    if not streams:
        raise ValueError("superpose requires at least one stream")
    return np.sort(np.concatenate([np.asarray(s, dtype=float) for s in streams]))


def thin(
    timestamps: np.ndarray,
    keep_probability: float,
    seed: int | None | np.random.Generator = None,
) -> np.ndarray:
    """Independently keep each arrival with ``keep_probability`` —
    Bernoulli sampling of a stream (e.g. the paper's 0.05 % training
    sampling of the Azure arrival process)."""
    if not 0.0 < keep_probability <= 1.0:
        raise ValueError(f"keep_probability must be in (0, 1], got {keep_probability}")
    ts = np.asarray(timestamps, dtype=float)
    rng = as_rng(seed)
    return ts[rng.random(ts.size) < keep_probability]
