"""Markov-Modulated Poisson Processes (MMPPs) — the bursty-workload
building block used by the synthetic traces (§IV-A) and the BATCH fitter.

An MMPP(2) is a MAP whose arrivals are Poisson with a rate that switches
between two levels according to a background 2-state CTMC. The *on-off*
special case (one level near zero) produces the sharp burst/silence pattern
of the Alibaba-like and MAP-generated traces.
"""

from __future__ import annotations

import numpy as np

from repro.arrival.map_process import MAP


def mmpp2(rate1: float, rate2: float, switch12: float, switch21: float) -> MAP:
    """Two-state MMPP: Poisson rates ``rate1``/``rate2`` in states 1/2,
    with switching rates ``switch12`` (1→2) and ``switch21`` (2→1)."""
    for name, v in [("rate1", rate1), ("rate2", rate2)]:
        if v < 0:
            raise ValueError(f"{name} must be >= 0, got {v}")
    if rate1 <= 0 and rate2 <= 0:
        raise ValueError("at least one state must have a positive arrival rate")
    for name, v in [("switch12", switch12), ("switch21", switch21)]:
        if v <= 0:
            raise ValueError(f"{name} must be > 0, got {v}")
    d0 = np.array(
        [
            [-(rate1 + switch12), switch12],
            [switch21, -(rate2 + switch21)],
        ]
    )
    d1 = np.diag([rate1, rate2])
    return MAP(d0, d1)


def on_off(peak_rate: float, mean_on: float, mean_off: float,
           off_rate_fraction: float = 0.01) -> MAP:
    """On-off MMPP(2): bursts at ``peak_rate`` for an exponential ``mean_on``
    period, then near-silence (``off_rate_fraction`` of the peak) for
    ``mean_off``. Captures the on-off traffic the paper highlights for
    serverless environments."""
    if peak_rate <= 0:
        raise ValueError(f"peak_rate must be > 0, got {peak_rate}")
    if mean_on <= 0 or mean_off <= 0:
        raise ValueError("mean_on and mean_off must be > 0")
    if not 0.0 <= off_rate_fraction < 1.0:
        raise ValueError(f"off_rate_fraction must be in [0, 1), got {off_rate_fraction}")
    return mmpp2(
        rate1=peak_rate,
        rate2=peak_rate * off_rate_fraction,
        switch12=1.0 / mean_on,
        switch21=1.0 / mean_off,
    )


def mmpp2_mean_rate(rate1: float, rate2: float, switch12: float, switch21: float) -> float:
    """Closed-form long-run arrival rate of :func:`mmpp2`."""
    p1 = switch21 / (switch12 + switch21)
    return p1 * rate1 + (1.0 - p1) * rate2


def mmpp2_with_burstiness(
    mean_rate: float,
    burstiness: float,
    cycle_time: float,
    duty: float = 0.5,
) -> MAP:
    """Construct an MMPP(2) with a target mean rate and burstiness knob.

    ``burstiness`` >= 1 scales the high state's rate relative to the mean
    (1 → plain Poisson behaviour in the limit; larger → burstier); ``duty``
    is the long-run fraction of time in the high state; ``cycle_time`` the
    mean on+off cycle duration, which controls how slowly the correlation
    decays (longer cycles ⇒ larger IDC).
    """
    if mean_rate <= 0:
        raise ValueError(f"mean_rate must be > 0, got {mean_rate}")
    if burstiness < 1.0:
        raise ValueError(f"burstiness must be >= 1, got {burstiness}")
    if not 0 < duty < 1:
        raise ValueError(f"duty must be in (0, 1), got {duty}")
    if cycle_time <= 0:
        raise ValueError(f"cycle_time must be > 0, got {cycle_time}")
    high = mean_rate * burstiness
    # Solve duty*high + (1-duty)*low = mean_rate for the low rate.
    low = (mean_rate - duty * high) / (1.0 - duty)
    if low < 0:
        # Burstiness too extreme for this duty cycle: clamp low to ~0 and
        # recompute the high rate to preserve the mean.
        low = mean_rate * 1e-3
        high = (mean_rate - (1.0 - duty) * low) / duty
    mean_on = duty * cycle_time
    mean_off = (1.0 - duty) * cycle_time
    return mmpp2(rate1=high, rate2=low, switch12=1.0 / mean_on, switch21=1.0 / mean_off)
