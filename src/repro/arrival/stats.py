"""Empirical statistics of arrival traces: rates, autocorrelation, and the
index of dispersion (IDC) the paper uses to quantify burstiness (Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_sorted


def interarrivals(timestamps: np.ndarray) -> np.ndarray:
    """Inter-arrival times of a sorted timestamp array."""
    timestamps = check_sorted(np.asarray(timestamps, dtype=float), "timestamps")
    if timestamps.size < 2:
        return np.empty(0)
    return np.diff(timestamps)


def mean_rate(timestamps: np.ndarray, duration: float | None = None) -> float:
    """Arrivals per unit time over ``duration`` (default: observed span)."""
    timestamps = np.asarray(timestamps, dtype=float)
    if timestamps.size == 0:
        return 0.0
    if duration is None:
        duration = float(timestamps[-1] - timestamps[0])
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    return timestamps.size / duration


def binned_rate(
    timestamps: np.ndarray,
    bin_width: float,
    t_start: float | None = None,
    t_end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Arrival rate per time bin — the series plotted in Fig. 4.

    Returns ``(bin_centers, rates)``.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be > 0, got {bin_width}")
    timestamps = np.asarray(timestamps, dtype=float)
    if t_start is None:
        t_start = 0.0 if timestamps.size == 0 else float(timestamps[0])
    if t_end is None:
        t_end = t_start + bin_width if timestamps.size == 0 else float(timestamps[-1])
    n_bins = max(1, int(np.ceil((t_end - t_start) / bin_width)))
    edges = t_start + bin_width * np.arange(n_bins + 1)
    counts, _ = np.histogram(timestamps, bins=edges)
    centers = edges[:-1] + bin_width / 2
    return centers, counts / bin_width


def scv(x: np.ndarray) -> float:
    """Squared coefficient of variation σ²/μ² of a positive sample."""
    x = np.asarray(x, dtype=float)
    if x.size < 2:
        return 0.0
    mu = x.mean()
    if mu == 0:
        return 0.0
    return float(x.var() / mu**2)


def autocorrelation(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Biased sample autocorrelation ρ_k for k = 1..max_lag (FFT-based)."""
    x = np.asarray(x, dtype=float)
    n = x.size
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    if n < 2:
        return np.zeros(max_lag)
    max_lag = min(max_lag, n - 1)
    centered = x - x.mean()
    var = centered @ centered
    if var == 0:
        return np.zeros(max_lag)
    # FFT autocovariance: pad to the next power of two >= 2n for linear corr.
    size = 1 << int(np.ceil(np.log2(2 * n)))
    f = np.fft.rfft(centered, size)
    acov = np.fft.irfft(f * np.conj(f), size)[1 : max_lag + 1]
    return acov / var


def idc(x: np.ndarray, max_lag: int | None = None, cutoff: float = 0.01) -> float:
    """Index of dispersion of a (interarrival-time) series — the paper's
    burstiness metric: ``IDC = (σ²/μ²)(1 + 2 Σ_k ρ_k)``.

    The autocorrelation sum is truncated at ``max_lag`` (default √n·4,
    capped at n−1) and, past the first lag whose |ρ| drops below
    ``cutoff``, the tail is ignored — mirroring the paper's remark that
    empirical autocorrelation vanishes at high lags, giving finite IDC
    estimates.
    """
    x = np.asarray(x, dtype=float)
    if x.size < 3:
        return 1.0
    if max_lag is None:
        max_lag = min(x.size - 1, max(50, int(4 * np.sqrt(x.size))))
    rho = autocorrelation(x, max_lag)
    below = np.nonzero(np.abs(rho) < cutoff)[0]
    if below.size:
        rho = rho[: below[0]]
    return float(scv(x) * (1.0 + 2.0 * rho.sum()))


def counts_idc(timestamps: np.ndarray, window: float) -> float:
    """Index of dispersion for *counts*: Var(N(window)) / E[N(window)].

    1 for Poisson; ≫1 for bursty streams. Complements :func:`idc` as an
    alternative estimator used in cross-checks/tests.
    """
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    timestamps = np.asarray(timestamps, dtype=float)
    if timestamps.size == 0:
        return 1.0
    span = timestamps[-1] - timestamps[0]
    n_windows = int(span / window)
    if n_windows < 2:
        return 1.0
    edges = timestamps[0] + window * np.arange(n_windows + 1)
    counts, _ = np.histogram(timestamps, bins=edges)
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.var() / mean)
