"""Batching configurations and the candidate grid (Eq. 10c–e).

A configuration is the triple the whole paper optimizes: memory size ``M``
(MB), batch size ``B``, and timeout ``T`` (seconds). The default grid spans
the classic Lambda memory tiers and the paper's millisecond-scale timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.serverless.service_profile import MAX_MEMORY_MB, MIN_MEMORY_MB


@dataclass(frozen=True, order=True)
class BatchConfig:
    """One candidate system configuration (M, B, T)."""

    memory_mb: float
    batch_size: int
    timeout: float

    def __post_init__(self) -> None:
        if not MIN_MEMORY_MB <= self.memory_mb <= MAX_MEMORY_MB:
            raise ValueError(
                f"memory_mb must be in [{MIN_MEMORY_MB}, {MAX_MEMORY_MB}] (Eq. 10e), "
                f"got {self.memory_mb}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 (Eq. 10c), got {self.batch_size}")
        if self.timeout < 0:
            raise ValueError(f"timeout must be >= 0 (Eq. 10d), got {self.timeout}")

    def as_array(self) -> np.ndarray:
        """Feature vector F = (M, B, T) consumed by the surrogate."""
        return np.array([self.memory_mb, float(self.batch_size), self.timeout])

    def __str__(self) -> str:
        return f"(M={self.memory_mb:.0f}MB, B={self.batch_size}, T={self.timeout * 1e3:.0f}ms)"


#: Classic Lambda memory tiers used in the evaluation sweeps.
DEFAULT_MEMORIES: tuple[float, ...] = (256.0, 512.0, 1024.0, 1792.0, 3008.0)
#: Batch-size candidates.
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32)
#: Timeout candidates in seconds (0–200 ms).
DEFAULT_TIMEOUTS: tuple[float, ...] = (0.0, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2)


def config_grid(
    memories: tuple[float, ...] = DEFAULT_MEMORIES,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    timeouts: tuple[float, ...] = DEFAULT_TIMEOUTS,
) -> list[BatchConfig]:
    """Cartesian candidate grid, skipping useless (B=1, T>0) duplicates.

    With ``B == 1`` every request dispatches immediately, so any positive
    timeout is equivalent to ``T = 0``; keeping one representative shrinks
    the exhaustive search without changing the optimum.
    """
    configs = []
    for m, b, t in product(memories, batch_sizes, timeouts):
        if b == 1 and t > 0:
            continue
        configs.append(BatchConfig(m, b, t))
    return configs


def grid_features(configs: list[BatchConfig]) -> np.ndarray:
    """Stack a config list into an ``(n, 3)`` feature matrix."""
    if not configs:
        raise ValueError("configs must be non-empty")
    return np.stack([c.as_array() for c in configs])
