"""The online batching buffer (Fig. 2's Buffer component).

Holds incoming requests and dispatches a batch when either the batch-size
limit ``B`` is reached or the oldest waiting request has been held for the
timeout ``T``. This is the *live* (request-at-a-time) counterpart of the
vectorized simulator in :mod:`repro.batching.simulator`; both implement the
same policy, and tests cross-check them against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batching.config import BatchConfig
from repro.telemetry.events import DispatchEvent
from repro.telemetry.metrics import get_registry


@dataclass(frozen=True)
class Batch:
    """A dispatched batch: request indices, their arrival times, dispatch.

    ``indices`` is always a contiguous ascending run: the buffer numbers
    arrivals sequentially and only ever dispatches a prefix of its pending
    list. Consumers may rely on this — the serving engine assigns
    per-request results with ``[first_index : first_index + size]`` slices
    instead of fancy indexing.
    """

    indices: np.ndarray
    arrival_times: np.ndarray
    dispatch_time: float

    @property
    def size(self) -> int:
        return self.indices.size

    @property
    def first_index(self) -> int:
        """First request index of the (contiguous) batch."""
        return int(self.indices[0])

    def waits(self) -> np.ndarray:
        """Buffer wait of each request in the batch."""
        return self.dispatch_time - self.arrival_times


class BatchingBuffer:
    """Online buffer driven by ``observe``/``poll`` calls.

    Usage: feed arrivals with :meth:`observe` (monotone non-decreasing
    times); call :meth:`poll` to collect batches that became due by ``now``;
    call :meth:`flush` at stream end.
    """

    def __init__(self, config: BatchConfig) -> None:
        self.config = config
        self._pending_idx: list[int] = []
        self._pending_times: list[float] = []
        self._next_index = 0
        self._dispatched: list[Batch] = []
        self._last_time = -np.inf

    # ------------------------------------------------------------- plumbing
    def reconfigure(self, config: BatchConfig, now: float | None = None) -> list[Batch]:
        """Switch (M, B, T) online — the controller's step ③ in Fig. 2.

        With ``now`` given, batches that are due *under the new parameters*
        dispatch immediately and are returned: shrinking ``B`` below the
        pending count releases full batches of the new size (stamped
        ``now`` — they leave the moment the reconfiguration lands), and
        shortening ``T`` past an already-elapsed wait fires the timeout
        (stamped at the new deadline, capped below by no request's own
        arrival). Without ``now`` (the historical signature) pending
        requests stay buffered and are judged at the next poll.
        """
        self.config = config
        if now is None:
            return []
        out = self.poll(now)
        while len(self._pending_idx) >= self.config.batch_size:
            out.append(self._dispatch(now))
        return out

    @property
    def pending(self) -> int:
        return len(self._pending_idx)

    def next_deadline(self) -> float | None:
        """When the oldest pending request times out (``None`` if empty)."""
        if not self._pending_times:
            return None
        return self._pending_times[0] + self.config.timeout

    # ----------------------------------------------------------------- flow
    def observe(self, arrival_time: float) -> list[Batch]:
        """Register one arrival; returns any batches dispatched up to it."""
        if arrival_time < self._last_time:
            raise ValueError(
                f"arrival times must be non-decreasing: {arrival_time} < {self._last_time}"
            )
        self._last_time = arrival_time
        # Append before polling so an arrival landing exactly on a pending
        # batch's deadline joins that batch (matching the simulator's
        # closed-interval deadline semantics).
        self._pending_idx.append(self._next_index)
        self._pending_times.append(arrival_time)
        self._next_index += 1
        out = self.poll(arrival_time)
        if len(self._pending_idx) >= self.config.batch_size:
            out.append(self._dispatch(arrival_time))
        return out

    def poll(self, now: float) -> list[Batch]:
        """Dispatch batches whose timeout expired by ``now``."""
        out = []
        while self._pending_times and now >= self._pending_times[0] + self.config.timeout:
            due = self._pending_times[0] + self.config.timeout
            # Only requests that had arrived by the deadline belong to it.
            k = sum(1 for t in self._pending_times if t <= due)
            out.append(self._dispatch(due, count=min(k, self.config.batch_size)))
        return out

    def flush(self, now: float | None = None) -> list[Batch]:
        """Dispatch all remaining requests (stream end).

        Each drained batch is stamped with *its own* dispatch time, never
        the whole buffer's newest arrival:

        * a full batch (only possible after a ``reconfigure`` to a smaller
          ``B``) dispatches the moment its B-th member arrived — it would
          have left the buffer then;
        * a partial batch dispatches at its first member's deadline
          (``first + timeout``), matching the vectorized simulator's
          end-of-stream behaviour; passing ``now`` force-flushes earlier,
          capping the dispatch at ``now``;
        * no batch ever dispatches before its own newest member arrived.
        """
        out = []
        while self._pending_idx:
            count = min(len(self._pending_idx), self.config.batch_size)
            newest = self._pending_times[count - 1]
            if count == self.config.batch_size:
                due = newest
            else:
                due = self._pending_times[0] + self.config.timeout
                if now is not None:
                    due = min(due, now)
            out.append(self._dispatch(max(due, newest), count=count))
        return out

    def _dispatch(self, dispatch_time: float, count: int | None = None) -> Batch:
        count = len(self._pending_idx) if count is None else count
        count = min(count, self.config.batch_size, len(self._pending_idx))
        batch = Batch(
            indices=np.array(self._pending_idx[:count], dtype=int),
            arrival_times=np.array(self._pending_times[:count], dtype=float),
            dispatch_time=float(dispatch_time),
        )
        del self._pending_idx[:count]
        del self._pending_times[:count]
        self._dispatched.append(batch)
        registry = get_registry()
        if registry.enabled:
            waits = batch.waits()
            registry.histogram("buffer.batch_size").observe(batch.size)
            registry.histogram("buffer.wait").observe_many(waits)
            registry.record_event(DispatchEvent(
                batch_size=batch.size,
                dispatch_time=batch.dispatch_time,
                max_wait=float(waits.max()) if batch.size else 0.0,
            ))
        return batch
