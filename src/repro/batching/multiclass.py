"""Multi-class batching (the MBS extension, Ali et al., VLDB'22).

The paper's §VI discusses MBS, the multi-class successor of BATCH by the
same authors: several request classes (different models, input sizes, or
SLO tiers) share one deployed serverless function — one memory size ``M`` —
while each class batches independently with its own ``(B_k, T_k)``. The
optimization decomposes cleanly: for a fixed ``M`` the classes are
independent, so the optimal multi-class configuration is, per memory tier,
the per-class cheapest feasible ``(B, T)``, then the best tier overall.

This module implements the multi-class configuration, the multi-class
ground-truth simulator, and that decomposed exhaustive optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.batching.config import BatchConfig
from repro.batching.simulator import SimulationResult, simulate
from repro.serverless.platform import ServerlessPlatform


@dataclass(frozen=True)
class RequestClass:
    """One request class: its arrival stream and SLO target."""

    name: str
    timestamps: np.ndarray
    slo: float
    percentile: float = 95.0
    #: Brownout tier: higher sheds later under fleet-wide overload.
    priority: int = 0

    def __post_init__(self) -> None:
        ts = np.asarray(self.timestamps, dtype=float)
        if ts.size and not np.all(np.isfinite(ts)):
            raise ValueError(
                f"class {self.name!r}: timestamps contain non-finite values"
            )
        if ts.size and np.any(ts < 0):
            raise ValueError(
                f"class {self.name!r}: timestamps must be >= 0"
            )
        if ts.size and np.any(np.diff(ts) < 0):
            raise ValueError(f"class {self.name!r}: timestamps must be sorted")
        if self.slo <= 0:
            raise ValueError(f"class {self.name!r}: slo must be > 0")
        object.__setattr__(self, "timestamps", ts)


@dataclass(frozen=True)
class MultiClassConfig:
    """Shared memory + per-class batching parameters."""

    memory_mb: float
    per_class: dict[str, tuple[int, float]]  # name -> (batch_size, timeout)

    def batch_config(self, name: str) -> BatchConfig:
        b, t = self.per_class[name]
        return BatchConfig(self.memory_mb, b, t)

    def __str__(self) -> str:
        # ":g" keeps sub-millisecond timeouts visible (0.4ms, not 0ms).
        inner = ", ".join(
            f"{k}:(B={b},T={t * 1e3:g}ms)" for k, (b, t) in sorted(self.per_class.items())
        )
        return f"(M={self.memory_mb:.0f}MB, {inner})"


@dataclass(frozen=True)
class MultiClassResult:
    """Per-class simulation outcomes under one multi-class configuration."""

    config: MultiClassConfig
    per_class: dict[str, SimulationResult]

    @property
    def total_cost(self) -> float:
        return float(sum(r.total_cost for r in self.per_class.values()))

    @property
    def n_requests(self) -> int:
        return int(sum(r.n_requests for r in self.per_class.values()))

    @property
    def cost_per_request(self) -> float:
        n = self.n_requests
        return self.total_cost / n if n else np.nan

    def meets_all_slos(self, classes: list[RequestClass]) -> bool:
        return all(
            not self.per_class[c.name].violates_slo(c.slo, c.percentile)
            for c in classes
            if self.per_class[c.name].n_requests > 0
        )


def simulate_multiclass(
    classes: list[RequestClass],
    config: MultiClassConfig,
    platform: ServerlessPlatform,
    platforms: dict[str, ServerlessPlatform] | None = None,
) -> MultiClassResult:
    """Simulate every class's stream under its (shared-M) batch config.

    ``platforms`` optionally overrides the shared ``platform`` per class —
    the fleet scheduler plans heterogeneous endpoints (different service
    profiles or pricing) through this hook.
    """
    missing = {c.name for c in classes} - set(config.per_class)
    if missing:
        raise ValueError(f"config missing classes: {sorted(missing)}")
    results = {
        c.name: simulate(
            c.timestamps,
            config.batch_config(c.name),
            platforms.get(c.name, platform) if platforms else platform,
        )
        for c in classes
    }
    return MultiClassResult(config=config, per_class=results)


def optimize_multiclass(
    classes: list[RequestClass],
    platform: ServerlessPlatform,
    memories: tuple[float, ...] = (512.0, 1024.0, 1792.0, 3008.0),
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    timeouts: tuple[float, ...] = (0.0, 0.025, 0.05, 0.1, 0.2),
    platforms: dict[str, ServerlessPlatform] | None = None,
) -> tuple[MultiClassConfig, MultiClassResult]:
    """Decomposed exhaustive search (the MBS insight).

    For each memory tier, each class independently picks its cheapest
    (B, T) meeting its own SLO (falling back to its lowest-latency option);
    the tier with the lowest total cost — preferring tiers where *every*
    class is feasible — wins. ``platforms`` optionally overrides the shared
    ``platform`` per class (heterogeneous fleet endpoints).
    """
    if not classes:
        raise ValueError("classes must be non-empty")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ValueError("class names must be unique")

    best: tuple[bool, float, MultiClassConfig, MultiClassResult] | None = None
    for mem in memories:
        chosen: dict[str, tuple[int, float]] = {}
        feasible_all = True
        for c in classes:
            cls_platform = platforms.get(c.name, platform) if platforms else platform
            best_cls: tuple[float, tuple[int, float]] | None = None
            fallback: tuple[float, tuple[int, float]] | None = None
            for b, t in product(batch_sizes, timeouts):
                if b == 1 and t > 0:
                    continue
                res = simulate(c.timestamps, BatchConfig(mem, b, t), cls_platform)
                lat = res.latency_percentile(c.percentile)
                if res.n_requests == 0 or not np.isfinite(lat):
                    continue
                if lat <= c.slo:
                    key = (res.cost_per_request, (b, t))
                    if best_cls is None or key < best_cls:
                        best_cls = key
                else:
                    key = (lat, (b, t))
                    if fallback is None or key < fallback:
                        fallback = key
            if best_cls is not None:
                chosen[c.name] = best_cls[1]
            elif fallback is not None:
                chosen[c.name] = fallback[1]
                feasible_all = False
            else:  # empty stream: any config serves it
                chosen[c.name] = (batch_sizes[0], timeouts[0])
        config = MultiClassConfig(memory_mb=mem, per_class=chosen)
        result = simulate_multiclass(classes, config, platform,
                                     platforms=platforms)
        key = (not feasible_all, result.total_cost)
        if best is None or key < (not best[0], best[1]):
            best = (feasible_all, result.total_cost, config, result)
    assert best is not None
    return best[2], best[3]
