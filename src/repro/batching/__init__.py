"""Batching: configurations, the online buffer, and the ground-truth
simulator of batched serverless inference."""

from repro.batching.buffer import Batch, BatchingBuffer
from repro.batching.config import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_MEMORIES,
    DEFAULT_TIMEOUTS,
    BatchConfig,
    config_grid,
    grid_features,
)
from repro.batching.continuous import ContinuousSession, GenRequest, StepResult
from repro.batching.multiclass import (
    MultiClassConfig,
    MultiClassResult,
    RequestClass,
    optimize_multiclass,
    simulate_multiclass,
)
from repro.batching.simulator import (
    DEFAULT_PERCENTILES,
    SimulationResult,
    form_batches,
    ground_truth_optimum,
    simulate,
    simulate_grid,
)

__all__ = [
    "Batch",
    "BatchConfig",
    "BatchingBuffer",
    "ContinuousSession",
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_MEMORIES",
    "DEFAULT_PERCENTILES",
    "DEFAULT_TIMEOUTS",
    "GenRequest",
    "MultiClassConfig",
    "MultiClassResult",
    "RequestClass",
    "SimulationResult",
    "StepResult",
    "config_grid",
    "form_batches",
    "grid_features",
    "ground_truth_optimum",
    "optimize_multiclass",
    "simulate",
    "simulate_grid",
    "simulate_multiclass",
]
