"""Ground-truth simulator of batched serverless inference.

Given arrival timestamps and a configuration (M, B, T), the simulator forms
batches exactly like the online buffer — dispatch when the B-th request
arrives or when the first buffered request has waited T — executes each
batch on the serverless platform (deterministic service time, Lambda
billing), and returns per-request latencies plus per-batch costs.

This is the reproduction's stand-in for the paper's validated AWS Lambda
simulations (§IV-A "Ground Truth and Baseline"): both BATCH and DeepBAT are
judged against it, and the surrogate's training targets come from it.

The batch-formation loop is O(#batches) with NumPy ``searchsorted`` doing
the per-batch work, so simulating a full trace segment is milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.batching.config import BatchConfig
from repro.serverless.platform import ServerlessPlatform
from repro.telemetry.metrics import get_registry
from repro.utils.validation import check_sorted

#: Latency percentiles the surrogate predicts (plus cost) — the output O.
DEFAULT_PERCENTILES: tuple[float, ...] = (50.0, 75.0, 90.0, 95.0, 99.0)


@dataclass(frozen=True)
class SimulationResult:
    """Per-request and per-batch outcome of one simulated configuration."""

    config: BatchConfig
    latencies: np.ndarray  # per request, seconds
    waits: np.ndarray  # buffer wait per request, seconds
    batch_sizes: np.ndarray  # per batch
    dispatch_times: np.ndarray  # per batch
    batch_costs: np.ndarray  # per batch, USD
    extra: dict = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return self.latencies.size

    @property
    def n_batches(self) -> int:
        return self.batch_sizes.size

    def latency_percentile(self, p: "float | np.ndarray") -> "float | np.ndarray":
        if self.latencies.size == 0:
            return np.nan if np.ndim(p) == 0 else np.full(np.shape(p), np.nan)
        out = np.percentile(self.latencies, p)
        return float(out) if np.ndim(out) == 0 else out

    def latency_percentiles(
        self, percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    ) -> np.ndarray:
        return np.asarray(self.latency_percentile(np.asarray(percentiles)))

    @property
    def total_cost(self) -> float:
        return float(self.batch_costs.sum())

    @property
    def cost_per_request(self) -> float:
        if self.n_requests == 0:
            return np.nan
        return self.total_cost / self.n_requests

    @property
    def mean_batch_size(self) -> float:
        if self.n_batches == 0:
            return np.nan
        return float(self.batch_sizes.mean())

    def violates_slo(self, slo: float, percentile: float = 95.0) -> bool:
        return bool(self.latency_percentile(percentile) > slo)


def form_batches(
    timestamps: np.ndarray, batch_size: int, timeout: float
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy batch formation under the (B, T) policy.

    Returns ``(boundaries, dispatch_times)`` where ``boundaries`` has one
    entry per batch giving the index *one past* its last request, and
    ``dispatch_times`` the moment the batch left the buffer (the B-th
    arrival or the first request's deadline, whichever came first).
    """
    ts = check_sorted(np.asarray(timestamps, dtype=float), "timestamps")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if timeout < 0:
        raise ValueError(f"timeout must be >= 0, got {timeout}")
    n = ts.size
    ends: list[int] = []
    dispatches: list[float] = []
    i = 0
    while i < n:
        deadline = ts[i] + timeout
        j_size = i + batch_size - 1
        # Last request index that arrived by the deadline.
        j_time = int(np.searchsorted(ts, deadline, side="right")) - 1
        if j_size <= j_time:
            j, dispatch = j_size, float(ts[j_size])
        else:
            j, dispatch = j_time, deadline
        ends.append(j + 1)
        dispatches.append(dispatch)
        i = j + 1
    return np.asarray(ends, dtype=int), np.asarray(dispatches)


def simulate(
    timestamps: np.ndarray,
    config: BatchConfig,
    platform: ServerlessPlatform,
) -> SimulationResult:
    """Run one configuration over a trace of arrival timestamps."""
    ts = np.asarray(timestamps, dtype=float)
    if ts.size == 0:
        empty = np.empty(0)
        return SimulationResult(config, empty, empty, np.empty(0, int), empty, empty)

    ends, dispatches = form_batches(ts, config.batch_size, config.timeout)
    starts = np.concatenate([[0], ends[:-1]])
    sizes = ends - starts

    records = platform.invoke_batches(dispatches, sizes, config.memory_mb)
    completion = np.array([r.completion_time for r in records])
    costs = np.array([r.cost for r in records])

    # Per-request latency = batch completion − own arrival.
    batch_of_request = np.repeat(np.arange(sizes.size), sizes)
    latencies = completion[batch_of_request] - ts
    waits = np.array([r.dispatch_time for r in records])[batch_of_request] - ts
    registry = get_registry()
    if registry.enabled:
        # Note: grid searches (oracle/profiling) also land here, so these
        # histograms cover every simulated configuration, not only served
        # traffic; the harness's per-segment metrics cover the latter.
        registry.counter("simulator.requests").inc(ts.size)
        registry.counter("simulator.batches").inc(sizes.size)
        registry.histogram("simulator.batch_size").observe_many(sizes)
        registry.histogram("simulator.buffer_wait").observe_many(waits)
    return SimulationResult(
        config=config,
        latencies=latencies,
        waits=waits,
        batch_sizes=sizes,
        dispatch_times=dispatches,
        batch_costs=costs,
    )


def simulate_grid(
    timestamps: np.ndarray,
    configs: list[BatchConfig],
    platform: ServerlessPlatform,
) -> list[SimulationResult]:
    """Simulate every candidate configuration (the exhaustive ground truth)."""
    return [simulate(timestamps, c, platform) for c in configs]


def ground_truth_optimum(
    timestamps: np.ndarray,
    configs: list[BatchConfig],
    platform: ServerlessPlatform,
    slo: float,
    percentile: float = 95.0,
) -> tuple[BatchConfig, SimulationResult]:
    """Exhaustive-search optimum: cheapest config meeting the SLO (Eq. 10).

    Falls back to the lowest-latency configuration when no candidate is
    feasible (mirrors the paper's optimizer behaviour under infeasibility).
    """
    if not configs:
        raise ValueError("configs must be non-empty")
    results = simulate_grid(timestamps, configs, platform)
    feasible = [
        (r.cost_per_request, i)
        for i, r in enumerate(results)
        if not r.violates_slo(slo, percentile)
    ]
    if feasible:
        _, best = min(feasible)
    else:
        _, best = min(
            (r.latency_percentile(percentile), i) for i, r in enumerate(results)
        )
    return configs[best], results[best]
