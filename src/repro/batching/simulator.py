"""Ground-truth simulator of batched serverless inference.

Given arrival timestamps and a configuration (M, B, T), the simulator forms
batches exactly like the online buffer — dispatch when the B-th request
arrives or when the first buffered request has waited T — executes each
batch on the serverless platform (deterministic service time, Lambda
billing), and returns per-request latencies plus per-batch costs.

This is the reproduction's stand-in for the paper's validated AWS Lambda
simulations (§IV-A "Ground Truth and Baseline"): both BATCH and DeepBAT are
judged against it, and the surrogate's training targets come from it.

The batch-formation loop is O(#batches) with NumPy ``searchsorted`` doing
the per-batch work, so simulating a full trace segment is milliseconds.
Grid sweeps exploit an invariant on top of that: batch formation depends
only on (B, T), never on M, so :func:`simulate_grid` groups the candidate
grid by (B, T), forms batches once per group, and evaluates every memory
tier over the shared formation in one broadcast — an ~|memory-tiers|×
reduction in formation work for every oracle sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.batching.config import BatchConfig
from repro.serverless.platform import BatchExecution, ServerlessPlatform
from repro.telemetry.metrics import get_registry
from repro.utils.validation import check_sorted

#: Latency percentiles the surrogate predicts (plus cost) — the output O.
DEFAULT_PERCENTILES: tuple[float, ...] = (50.0, 75.0, 90.0, 95.0, 99.0)


@dataclass(frozen=True)
class SimulationResult:
    """Per-request and per-batch outcome of one simulated configuration."""

    config: BatchConfig
    latencies: np.ndarray  # per request, seconds
    waits: np.ndarray  # buffer wait per request, seconds
    batch_sizes: np.ndarray  # per batch
    dispatch_times: np.ndarray  # per batch
    batch_costs: np.ndarray  # per batch, USD
    extra: dict = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return self.latencies.size

    @property
    def n_batches(self) -> int:
        return self.batch_sizes.size

    def latency_percentile(self, p: "float | np.ndarray") -> "float | np.ndarray":
        if self.latencies.size == 0:
            return np.nan if np.ndim(p) == 0 else np.full(np.shape(p), np.nan)
        out = np.percentile(self.latencies, p)
        return float(out) if np.ndim(out) == 0 else out

    def latency_percentiles(
        self, percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    ) -> np.ndarray:
        return np.asarray(self.latency_percentile(np.asarray(percentiles)))

    @property
    def total_cost(self) -> float:
        return float(self.batch_costs.sum())

    @property
    def cost_per_request(self) -> float:
        if self.n_requests == 0:
            return np.nan
        return self.total_cost / self.n_requests

    @property
    def mean_batch_size(self) -> float:
        if self.n_batches == 0:
            return np.nan
        return float(self.batch_sizes.mean())

    def violates_slo(self, slo: float, percentile: float = 95.0) -> bool:
        return bool(self.latency_percentile(percentile) > slo)


def form_batches(
    timestamps: np.ndarray, batch_size: int, timeout: float
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy batch formation under the (B, T) policy.

    Returns ``(boundaries, dispatch_times)`` where ``boundaries`` has one
    entry per batch giving the index *one past* its last request, and
    ``dispatch_times`` the moment the batch left the buffer (the B-th
    arrival or the first request's deadline, whichever came first).
    """
    ts = check_sorted(np.asarray(timestamps, dtype=float), "timestamps")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if timeout < 0:
        raise ValueError(f"timeout must be >= 0, got {timeout}")
    n = ts.size
    ends: list[int] = []
    dispatches: list[float] = []
    i = 0
    while i < n:
        deadline = ts[i] + timeout
        j_size = i + batch_size - 1
        # Last request index that arrived by the deadline.
        j_time = int(np.searchsorted(ts, deadline, side="right")) - 1
        if j_size <= j_time:
            j, dispatch = j_size, float(ts[j_size])
        else:
            j, dispatch = j_time, deadline
        ends.append(j + 1)
        dispatches.append(dispatch)
        i = j + 1
    return np.asarray(ends, dtype=int), np.asarray(dispatches)


def _empty_result(config: BatchConfig) -> SimulationResult:
    empty = np.empty(0)
    return SimulationResult(config, empty, empty, np.empty(0, int), empty, empty)


def _result_from_execution(
    config: BatchConfig,
    ts: np.ndarray,
    dispatches: np.ndarray,
    sizes: np.ndarray,
    batch_of_request: np.ndarray,
    execution: BatchExecution,
) -> SimulationResult:
    # Per-request latency = batch completion − own arrival.
    latencies = execution.completion_times[batch_of_request] - ts
    waits = execution.start_times[batch_of_request] - ts
    extra: dict = {}
    if execution.attempts is not None:
        # Fault-layer accounting for the harness: per-request failure mask
        # plus the retry totals (see repro.serverless.faults).
        extra["retries"] = execution.n_retries
        extra["throttle_retries"] = execution.n_throttle_retries
        extra["failed_batches"] = execution.n_failed_batches
        extra["failed_requests"] = execution.n_failed_requests
        extra["request_failed"] = execution.failed[batch_of_request]
    return SimulationResult(
        config=config,
        latencies=latencies,
        waits=waits,
        batch_sizes=sizes,
        dispatch_times=dispatches,
        batch_costs=np.asarray(execution.costs),
        extra=extra,
    )


def _observe_simulation(registry, result: SimulationResult) -> None:
    # Note: grid searches (oracle/profiling) also land here, so these
    # histograms cover every simulated configuration, not only served
    # traffic; the harness's per-segment metrics cover the latter.
    registry.counter("simulator.requests").inc(result.n_requests)
    registry.counter("simulator.batches").inc(result.n_batches)
    registry.histogram("simulator.batch_size").observe_many(result.batch_sizes)
    registry.histogram("simulator.buffer_wait").observe_many(result.waits)


def simulate(
    timestamps: np.ndarray,
    config: BatchConfig,
    platform: ServerlessPlatform,
    rng: np.random.Generator | None = None,
) -> SimulationResult:
    """Run one configuration over a trace of arrival timestamps.

    ``rng`` overrides the platform's shared cold-start generator — used by
    deterministic parallel labeling, where each sample's randomness must be
    a function of the sample, not of evaluation order.
    """
    ts = np.asarray(timestamps, dtype=float)
    if ts.size == 0:
        return _empty_result(config)

    ends, dispatches = form_batches(ts, config.batch_size, config.timeout)
    starts = np.concatenate([[0], ends[:-1]])
    sizes = ends - starts
    batch_of_request = np.repeat(np.arange(sizes.size), sizes)

    execution = platform.execute_batches(dispatches, sizes, config.memory_mb, rng=rng)
    result = _result_from_execution(
        config, ts, dispatches, sizes, batch_of_request, execution
    )
    registry = get_registry()
    if registry.enabled:
        _observe_simulation(registry, result)
    return result


def simulate_grid(
    timestamps: np.ndarray,
    configs: list[BatchConfig],
    platform: ServerlessPlatform,
) -> list[SimulationResult]:
    """Simulate every candidate configuration (the exhaustive ground truth).

    Configurations sharing (B, T) also share their batch formation — M only
    affects execution — so the grid is grouped by (B, T), formed once per
    group, and all memory tiers of a group are evaluated vectorized over
    the shared formation. Results match per-config :func:`simulate` for
    every grid point; with cold starts enabled, each configuration draws
    from a deterministic per-config generator
    (``platform.spawn_rng(index)``) so the sweep is independent of
    evaluation order.
    """
    if not configs:
        return []
    ts = np.asarray(timestamps, dtype=float)
    if ts.size == 0:
        return [_empty_result(c) for c in configs]

    registry = get_registry()
    t0 = time.perf_counter()
    with registry.span("simulator.grid"):
        groups: dict[tuple[int, float], list[int]] = {}
        for i, c in enumerate(configs):
            groups.setdefault((c.batch_size, c.timeout), []).append(i)

        results: list[SimulationResult | None] = [None] * len(configs)
        for (batch_size, timeout), idxs in groups.items():
            ends, dispatches = form_batches(ts, batch_size, timeout)
            starts = np.concatenate([[0], ends[:-1]])
            sizes = ends - starts
            batch_of_request = np.repeat(np.arange(sizes.size), sizes)
            # Per-config generators keep the sweep order-independent; the
            # fault layer draws from them too, so they are needed whenever
            # either source of randomness is active.
            rngs = (
                [platform.spawn_rng(i) for i in idxs]
                if platform.cold_start is not None or platform.faults_active
                else None
            )
            executions = platform.execute_batches_grid(
                dispatches, sizes, [configs[i].memory_mb for i in idxs], rngs=rngs
            )
            for i, execution in zip(idxs, executions):
                results[i] = _result_from_execution(
                    configs[i], ts, dispatches, sizes, batch_of_request, execution
                )
    if registry.enabled:
        registry.histogram("simulator.grid_time").observe(time.perf_counter() - t0)
        registry.counter("simulator.grid_sweeps").inc()
        registry.counter("simulator.grid_configs").inc(len(configs))
        for result in results:
            _observe_simulation(registry, result)
    return results


def ground_truth_optimum(
    timestamps: np.ndarray,
    configs: list[BatchConfig],
    platform: ServerlessPlatform,
    slo: float,
    percentile: float = 95.0,
) -> tuple[BatchConfig, SimulationResult]:
    """Exhaustive-search optimum: cheapest config meeting the SLO (Eq. 10).

    Falls back to the lowest-latency configuration when no candidate is
    feasible (mirrors the paper's optimizer behaviour under infeasibility).
    """
    if not configs:
        raise ValueError("configs must be non-empty")
    results = simulate_grid(timestamps, configs, platform)
    feasible = [
        (r.cost_per_request, i)
        for i, r in enumerate(results)
        if not r.violates_slo(slo, percentile)
    ]
    if feasible:
        _, best = min(feasible)
    else:
        _, best = min(
            (r.latency_percentile(percentile), i) for i, r in enumerate(results)
        )
    return configs[best], results[best]
