"""Continuous (iteration-level) batching for token-streaming generation.

The size/timeout :class:`~repro.batching.buffer.BatchingBuffer` forms a
batch once and runs it to completion — every member waits for batch
formation up front and the container is held until the *longest* decode in
the batch finishes. Continuous batching (Orca-style iteration-level
scheduling) instead admits requests into a *running* batch at token
boundaries and retires each one the moment its own decode completes:

* a **session** is one warm container executing back-to-back iterations;
* each iteration is either a **prefill** (new admissions evaluate their
  prompts and produce their first token — TTFT) or a **decode step** (all
  running requests emit one token — TPOT);
* at every iteration boundary, finished requests leave and waiting
  requests join, subject to the batch-size cap and a ``max_batch_tokens``
  admission budget (the KV-cache footprint proxy: each admitted request
  reserves ``prompt_tokens + output_tokens``);
* when the running batch and the wait queue are both empty the session
  ends and the container goes back to the warm pool.

This module is the engine-independent state machine; the serving engine
(:mod:`repro.serving.engine`) drives :meth:`ContinuousSession.step` from
its event heap and owns queues, pools, logging, and telemetry. Timing
comes from :class:`~repro.serverless.generation.TokenServiceProfile`:
prefill iterations cost ``ttft(M, n_admitted)``, decode iterations cost
``tpot(M, n_running)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.serverless.generation import TokenServiceProfile

__all__ = ["ContinuousSession", "GenRequest", "StepResult"]


@dataclass(frozen=True)
class GenRequest:
    """One generation request waiting for or occupying a batch slot."""

    index: int
    arrival: float
    prompt_tokens: int
    output_tokens: int

    @property
    def footprint(self) -> int:
        """Admission-budget reservation: the final KV-cache size."""
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class StepResult:
    """What happened at one iteration boundary.

    ``prefilled`` requests produced their first token at the boundary
    time (record TTFT); ``finished`` requests completed their decode
    (record latency — a one-token request appears in both). With
    ``next_duration`` set, the next iteration ends that many seconds
    after the boundary; ``None`` means the session drained and the
    container should be released.
    """

    prefilled: "tuple[GenRequest, ...]" = ()
    finished: "tuple[GenRequest, ...]" = ()
    next_duration: "float | None" = None
    next_kind: str = ""


@dataclass
class ContinuousSession:
    """Iteration-level batching state for one container.

    Drive it by calling :meth:`step` at each iteration boundary with the
    shared FIFO wait queue; the caller schedules the next boundary
    ``next_duration`` seconds later. The session plans one iteration at a
    time and applies its effects at the *next* boundary, so state never
    runs ahead of simulated time (checkpoints taken between events see a
    consistent picture).
    """

    profile: TokenServiceProfile
    memory_mb: float
    batch_size: int
    max_batch_tokens: "int | None" = None

    #: Running requests and their remaining decode steps.
    running: "list[list]" = field(default_factory=list)
    #: Reserved admission budget (sum of running footprints).
    tokens: int = 0
    #: The iteration currently executing, applied at the next boundary.
    pending_kind: str = ""
    pending_admits: "tuple[GenRequest, ...]" = ()
    #: Session totals for the log's batch row.
    n_served: int = 0
    n_prefills: int = 0
    n_decodes: int = 0
    #: Iteration-duration memo: ``(memory_mb, n)`` is fixed-or-small, and
    #: the profile is pure, so each (kind, n) pair is computed once per
    #: session instead of once per iteration (the profile math goes
    #: through NumPy scalars — expensive at heap-event frequency).
    _durations: "dict[int, float]" = field(default_factory=dict, repr=False,
                                           compare=False)

    def can_accept(self, request: GenRequest) -> bool:
        """Whether ``request`` would fit if it joined at the next boundary."""
        if len(self.running) + len(self.pending_admits) >= self.batch_size:
            return False
        if self.max_batch_tokens is None:
            return True
        return self.tokens + request.footprint <= self.max_batch_tokens

    def step(self, queue: "deque[GenRequest]") -> StepResult:
        """Close the current iteration, admit from ``queue``, plan the next.

        Returns the boundary's effects; the caller records TTFT/latency
        against the boundary time and schedules the next boundary.
        """
        prefilled: "list[GenRequest]" = []
        finished: "list[GenRequest]" = []

        # 1. Apply the iteration that just ended.
        if self.pending_kind == "prefill":
            for req in self.pending_admits:
                prefilled.append(req)
                remaining = req.output_tokens - 1
                if remaining == 0:
                    finished.append(req)
                    self.tokens -= req.footprint
                    self.n_served += 1
                else:
                    self.running.append([req, remaining])
        elif self.pending_kind == "decode":
            still: "list[list]" = []
            for slot in self.running:
                slot[1] -= 1
                if slot[1] == 0:
                    finished.append(slot[0])
                    self.tokens -= slot[0].footprint
                    self.n_served += 1
                else:
                    still.append(slot)
            self.running = still
        self.pending_kind = ""
        self.pending_admits = ()

        # 2. Admit waiting requests (FIFO, capacity- and budget-gated).
        admits: "list[GenRequest]" = []
        while queue:
            head = queue[0]
            if len(self.running) + len(admits) >= self.batch_size:
                break
            if (
                self.max_batch_tokens is not None
                and self.tokens + head.footprint > self.max_batch_tokens
                and (self.running or admits)
            ):
                # The budget only blocks *joining* a non-empty batch; a
                # request bigger than the whole budget still runs alone,
                # so nothing starves behind an unreachable admission gate.
                break
            admits.append(queue.popleft())
            self.tokens += head.footprint

        # 3. Plan the next iteration: prefill preempts decode (new
        #    admissions must produce their first token before rejoining
        #    the decode cadence), decode runs the whole batch one step.
        if admits:
            self.pending_kind = "prefill"
            self.pending_admits = tuple(admits)
            self.n_prefills += 1
            # Prefill keys are negative, decode keys positive (n >= 1).
            key = -len(admits)
            duration = self._durations.get(key)
            if duration is None:
                duration = float(self.profile.ttft(self.memory_mb, -key))
                self._durations[key] = duration
        elif self.running:
            self.pending_kind = "decode"
            self.n_decodes += 1
            key = len(self.running)
            duration = self._durations.get(key)
            if duration is None:
                duration = float(self.profile.tpot(self.memory_mb, key))
                self._durations[key] = duration
        else:
            return StepResult(prefilled=tuple(prefilled),
                              finished=tuple(finished))
        return StepResult(
            prefilled=tuple(prefilled),
            finished=tuple(finished),
            next_duration=duration,
            next_kind=self.pending_kind,
        )
