"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init — the default for linear/attention weights.

    Keeps forward/backward variance balanced for roughly linear activations.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He normal init, suited to ReLU feed-forward stacks."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
