"""Neural-network modules: parameter containers and the basic layers.

The :class:`Module` base class provides recursive parameter discovery,
train/eval mode switching, and state-dict (de)serialization — the minimal
surface the DeepBAT surrogate needs from a framework.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import init as _init
from repro.nn.functional import dropout_mask
from repro.nn.tensor import Tensor
from repro.utils.rng import as_rng


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and sub-:class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`state_dict` discover them
    recursively by attribute walk (insertion order, so deterministic).
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------- dispatch
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # ----------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ---------------------------------------------------------------- modes
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ----------------------------------------------------------- state dict
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, p in params.items():
            value = np.asarray(state[name])
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {p.data.shape}, got {value.shape}"
                )
            p.data = value.astype(p.data.dtype, copy=True)


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        super().__init__()
        rng = as_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, seed: int | None | np.random.Generator = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        return x * dropout_mask(x.shape, self.p, self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class FeedForward(Module):
    """Two-layer position-wise MLP (``Linear -> ReLU -> Linear``).

    This is both the sequence embedding (Eq. 1), the feature embedding
    (Eq. 5), and the inner block of the Transformer encoder.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int | None = None,
        dropout: float = 0.0,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        super().__init__()
        rng = as_rng(seed)
        out_features = out_features if out_features is not None else in_features
        self.fc1 = Linear(in_features, hidden_features, seed=rng)
        self.fc2 = Linear(hidden_features, out_features, seed=rng)
        self.drop = Dropout(dropout, seed=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.drop(self.fc1(x).relu()))
