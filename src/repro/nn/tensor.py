"""Reverse-mode automatic differentiation over NumPy arrays.

This is the foundation of the pure-NumPy deep-learning stack used by the
DeepBAT surrogate model (the paper uses PyTorch; see DESIGN.md §1 for the
substitution rationale). The design is a vectorized tape: every operation
records its parents and a closure that accumulates gradients into them, and
:meth:`Tensor.backward` walks the tape in reverse topological order.

All array math stays inside NumPy ufuncs/BLAS calls so the tape overhead is
one Python closure per *operation*, not per element — the idiom recommended
by the HPC guides (vectorize the hot loop, keep Python at the orchestration
level).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

ArrayLike = "np.ndarray | float | int | list"


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting in the forward pass replicates values; the adjoint of
    replication is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with a gradient tape.

    Parameters
    ----------
    data:
        Array contents; copied to ``float64`` unless already a float array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            raise TypeError("cannot wrap a Tensor in a Tensor; use .detach()")
        arr = np.asarray(data)
        if arr.dtype.kind != "f":
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------ tape hooks
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the tape.

        ``backward`` receives the upstream gradient and must call
        :meth:`_accumulate` on each parent that requires a gradient.
        """
        parents = tuple(parents)
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        Leaf tensors (parameters) copy on first write — their gradients
        outlive the backward pass and may be mutated by the optimizer or
        gradient clipping. Intermediate nodes alias the incoming buffer:
        their gradients are read exactly once by their own backward closure
        and never mutated, so the copy would be pure overhead. A second
        contribution allocates a fresh sum rather than mutating in place
        (the buffer may be shared with a sibling branch of the graph).
        """
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if self.grad is None:
            is_leaf = self._backward is None
            self.grad = grad.copy() if is_leaf else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to ones (scalar outputs are the common case:
        losses). Gradients accumulate into every reachable tensor with
        ``requires_grad=True``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        # Reverse topological order via iterative DFS (recursion-free so deep
        # transformer graphs cannot hit the interpreter recursion limit).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------ arithmetic
    @staticmethod
    def _coerce(other: "Tensor | ArrayLike") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(g)

        return Tensor._from_op(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(-g)

        return Tensor._from_op(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: "Tensor | ArrayLike") -> "Tensor":
        return Tensor._coerce(other) - self

    def __mul__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * other.data)
            other._accumulate(g * self.data)

        return Tensor._from_op(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / other.data)
            other._accumulate(-g * self.data / (other.data**2))

        return Tensor._from_op(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: "Tensor | ArrayLike") -> "Tensor":
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(self.data**exponent, (self,), backward)

    def __matmul__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor._coerce(other)
        # Promote 1-D operands to 2-D (row / column vector) so one gradient
        # rule covers every case; squeeze the promoted axes at the end.
        a = self.reshape(1, -1) if self.ndim == 1 else self
        b = other.reshape(-1, 1) if other.ndim == 1 else other
        out = a._matmul2(b)
        if self.ndim == 1:
            out = out.reshape(*out.shape[:-2], out.shape[-1])
        if other.ndim == 1:
            out = out.reshape(*out.shape[:-1])
        if self.ndim == 1 and other.ndim == 1:
            out = out.reshape(())
        return out

    def _matmul2(self, other: "Tensor") -> "Tensor":
        """Matmul for operands that are both at least 2-D."""
        a, b = self.data, other.data

        def backward(g: np.ndarray) -> None:
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._from_op(a @ b, (self, other), backward)

    # --------------------------------------------------------- shape algebra
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig = self.data.shape

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(orig))

        return Tensor._from_op(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inverse))

        return Tensor._from_op(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(np.swapaxes(g, a, b))

        return Tensor._from_op(np.swapaxes(self.data, a, b), (self,), backward)

    def __getitem__(self, idx) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, g)
            self._accumulate(full)

        return Tensor._from_op(self.data[idx], (self,), backward)

    # ------------------------------------------------------------ reductions
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.data.shape))
                return
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                g = np.expand_dims(g, axes)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            n = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            expanded = out_data if keepdims or axis is None else np.expand_dims(out_data, axis)
            mask = self.data == expanded
            # Split gradient evenly among ties (matches subgradient convention).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            g_e = g if keepdims or axis is None else np.expand_dims(g, axis)
            self._accumulate(mask * g_e / counts)

        return Tensor._from_op(out_data, (self,), backward)

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * 0.5 / out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(g * np.sign(self.data))

        return Tensor._from_op(np.abs(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return Tensor._from_op(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def clip(self, lo: float | None, hi: float | None) -> "Tensor":
        mask = np.ones_like(self.data, dtype=bool)
        if lo is not None:
            mask &= self.data >= lo
        if hi is not None:
            mask &= self.data <= hi

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return Tensor._from_op(np.clip(self.data, lo, hi), (self,), backward)
