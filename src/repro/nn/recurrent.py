"""Recurrent layers (LSTM, GRU) for the sequence-model ablation.

The paper motivates the Transformer encoder *against* recurrent models
(§I.2: "traditional deep learning models like LSTM and RNN ... suffer from
limitations such as vanishing gradients and difficulty in capturing
long-range dependencies"). These layers let the ablation benchmark make
that comparison concrete: swap the encoder for an LSTM/GRU of matched size
and measure accuracy and prediction time.

Implementation note: the recurrence is a Python loop over time steps, with
each step fully vectorized over the batch — the standard trade-off for a
tape-based NumPy autograd. Gradients flow through the whole unrolled graph
(the backward pass is the tape walk, no TBPTT truncation).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import as_rng


class LSTM(Module):
    """Single-layer LSTM over ``(batch, seq, input_dim)`` inputs.

    Returns the full hidden sequence ``(batch, seq, hidden_dim)``; use
    ``[:, -1]`` or mean pooling to collapse it.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        super().__init__()
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError("input_dim and hidden_dim must be >= 1")
        rng = as_rng(seed)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Fused gate projections: [input, forget, cell, output].
        self.w_x = Linear(input_dim, 4 * hidden_dim, seed=rng)
        self.w_h = Linear(hidden_dim, 4 * hidden_dim, bias=False, seed=rng)
        # Initialize the forget-gate bias positive (standard trick against
        # early vanishing memory).
        self.w_x.bias.data[hidden_dim : 2 * hidden_dim] = 1.0

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"expected (batch, seq, {self.input_dim}), got {x.shape}"
            )
        batch, seq, _ = x.shape
        d = self.hidden_dim
        h = Tensor(np.zeros((batch, d)))
        c = Tensor(np.zeros((batch, d)))
        outputs = []
        for t in range(seq):
            gates = self.w_x(x[:, t, :]) + self.w_h(h)
            i = gates[:, 0 * d : 1 * d].sigmoid()
            f = gates[:, 1 * d : 2 * d].sigmoid()
            g = gates[:, 2 * d : 3 * d].tanh()
            o = gates[:, 3 * d : 4 * d].sigmoid()
            c = f * c + i * g
            h = o * c.tanh()
            outputs.append(h)
        return F.stack(outputs, axis=1)


class GRU(Module):
    """Single-layer GRU over ``(batch, seq, input_dim)`` inputs."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        super().__init__()
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError("input_dim and hidden_dim must be >= 1")
        rng = as_rng(seed)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Fused [reset, update] gates plus the candidate projection.
        self.w_xz = Linear(input_dim, 2 * hidden_dim, seed=rng)
        self.w_hz = Linear(hidden_dim, 2 * hidden_dim, bias=False, seed=rng)
        self.w_xn = Linear(input_dim, hidden_dim, seed=rng)
        self.w_hn = Linear(hidden_dim, hidden_dim, bias=False, seed=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"expected (batch, seq, {self.input_dim}), got {x.shape}"
            )
        batch, seq, _ = x.shape
        d = self.hidden_dim
        h = Tensor(np.zeros((batch, d)))
        outputs = []
        for t in range(seq):
            xt = x[:, t, :]
            gates = (self.w_xz(xt) + self.w_hz(h)).sigmoid()
            r = gates[:, :d]
            z = gates[:, d:]
            n = (self.w_xn(xt) + self.w_hn(r * h)).tanh()
            h = (1.0 - z) * n + z * h
            outputs.append(h)
        return F.stack(outputs, axis=1)
