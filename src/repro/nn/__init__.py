"""Pure-NumPy deep-learning framework (the PyTorch substitute).

Provides reverse-mode autodiff (:mod:`repro.nn.tensor`), standard layers,
multi-head attention, a Transformer encoder, optimizers, the paper's loss
functions, and data/serialization utilities.
"""

from repro.nn import functional
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.data import ArrayDataset, DataLoader, train_val_split
from repro.nn.layers import (
    Dropout,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.losses import (
    combined_loss,
    huber_loss,
    mape_loss,
    mse_loss,
    slo_violation_weights,
)
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.nn.recurrent import GRU, LSTM
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor
from repro.nn.transformer import (
    PositionalEncoding,
    TransformerEncoder,
    TransformerEncoderLayer,
    sinusoidal_positional_encoding,
)

__all__ = [
    "GRU",
    "LSTM",
    "SGD",
    "Adam",
    "ArrayDataset",
    "CosineAnnealingLR",
    "DataLoader",
    "Dropout",
    "FeedForward",
    "LayerNorm",
    "Linear",
    "Module",
    "MultiHeadAttention",
    "Parameter",
    "PositionalEncoding",
    "ReLU",
    "Sequential",
    "StepLR",
    "Tanh",
    "Tensor",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "clip_grad_norm",
    "combined_loss",
    "functional",
    "huber_loss",
    "load_state",
    "mape_loss",
    "mse_loss",
    "save_state",
    "scaled_dot_product_attention",
    "sinusoidal_positional_encoding",
    "slo_violation_weights",
    "train_val_split",
]
