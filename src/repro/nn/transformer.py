"""Transformer encoder stack and sinusoidal positional encoding.

Implements Eq. 2 of the paper: a post-norm encoder (as in Vaswani et al.)
with ``N`` stackable layers, plus the positional encoding applied to the
sequence embedding ``E_seq`` to produce ``E_pos``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, FeedForward, LayerNorm, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import as_rng


def sinusoidal_positional_encoding(seq_len: int, dim: int) -> np.ndarray:
    """Classic sin/cos positional table of shape ``(seq_len, dim)``."""
    if seq_len < 1 or dim < 1:
        raise ValueError("seq_len and dim must be >= 1")
    position = np.arange(seq_len)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((seq_len, dim))
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: dim // 2])
    return table


class PositionalEncoding(Module):
    """Adds a (non-learned) sinusoidal positional table to the input."""

    def __init__(self, dim: int, max_len: int = 4096, dropout: float = 0.0,
                 seed: int | None | np.random.Generator = None) -> None:
        super().__init__()
        self.table = sinusoidal_positional_encoding(max_len, dim)
        self.drop = Dropout(dropout, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        seq = x.shape[-2]
        if seq > self.table.shape[0]:
            raise ValueError(
                f"sequence length {seq} exceeds positional table ({self.table.shape[0]})"
            )
        return self.drop(x + self.table[:seq])


class TransformerEncoderLayer(Module):
    """One post-norm encoder layer: MHA + residual + LN, FFN + residual + LN."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        ff_dim: int,
        dropout: float = 0.0,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        super().__init__()
        rng = as_rng(seed)
        self.attn = MultiHeadAttention(embed_dim, num_heads, dropout=dropout, seed=rng)
        self.ff = FeedForward(embed_dim, ff_dim, embed_dim, dropout=dropout, seed=rng)
        self.norm1 = LayerNorm(embed_dim)
        self.norm2 = LayerNorm(embed_dim)
        self.drop1 = Dropout(dropout, seed=rng)
        self.drop2 = Dropout(dropout, seed=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = self.norm1(x + self.drop1(self.attn(x, x, x, mask=mask)))
        x = self.norm2(x + self.drop2(self.ff(x)))
        return x


class TransformerEncoder(Module):
    """A stack of ``num_layers`` encoder layers (Eq. 2, stackable as N)."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        ff_dim: int,
        num_layers: int,
        dropout: float = 0.0,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = as_rng(seed)
        self.layers = [
            TransformerEncoderLayer(embed_dim, num_heads, ff_dim, dropout=dropout, seed=rng)
            for _ in range(num_layers)
        ]

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x

    def attention_maps(self) -> list[np.ndarray]:
        """Per-layer attention weights from the most recent forward pass."""
        return [layer.attn.last_weights for layer in self.layers]
