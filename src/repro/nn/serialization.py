"""Model checkpointing: save/load state dicts as ``.npz`` archives.

Both directions are hardened against the two ways checkpoints rot in
practice: :func:`save_state` writes through
:func:`repro.utils.io.atomic_write`, so a crash mid-save leaves the previous
archive intact instead of a torn zip; :func:`load_state` validates the
archive against the receiving module *before* touching any parameter —
unreadable files, missing/unexpected keys, and shape mismatches all raise
``ValueError`` naming the offending path and keys, and the module is never
left half-loaded.
"""

from __future__ import annotations

import os
import zipfile

import numpy as np

from repro.nn.layers import Module
from repro.utils.io import atomic_write


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Write ``module``'s parameters to a compressed ``.npz`` file.

    The archive is written atomically (temp file + ``os.replace``): readers
    racing a save — or a save killed partway — see either the old complete
    checkpoint or the new one, never a truncated zip.
    """
    state = module.state_dict()
    with atomic_write(path) as handle:
        np.savez_compressed(handle, **state)


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_state` into ``module``.

    The archive is validated up front: a corrupt/truncated file, keys the
    module does not have, module parameters the archive lacks, or any shape
    mismatch raise ``ValueError`` with the path and the offending names —
    a checkpoint for a differently-configured model is rejected before a
    single parameter is overwritten, not silently truncated.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            state = {k: archive[k] for k in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise ValueError(
            f"cannot read checkpoint {os.fspath(path)!r}: {exc}"
        ) from exc
    expected = {name: p.data.shape for name, p in module.named_parameters()}
    missing = sorted(set(expected) - set(state))
    unexpected = sorted(set(state) - set(expected))
    if missing or unexpected:
        raise ValueError(
            f"checkpoint {os.fspath(path)!r} does not match the module: "
            f"missing keys {missing}, unexpected keys {unexpected} — was it "
            "saved from a different architecture?"
        )
    mismatched = [
        f"{name}: archive {state[name].shape} vs module {shape}"
        for name, shape in expected.items()
        if state[name].shape != shape
    ]
    if mismatched:
        raise ValueError(
            f"checkpoint {os.fspath(path)!r} has shape mismatches: "
            + "; ".join(mismatched)
        )
    module.load_state_dict(state)
