"""Model checkpointing: save/load state dicts as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Write ``module``'s parameters to a compressed ``.npz`` file."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_state` into ``module``.

    Raises ``KeyError``/``ValueError`` on any name or shape mismatch — a
    checkpoint for a differently-configured model is rejected, not silently
    truncated.
    """
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files}
    module.load_state_dict(state)
