"""Scaled dot-product and multi-head attention (Eq. 3–4 of the paper).

The implementation follows Vaswani et al.; attention weights can be captured
for the attention-score visualizations of Fig. 14 via
``return_weights=True`` / :attr:`MultiHeadAttention.last_weights`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import masked_fill, softmax
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import as_rng

_NEG_INF = -1e9


def scaled_dot_product_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    mask: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Attention(Q, K, V) = softmax(QKᵀ/√d) V.

    Shapes: ``q``/``k``/``v`` are ``(..., seq, d)``; ``mask`` broadcasts over
    the score shape ``(..., seq_q, seq_k)`` with ``True`` meaning *blocked*.

    Returns the attended values and the attention-weight tensor.
    """
    d = q.shape[-1]
    scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    if mask is not None:
        scores = masked_fill(scores, mask, _NEG_INF)
    weights = softmax(scores, axis=-1)
    return weights @ v, weights


class MultiHeadAttention(Module):
    """Multi-head attention with separate Q/K/V/output projections.

    ``embed_dim`` must be divisible by ``num_heads``. Inputs of shape
    ``(batch, seq, embed_dim)`` — or ``(batch, embed_dim)`` for the pooled
    feature-fusion attention of Fig. 3, which is treated as ``seq == 1``.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        dropout: float = 0.0,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(
                f"embed_dim ({embed_dim}) must be divisible by num_heads ({num_heads})"
            )
        rng = as_rng(seed)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.w_q = Linear(embed_dim, embed_dim, seed=rng)
        self.w_k = Linear(embed_dim, embed_dim, seed=rng)
        self.w_v = Linear(embed_dim, embed_dim, seed=rng)
        self.w_o = Linear(embed_dim, embed_dim, seed=rng)
        self.drop = Dropout(dropout, seed=rng)
        #: attention weights of the most recent forward pass, shape
        #: (batch, heads, seq_q, seq_k); populated for introspection (Fig. 14).
        self.last_weights: np.ndarray | None = None

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        squeeze = query.ndim == 2
        if squeeze:  # pooled vectors -> singleton sequence
            query = query.reshape(query.shape[0], 1, query.shape[1])
            key = key.reshape(key.shape[0], 1, key.shape[1])
            value = value.reshape(value.shape[0], 1, value.shape[1])
        batch, seq_q, _ = query.shape
        seq_k = key.shape[1]

        q = self._split_heads(self.w_q(query), batch, seq_q)
        k = self._split_heads(self.w_k(key), batch, seq_k)
        v = self._split_heads(self.w_v(value), batch, seq_k)

        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            # Accept (seq_q, seq_k), (batch, seq_q, seq_k) or key-padding
            # (batch, seq_k) masks; broadcast to (batch, heads, seq_q, seq_k).
            if mask.ndim == 2 and mask.shape == (batch, seq_k):
                mask = mask[:, None, None, :]
            elif mask.ndim == 2:
                mask = mask[None, None, :, :]
            elif mask.ndim == 3:
                mask = mask[:, None, :, :]

        attended, weights = scaled_dot_product_attention(q, k, v, mask=mask)
        self.last_weights = weights.data
        out = attended.transpose(0, 2, 1, 3).reshape(batch, seq_q, self.embed_dim)
        out = self.w_o(self.drop(out))
        if squeeze:
            out = out.reshape(batch, self.embed_dim)
        return out
