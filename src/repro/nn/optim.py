"""Gradient-based optimizers and learning-rate schedulers.

The paper trains the surrogate with Adam (lr=1e-3); SGD with momentum is
provided for the ablation benches and tests.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be > 0, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for monitoring training stability).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class LRScheduler:
    """Base class; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = t_max
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        frac = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + np.cos(np.pi * frac))
