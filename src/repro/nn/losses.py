"""Training losses: Huber (Eq. 7), MAPE (Eq. 8), and the weighted
combination (Eq. 9), plus the SLO-violation-weighted variant the paper
describes ("the loss function is intentionally defined to penalize more for
those configurations that violate the SLO").
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0,
               weights: np.ndarray | None = None) -> Tensor:
    """Mean Huber loss HL_δ(y, ŷ) over all elements (Eq. 7)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    per_elem = F.huber(pred - target, delta=delta)
    if weights is not None:
        per_elem = per_elem * np.asarray(weights)
    return per_elem.mean()


def mape_loss(pred: Tensor, target: Tensor, eps: float = 1e-8,
              weights: np.ndarray | None = None) -> Tensor:
    """Mean absolute percentage error in percent (Eq. 8).

    ``eps`` regularizes the denominator for near-zero targets.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    denom = np.maximum(np.abs(target.data), eps)
    per_elem = (pred - target).abs() * (100.0 / denom)
    if weights is not None:
        per_elem = per_elem * np.asarray(weights)
    return per_elem.mean()


def combined_loss(
    pred: Tensor,
    target: Tensor,
    alpha: float = 0.05,
    delta: float = 1.0,
    weights: np.ndarray | None = None,
) -> Tensor:
    """L = α·MAPE + (1−α)·Huber (Eq. 9; paper uses α=0.05, δ=1)."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    return alpha * mape_loss(pred, target, weights=weights) + (1.0 - alpha) * huber_loss(
        pred, target, delta=delta, weights=weights
    )


def slo_violation_weights(
    latency_targets: np.ndarray,
    slo: float,
    penalty: float = 4.0,
) -> np.ndarray:
    """Per-sample weights that up-weight SLO-violating configurations.

    Samples whose true SLO-percentile latency exceeds ``slo`` get weight
    ``penalty`` (> 1), others weight 1. Shape ``(batch,) -> (batch, 1)`` so it
    broadcasts over the output vector.
    """
    if penalty < 1.0:
        raise ValueError(f"penalty must be >= 1, got {penalty}")
    latency_targets = np.asarray(latency_targets, dtype=float)
    w = np.where(latency_targets > slo, penalty, 1.0)
    return w[:, None]


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Plain mean squared error (used in ablations/tests)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()
