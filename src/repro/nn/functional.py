"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

Operations here either need custom (fused) gradients for numerical stability
— e.g. :func:`softmax` — or combine several tensors — e.g. :func:`concat`.
Purely elementwise helpers live as :class:`Tensor` methods.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor, _unbroadcast


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with a fused backward.

    The Jacobian-vector product is ``s * (g - (g * s).sum(axis))`` which
    avoids materializing the full Jacobian.
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    s = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        dot = (g * s).sum(axis=axis, keepdims=True)
        x._accumulate(s * (g - dot))

    return Tensor._from_op(s, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable ``log(softmax(x))`` with fused backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    s = np.exp(out)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g - s * g.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; gradient splits back per input."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray) -> None:
        for t, piece in zip(tensors, np.split(g, splits, axis=axis)):
            t._accumulate(piece)

    return Tensor._from_op(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            t._accumulate(np.take(g, i, axis=axis))

    return Tensor._from_op(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)

    def backward(g: np.ndarray) -> None:
        a._accumulate(np.where(cond, g, 0.0))
        b._accumulate(np.where(cond, 0.0, g))

    return Tensor._from_op(np.where(cond, a.data, b.data), (a, b), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Set ``x[mask] = value``; gradient is blocked on masked positions.

    Used for attention masking (Eq. 4 in the paper): masked logits are set to
    a large negative number before softmax.
    """
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, value, x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(np.where(mask, 0.0, g))

    return Tensor._from_op(data, (x,), backward)


def mean_pool(x: Tensor, axis: int = 1) -> Tensor:
    """Mean pooling along ``axis`` (used to collapse the sequence dimension
    of the encoder output before the fusion attention, Fig. 3)."""
    return x.mean(axis=axis)


def huber(x: Tensor, delta: float = 1.0) -> Tensor:
    """Elementwise Huber penalty of residuals ``x`` (Eq. 7).

    Quadratic within ``|x| <= delta``, linear beyond — less outlier-sensitive
    than squared error, which is why the paper adopts it.
    """
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    absx = np.abs(x.data)
    small = absx <= delta
    data = np.where(small, 0.5 * x.data**2, delta * (absx - 0.5 * delta))

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * np.where(small, x.data, delta * np.sign(x.data)))

    return Tensor._from_op(data, (x,), backward)


def dropout_mask(shape: tuple[int, ...], p: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: keep with prob ``1-p``, scale kept units."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if p == 0.0:
        return np.ones(shape)
    keep = rng.random(shape) >= p
    return keep / (1.0 - p)
