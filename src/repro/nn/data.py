"""Minimal dataset/dataloader machinery for training the surrogate.

A :class:`ArrayDataset` holds aligned NumPy arrays; :class:`DataLoader`
yields shuffled mini-batches of raw arrays (tensors are created inside the
training loop so the tape never crosses batch boundaries).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.utils.rng import as_rng


class ArrayDataset:
    """Aligned arrays with a common first (sample) axis."""

    def __init__(self, *arrays: np.ndarray) -> None:
        if not arrays:
            raise ValueError("ArrayDataset requires at least one array")
        arrays = tuple(np.asarray(a) for a in arrays)
        n = len(arrays[0])
        for a in arrays[1:]:
            if len(a) != n:
                raise ValueError(
                    f"all arrays must share the sample axis; got lengths {[len(x) for x in arrays]}"
                )
        self.arrays = arrays

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, idx) -> tuple[np.ndarray, ...]:
        return tuple(a[idx] for a in self.arrays)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(*(a[indices] for a in self.arrays))


def train_val_split(
    dataset: ArrayDataset,
    val_fraction: float = 0.2,
    seed: int | None | np.random.Generator = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Random split into train/validation subsets."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    rng = as_rng(seed)
    n = len(dataset)
    idx = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    if n_val >= n:
        raise ValueError(f"dataset too small ({n}) for val_fraction={val_fraction}")
    return dataset.subset(idx[n_val:]), dataset.subset(idx[:n_val])


class DataLoader:
    """Iterate mini-batches of a dataset, optionally shuffled each epoch."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 8,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int | None | np.random.Generator = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = as_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield self.dataset[idx]
