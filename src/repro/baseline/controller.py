"""The BATCH controller: hourly MAP re-fitting + exhaustive analytic search.

This is the end-to-end baseline of §IV-B: every segment ("hour") BATCH
profiles the *previous* segment's inter-arrival times, fits a MAP, and
solves the optimization problem (Eq. 10) by evaluating the analytic model
on every candidate configuration. Its two documented weaknesses emerge
structurally:

* **computational cost** — fitting plus a matrix-analytic solve per
  candidate (the §IV-F prediction-time comparison measures exactly this);
* **staleness** — the fitted MAP describes last hour, so sudden workload
  changes (Alibaba, MAP-synthetic) are served with mis-tuned parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrival.fitting import FitReport, fit_map, fit_map_kpc
from repro.arrival.map_process import MAP
from repro.baseline.analytic import AnalyticPrediction, BatchAnalyticModel
from repro.batching.config import BatchConfig, config_grid
from repro.core.types import Decision, history_fault as _history_fault
from repro.serverless.pricing import LambdaPricing
from repro.serverless.service_profile import ServiceProfile
from repro.telemetry.events import DecisionEvent
from repro.telemetry.metrics import get_registry
from repro.utils.timing import Timer


@dataclass(frozen=True)
class BatchDecision(Decision):
    """Outcome of one BATCH optimization round.

    ``decision_time`` (the unified API's timing field) equals
    ``fit_time + solve_time``; :attr:`total_time` remains as an alias for
    older call sites.
    """

    prediction: AnalyticPrediction | None = None
    fit_report: FitReport | None = None
    fit_time: float = 0.0
    solve_time: float = 0.0
    feasible: bool = True

    @property
    def total_time(self) -> float:
        return self.fit_time + self.solve_time


class BATCHController:
    """SLO-aware configuration chooser backed by the analytic model."""

    def __init__(
        self,
        configs: list[BatchConfig] | None = None,
        profile: ServiceProfile | None = None,
        pricing: LambdaPricing | None = None,
        percentile: float = 95.0,
        n_steps: int = 96,
        min_samples: int = 30,
        fitting: str = "closed-form",
        fit_order: int = 4,
    ) -> None:
        """``fitting``: ``"closed-form"`` uses the fast exact 2-phase fit
        (equivalent decisions, accelerated — the closed-loop experiments'
        default); ``"kpc"`` runs the KPC-toolbox-style numerical MAP(
        ``fit_order``) optimization, reproducing BATCH's real fitting cost
        (used by the §IV-F prediction-time comparison)."""
        if fitting not in ("closed-form", "kpc"):
            raise ValueError(f"fitting must be 'closed-form' or 'kpc', got {fitting!r}")
        self.configs = configs if configs is not None else config_grid()
        if not self.configs:
            raise ValueError("configs must be non-empty")
        self.profile = profile if profile is not None else ServiceProfile()
        self.pricing = pricing if pricing is not None else LambdaPricing()
        self.percentile = percentile
        self.n_steps = n_steps
        self.min_samples = min_samples
        self.fitting = fitting
        self.fit_order = fit_order
        self.last_map: MAP | None = None
        self.last_decision: BatchDecision | None = None

    def choose(self, interarrival_history: np.ndarray, slo: float) -> BatchDecision:
        """Fit the history window and return the cheapest SLO-feasible
        configuration (Eq. 10); safest config when nothing is feasible.

        Degraded mode: a corrupted or too-short history window, or a
        fitting/solving failure, falls back to the last known-good decision
        (marked ``diagnostics["degraded"]``) instead of killing the serving
        loop; without a prior decision, the error propagates. An invalid
        ``slo`` is a caller bug and always raises.
        """
        if slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        x = np.asarray(interarrival_history, dtype=float)
        fault = _history_fault(x)
        if fault is None and x.size < self.min_samples:
            fault = (
                f"BATCH needs at least {self.min_samples} inter-arrival samples "
                f"to fit a MAP, got {x.size}"
            )
        if fault is not None:
            return self._fall_back(fault)
        try:
            return self._choose(x, slo)
        except Exception as exc:  # degraded-mode serving: keep the last config
            return self._fall_back(f"choose() raised {type(exc).__name__}: {exc}", exc)

    def _fall_back(self, reason: str, exc: Exception | None = None) -> BatchDecision:
        """Re-issue the last known-good decision, or re-raise without one."""
        if self.last_decision is None:
            if exc is not None:
                raise exc
            raise ValueError(reason)
        registry = get_registry()
        if registry.enabled:
            registry.counter("fault.degraded_decisions").inc()
        # Deliberately NOT stored as last_decision: the known-good anchor
        # must survive a run of degraded rounds.
        return BatchDecision(
            config=self.last_decision.config,
            prediction=self.last_decision.prediction,
            fit_report=self.last_decision.fit_report,
            feasible=self.last_decision.feasible,
            decision_time=0.0,
            diagnostics={"degraded": True, "reason": reason},
        )

    def _choose(self, x: np.ndarray, slo: float) -> BatchDecision:
        registry = get_registry()
        with registry.span("batch.choose"):
            with Timer() as t_fit, registry.span("batch.fit"):
                if self.fitting == "kpc":
                    fitted, report = fit_map_kpc(x, order=self.fit_order)
                else:
                    fitted, report = fit_map(x)
            self.last_map = fitted

            model = BatchAnalyticModel(
                fitted, profile=self.profile, pricing=self.pricing, n_steps=self.n_steps
            )
            with Timer() as t_solve, registry.span("batch.solve"):
                preds = model.evaluate_grid(
                    self.configs, percentiles=(self.percentile,)
                )
                feasible = [
                    (p.cost_per_request, i)
                    for i, p in enumerate(preds)
                    if p.latency_percentiles[0] <= slo
                ]
                if feasible:
                    _, best = min(feasible)
                    ok = True
                else:
                    _, best = min(
                        (p.latency_percentiles[0], i) for i, p in enumerate(preds)
                    )
                    ok = False

        decision = BatchDecision(
            config=self.configs[best],
            decision_time=t_fit.elapsed + t_solve.elapsed,
            prediction=preds[best],
            fit_report=report,
            fit_time=t_fit.elapsed,
            solve_time=t_solve.elapsed,
            feasible=ok,
        )
        if registry.enabled:
            registry.counter("batch.decisions").inc()
            registry.histogram("batch.decision_time").observe(decision.decision_time)
            registry.record_event(DecisionEvent(
                controller="batch",
                memory_mb=decision.config.memory_mb,
                batch_size=decision.config.batch_size,
                timeout=decision.config.timeout,
                decision_time=decision.decision_time,
                predicted_cost=preds[best].cost_per_request * 1e6,
                predicted_p95=float(preds[best].latency_percentiles[0]),
                feasible=ok,
            ))
        self.last_decision = decision
        return decision
