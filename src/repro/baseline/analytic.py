"""The BATCH analytic performance model (Ali et al., SC'20), rebuilt.

Given a fitted MAP and a candidate configuration (M, B, T), the model
computes — purely numerically, no simulation — the distribution of request
latency and the expected per-request cost, by a transient matrix-analytic
solution of the batch-formation process:

1. A batch *cycle* opens when a request arrives into an empty buffer
   (phase ≈ the MAP's stationary post-arrival distribution — the standard
   cycle-decoupling approximation).
2. The cycle evolves on the level-expanded chain of
   :mod:`repro.baseline.uniformization`; reaching level B−1 means the batch
   filled (dispatch at the B-th arrival), surviving to T means timeout
   dispatch with 1 + (level at T) requests.
3. Every request's buffer wait is a first-passage functional of that chain;
   the model accumulates the exact (to grid resolution) wait distribution
   of a *randomly tagged request* by weighting arrival flows into each
   level with their remaining-first-passage distributions.
4. Latency = wait + deterministic service s(M, N); cost follows the Lambda
   billing of each dispatch.

The computational cost — a matrix exponential plus O(K) kernel products per
(configuration, fitted MAP) — is intentionally representative of BATCH's
documented expense; the prediction-time benchmark (§IV-F) measures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arrival.map_process import MAP
from repro.batching.config import BatchConfig
from repro.batching.simulator import DEFAULT_PERCENTILES
from repro.baseline.uniformization import transient_kernels
from repro.serverless.pricing import LambdaPricing
from repro.serverless.service_profile import ServiceProfile


@dataclass(frozen=True)
class AnalyticPrediction:
    """Model output for one configuration."""

    config: BatchConfig
    cost_per_request: float
    percentiles: tuple[float, ...]
    latency_percentiles: np.ndarray
    mean_batch_size: float
    p_full: float  # probability a batch dispatches full (vs timeout)

    def latency_at(self, percentile: float) -> float:
        idx = self.percentiles.index(percentile)
        return float(self.latency_percentiles[idx])


def weighted_percentiles(
    values: np.ndarray, weights: np.ndarray, percentiles: np.ndarray
) -> np.ndarray:
    """Percentiles of a weighted discrete distribution (step CDF)."""
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must align")
    if np.any(weights < -1e-12):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("total weight must be positive")
    order = np.argsort(values)
    v = values[order]
    cum = np.cumsum(weights[order]) / total
    qs = np.asarray(percentiles, dtype=float) / 100.0
    idx = np.searchsorted(cum, qs, side="left")
    idx = np.clip(idx, 0, v.size - 1)
    return v[idx]


class BatchAnalyticModel:
    """Latency/cost predictor for batched serverless inference on a MAP.

    Parameters
    ----------
    map_:
        The (fitted) arrival process.
    profile, pricing:
        The platform model — must match the simulator's for a fair
        comparison.
    n_steps:
        Time-grid resolution over [0, T]. 96 keeps discretization error
        well under the simulator's sampling noise.
    """

    def __init__(
        self,
        map_: MAP,
        profile: ServiceProfile | None = None,
        pricing: LambdaPricing | None = None,
        n_steps: int = 96,
    ) -> None:
        if n_steps < 4:
            raise ValueError(f"n_steps must be >= 4, got {n_steps}")
        self.map = map_
        self.profile = profile if profile is not None else ServiceProfile()
        self.pricing = pricing if pricing is not None else LambdaPricing()
        self.n_steps = n_steps

    # ----------------------------------------------------------------- API
    def evaluate(
        self,
        config: BatchConfig,
        percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
    ) -> AnalyticPrediction:
        """Predict cost per request and latency percentiles for ``config``."""
        pct = np.asarray(percentiles, dtype=float)
        if config.batch_size == 1 or config.timeout == 0.0:
            return self._no_batching(config, percentiles)

        atoms_lat, atoms_w, mean_n, p_full, cost_req = self._solve(config)
        lat_p = weighted_percentiles(atoms_lat, atoms_w, pct)
        return AnalyticPrediction(
            config=config,
            cost_per_request=cost_req,
            percentiles=tuple(percentiles),
            latency_percentiles=lat_p,
            mean_batch_size=mean_n,
            p_full=p_full,
        )

    def evaluate_grid(
        self,
        configs: list[BatchConfig],
        percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
    ) -> list[AnalyticPrediction]:
        return [self.evaluate(c, percentiles) for c in configs]

    # ------------------------------------------------------------ internals
    def _no_batching(
        self, config: BatchConfig, percentiles: tuple[float, ...]
    ) -> AnalyticPrediction:
        """B = 1 or T = 0: every (continuous-time) arrival dispatches alone."""
        svc = self.profile.service_time(config.memory_mb, 1)
        cost = self.pricing.invocation_cost(config.memory_mb, svc)
        lat = np.full(len(percentiles), svc)
        return AnalyticPrediction(
            config=config,
            cost_per_request=float(cost),
            percentiles=tuple(percentiles),
            latency_percentiles=lat,
            mean_batch_size=1.0,
            p_full=0.0,
        )

    def _solve(
        self, config: BatchConfig
    ) -> tuple[np.ndarray, np.ndarray, float, float, float]:
        """Transient solve for B >= 2, T > 0.

        Returns (latency_atoms, weights, mean_batch_size, p_full,
        cost_per_request); atom weights are per batch cycle.
        """
        b, t_out, mem = config.batch_size, config.timeout, config.memory_mb
        m = self.map.order
        levels = b - 1  # transient levels 0 .. B-2
        ker = transient_kernels(self.map, levels, t_out, self.n_steps)
        k_max = ker.n_steps
        n_states = levels * m
        surv = ker.survival()  # (K+1, n_states)

        # Opener: level 0, stationary post-arrival phase.
        pi_a = self.map.arrival_phase_distribution()
        p0 = np.zeros(n_states)
        p0[:m] = pi_a

        # Forward (defective) state occupancy at each grid step.
        occupancy = p0 @ ker.kernels  # (K+1, n_states) via batched matmul

        # Arrival flows: rate of requests entering level l (1..B-1) at step
        # k is occupancy[k, level l-1 block] @ D1. Flows into transient
        # levels create tagged requests; flow into level B-1 is absorption
        # (the B-th request, wait 0).
        occ3 = occupancy.reshape(k_max + 1, levels, m)
        flows = occ3 @ self.map.d1  # (K+1, levels, m): from level l-1 -> l
        h = ker.h
        # Trapezoid weights along the time grid.
        tw = np.full(k_max + 1, h)
        tw[0] = tw[-1] = h / 2

        # Request weights entering each *transient* expanded state per step:
        # entering level l corresponds to source block l-1 for l = 1..B-2.
        w_enter = np.zeros((k_max + 1, n_states))
        if levels >= 2:
            w_enter[:, m:] = (flows[:, :-1, :] * tw[:, None, None]).reshape(
                k_max + 1, (levels - 1) * m
            )
        # The opener is a unit point mass at step 0, state block 0.
        w_enter[0, :m] += pi_a

        # Absorbing arrivals (B-th request of a full batch): flow out of the
        # top transient block.
        p_full_flow = float((flows[:, -1, :].sum(axis=1) * tw).sum())

        # ---- batch-size distribution (per cycle) -------------------------
        final_levels = ker.level_distribution(k_max, p0)  # timeout outcome
        p_timeout_sizes = final_levels  # level l -> size 1 + l
        p_full = 1.0 - float(p_timeout_sizes.sum())
        p_full = min(max(p_full, 0.0), 1.0)
        sizes_timeout = 1 + np.arange(levels)
        mean_n = p_full * b + float((sizes_timeout * p_timeout_sizes).sum())

        # ---- expected cost per cycle --------------------------------------
        svc_full = self.profile.service_time(mem, b)
        cost_cycle = p_full * self.pricing.invocation_cost(mem, svc_full)
        svc_sizes = self.profile.service_time(mem, sizes_timeout)
        cost_cycle += float(
            (self.pricing.invocation_cost(mem, svc_sizes) * p_timeout_sizes).sum()
        )
        cost_per_request = cost_cycle / mean_n

        # ---- tagged-request wait distribution -----------------------------
        # Full-dispatch waits: for a request entering state s at step k, the
        # probability its batch fills with wait <= x is
        # 1 - surv[min(x_steps, K-k), s]. Accumulate the CDF on the grid and
        # difference into a pmf.
        total_w = w_enter.sum()  # expected non-absorbing requests per cycle
        ks = np.arange(k_max + 1)
        full_cdf = np.empty(k_max + 1)
        for ix in range(k_max + 1):
            u = np.minimum(ix, k_max - ks)  # remaining-time index per entry step
            full_cdf[ix] = float((w_enter * (1.0 - surv[u, :])).sum())
        full_pmf = np.diff(np.concatenate([[0.0], full_cdf]))
        full_pmf = np.clip(full_pmf, 0.0, None)
        wait_grid = h * ks

        # Timeout point masses with joint final size: a request entering
        # state s at step k that survives to T waits exactly T - k·h and
        # shares a batch of size 1 + (level at T).
        timeout_joint = np.zeros((k_max + 1, levels))  # [wait index K-k, level]
        for k in range(k_max + 1):
            row = w_enter[k]
            if not row.any():
                continue
            at_t = row @ ker.kernels[k_max - k]  # defective: survivors only
            timeout_joint[k_max - k] += at_t.reshape(levels, m).sum(axis=1)

        # ---- assemble latency atoms ---------------------------------------
        atoms_lat = [wait_grid + svc_full]  # full batches: wait pmf grid
        atoms_w = [full_pmf]
        atoms_lat.append(np.array([svc_full]))  # absorbing request, wait 0
        atoms_w.append(np.array([p_full_flow]))
        lat_timeout = wait_grid[:, None] + svc_sizes[None, :]
        atoms_lat.append(lat_timeout.ravel())
        atoms_w.append(timeout_joint.ravel())

        lat = np.concatenate(atoms_lat)
        w = np.concatenate(atoms_w)
        keep = w > 1e-15
        return lat[keep], w[keep], mean_n, p_full, cost_per_request
