"""A MArk-style reactive baseline (§VI related work).

MArk (Zhang et al., ATC'19) adjusts serving parameters from observed load
with rule-based reactions; the paper notes this "adjustment is not timely
for the case of bursty workloads". This module implements that class of
controller honestly: an offline profiling phase builds a rate-band →
configuration lookup table (each band's config is the ground-truth optimum
for a *stationary* Poisson workload at that rate), and the online
controller just measures the recent arrival rate and indexes the table.

It reacts instantly to rate changes but is blind to burstiness (two
workloads with equal mean rate and wildly different IDC get the same
configuration) — the precise failure mode that motivates model-based
controllers like BATCH and DeepBAT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrival.map_process import poisson_map
from repro.batching.config import BatchConfig, config_grid
from repro.batching.simulator import ground_truth_optimum
from repro.core.types import Decision
from repro.serverless.platform import ServerlessPlatform
from repro.telemetry.events import DecisionEvent
from repro.telemetry.metrics import get_registry
from repro.utils.timing import Timer


@dataclass(frozen=True)
class ReactiveDecision(Decision):
    """Outcome of one table lookup."""

    observed_rate: float = 0.0
    band_rate: float = 0.0


class ReactiveController:
    """Rate-band lookup controller built by offline Poisson profiling."""

    def __init__(
        self,
        configs: list[BatchConfig] | None = None,
        platform: ServerlessPlatform | None = None,
        slo: float = 0.1,
        percentile: float = 95.0,
        rate_bands: tuple[float, ...] = (5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0),
        profile_duration: float = 30.0,
        seed: int = 0,
    ) -> None:
        if not rate_bands or any(r <= 0 for r in rate_bands):
            raise ValueError("rate_bands must be positive")
        if sorted(rate_bands) != list(rate_bands):
            raise ValueError("rate_bands must be increasing")
        self.configs = configs if configs is not None else config_grid()
        self.platform = platform if platform is not None else ServerlessPlatform()
        self.slo = slo
        self.percentile = percentile
        self.rate_bands = tuple(rate_bands)
        self._table: dict[float, BatchConfig] = {}
        # Offline profiling: the optimum per stationary rate band.
        for i, rate in enumerate(self.rate_bands):
            ts = poisson_map(rate).sample(duration=profile_duration, seed=seed + i)
            cfg, _ = ground_truth_optimum(
                ts, self.configs, self.platform, slo, percentile
            )
            self._table[rate] = cfg

    def table(self) -> dict[float, BatchConfig]:
        """The profiled lookup table (band rate → configuration)."""
        return dict(self._table)

    def choose(self, interarrival_history: np.ndarray, slo: float) -> ReactiveDecision:
        """Pick the profiled config of the nearest rate band.

        ``slo`` must match the profiling SLO — a reactive table is built
        for one target (rebuilding online is exactly the cost this class of
        controller avoids).
        """
        if abs(slo - self.slo) > 1e-12:
            raise ValueError(
                f"controller profiled for SLO {self.slo}, asked for {slo}; "
                "rebuild the table for a different target"
            )
        x = np.asarray(interarrival_history, dtype=float)
        registry = get_registry()
        with Timer() as t, registry.span("reactive.choose"):
            tail = x[-256:]
            mean = float(tail.mean()) if tail.size else np.inf
            rate = 1.0 / mean if mean > 0 and np.isfinite(mean) else 0.0
            bands = np.asarray(self.rate_bands)
            band = float(bands[int(np.argmin(np.abs(np.log(bands) - np.log(max(rate, 1e-6)))))])
            config = self._table[band]
        if registry.enabled:
            registry.counter("reactive.decisions").inc()
            registry.record_event(DecisionEvent(
                controller="reactive",
                memory_mb=config.memory_mb,
                batch_size=config.batch_size,
                timeout=config.timeout,
                decision_time=t.elapsed,
            ))
        return ReactiveDecision(
            config=config, observed_rate=rate, band_rate=band, decision_time=t.elapsed
        )
