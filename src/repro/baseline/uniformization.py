"""Transient analysis of the MAP counting process on a level-expanded chain.

The batch-formation dynamics under a (B, T) policy are a first-passage
problem on the chain whose state is ``(level, phase)``: *level* counts the
arrivals accumulated after the batch opener (0 … B−2 transient; reaching
level B−1 means the batch filled), *phase* is the MAP's background phase.
The block generator is upper bidiagonal — ``D0`` within a level, ``D1``
one level up.

This module builds that expanded generator and computes its transient
kernel on a uniform time grid via one matrix exponential of the step
(``expm(Q·h)``) followed by cumulative matrix products — numerically
equivalent to uniformization at grid resolution and far cheaper than one
``expm`` per grid point. This is the "numerical solution of several matrix
exponentials" at the heart of BATCH (§VI of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from repro.arrival.map_process import MAP


def expanded_generator(map_: MAP, levels: int) -> np.ndarray:
    """Generator of the transient part of the level-expanded chain.

    ``levels`` transient levels (0 … levels−1); transitions out of the top
    level via ``D1`` are absorption (batch full) and therefore do not
    appear: the matrix is sub-stochastic.
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    m = map_.order
    n = levels * m
    q = np.zeros((n, n))
    for l in range(levels):
        q[l * m : (l + 1) * m, l * m : (l + 1) * m] = map_.d0
        if l + 1 < levels:
            q[l * m : (l + 1) * m, (l + 1) * m : (l + 2) * m] = map_.d1
    return q


@dataclass(frozen=True)
class TransientKernel:
    """Transient kernels of the expanded chain on a uniform time grid.

    Attributes
    ----------
    map_:
        The underlying arrival process.
    levels:
        Number of transient levels (= B − 1 for a batch limit of B).
    h:
        Grid step (seconds).
    kernels:
        ``(K+1, n, n)`` with ``kernels[k] = expm(Q·k·h)`` restricted to
        transient states; ``n = levels · order``.
    """

    map_: MAP
    levels: int
    h: float
    kernels: np.ndarray

    @property
    def n_steps(self) -> int:
        return self.kernels.shape[0] - 1

    @property
    def order(self) -> int:
        return self.map_.order

    def state_index(self, level: int, phase: int) -> int:
        return level * self.order + phase

    def survival(self) -> np.ndarray:
        """``(K+1, n)`` matrix of P(not yet absorbed by k·h | start state)."""
        return self.kernels.sum(axis=2)

    def level_distribution(self, k: int, initial: np.ndarray) -> np.ndarray:
        """Distribution over transient levels at step ``k`` starting from
        the expanded-state distribution ``initial`` (defective: the missing
        mass has been absorbed)."""
        probs = initial @ self.kernels[k]
        return probs.reshape(self.levels, self.order).sum(axis=1)


def transient_kernels(map_: MAP, levels: int, horizon: float, n_steps: int) -> TransientKernel:
    """Compute :class:`TransientKernel` for ``levels`` transient levels over
    ``[0, horizon]`` with ``n_steps`` uniform steps."""
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    q = expanded_generator(map_, levels)
    h = horizon / n_steps
    step = expm(q * h)
    n = q.shape[0]
    kernels = np.empty((n_steps + 1, n, n))
    kernels[0] = np.eye(n)
    for k in range(1, n_steps + 1):
        kernels[k] = kernels[k - 1] @ step
    return TransientKernel(map_=map_, levels=levels, h=h, kernels=kernels)


def time_to_level_cdf(map_: MAP, target_arrivals: int, t_grid: np.ndarray,
                      initial_phase: np.ndarray | None = None) -> np.ndarray:
    """CDF of the time until the ``target_arrivals``-th arrival of the MAP.

    This is the phase-type first-passage distribution through
    ``target_arrivals`` levels, evaluated on ``t_grid`` — used in tests to
    validate the expanded chain against Erlang/closed-form cases.
    """
    if target_arrivals < 1:
        raise ValueError("target_arrivals must be >= 1")
    t_grid = np.asarray(t_grid, dtype=float)
    if np.any(t_grid < 0):
        raise ValueError("t_grid must be non-negative")
    pi = map_.arrival_phase_distribution() if initial_phase is None else np.asarray(initial_phase)
    q = expanded_generator(map_, target_arrivals)
    init = np.zeros(q.shape[0])
    init[: map_.order] = pi
    out = np.empty(t_grid.size)
    for i, t in enumerate(t_grid):
        out[i] = 1.0 - (init @ expm(q * t)).sum()
    return np.clip(out, 0.0, 1.0)
