"""The BATCH baseline: matrix-analytic latency/cost model over a fitted MAP
plus the hourly re-fitting controller."""

from repro.baseline.analytic import (
    AnalyticPrediction,
    BatchAnalyticModel,
    weighted_percentiles,
)
from repro.baseline.controller import BATCHController, BatchDecision
from repro.baseline.reactive import ReactiveController, ReactiveDecision
from repro.baseline.uniformization import (
    TransientKernel,
    expanded_generator,
    time_to_level_cdf,
    transient_kernels,
)

__all__ = [
    "AnalyticPrediction",
    "BATCHController",
    "BatchAnalyticModel",
    "BatchDecision",
    "ReactiveController",
    "ReactiveDecision",
    "TransientKernel",
    "expanded_generator",
    "time_to_level_cdf",
    "transient_kernels",
    "weighted_percentiles",
]
