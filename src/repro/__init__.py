"""DeepBAT reproduction.

Reproduces *DeepBAT: Performance and Cost Optimization of Serverless
Inference Using Transformers* (IPDPS 2025) end to end, including every
substrate: a pure-NumPy deep-learning framework (:mod:`repro.nn`), arrival
process machinery (:mod:`repro.arrival`), a serverless platform model
(:mod:`repro.serverless`), the batching ground-truth simulator
(:mod:`repro.batching`), the BATCH analytic baseline (:mod:`repro.baseline`),
the DeepBAT surrogate/optimizer/controller (:mod:`repro.core`), and the
evaluation harness (:mod:`repro.evaluation`).
"""

__version__ = "1.0.0"
