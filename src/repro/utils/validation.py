"""Input-validation helpers shared across subsystems.

These raise early with actionable messages rather than letting NaNs and
negative rates propagate into simulations or training.
"""

from __future__ import annotations

import numpy as np


def check_finite(x: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise ``ValueError`` if ``x`` contains NaN or infinity."""
    x = np.asarray(x)
    if not np.all(np.isfinite(x)):
        raise ValueError(f"{name} contains non-finite values")
    return x


def check_positive(x: float, name: str = "value", strict: bool = True) -> float:
    """Raise ``ValueError`` unless ``x`` is positive (or non-negative)."""
    if strict and not x > 0:
        raise ValueError(f"{name} must be > 0, got {x}")
    if not strict and not x >= 0:
        raise ValueError(f"{name} must be >= 0, got {x}")
    return x


def check_probability_vector(p: np.ndarray, name: str = "probability vector") -> np.ndarray:
    """Validate that ``p`` is a 1-D non-negative vector summing to one."""
    p = np.asarray(p, dtype=float)
    if p.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {p.shape}")
    if np.any(p < -1e-12):
        raise ValueError(f"{name} has negative entries")
    if not np.isclose(p.sum(), 1.0, atol=1e-8):
        raise ValueError(f"{name} must sum to 1, sums to {p.sum()}")
    return p


def check_sorted(x: np.ndarray, name: str = "array", strict: bool = False) -> np.ndarray:
    """Validate that ``x`` is sorted in non-decreasing (or increasing) order."""
    x = np.asarray(x)
    d = np.diff(x)
    if strict and np.any(d <= 0):
        raise ValueError(f"{name} must be strictly increasing")
    if not strict and np.any(d < 0):
        raise ValueError(f"{name} must be sorted in non-decreasing order")
    return x
