"""Shared utilities: seeded RNG management, validation helpers, timers."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability_vector,
    check_sorted,
)

__all__ = [
    "Timer",
    "as_rng",
    "check_finite",
    "check_positive",
    "check_probability_vector",
    "check_sorted",
    "spawn_rngs",
]
