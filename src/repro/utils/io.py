"""Crash-safe file I/O shared by every checkpoint writer in the repo.

A process dying mid-``write()`` must never leave a torn file where a valid
one used to be — neither for model ``.npz`` archives
(:mod:`repro.nn.serialization`) nor for serving-runtime snapshots
(:mod:`repro.serving.checkpoint`). :func:`atomic_write` implements the
standard discipline once: write to a temporary file in the *same directory*
(so the final rename never crosses a filesystem), flush and fsync it, then
``os.replace`` it over the destination. Readers see either the old complete
file or the new complete file, never a prefix of the new one.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator


@contextlib.contextmanager
def atomic_write(path: str | os.PathLike, mode: str = "wb") -> Iterator[IO]:
    """Context manager yielding a handle whose contents replace ``path``
    atomically on success and are discarded entirely on failure.

    ``mode`` must be a write mode (``"wb"`` or ``"w"``). The temporary file
    lives next to ``path`` so :func:`os.replace` is a same-filesystem rename
    — the atomicity guarantee POSIX provides.
    """
    if mode not in ("wb", "w"):
        raise ValueError(f"mode must be 'wb' or 'w', got {mode!r}")
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
