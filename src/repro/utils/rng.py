"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``seed`` — either an
integer, ``None`` (fresh entropy), or an existing
:class:`numpy.random.Generator` — and normalizes it through :func:`as_rng`.
This keeps experiments reproducible end to end while letting callers share a
single generator across components when they want correlated streams.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def as_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged (shared stream);
    passing an int gives a deterministic fresh generator; ``None`` draws OS
    entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split one seed into ``n`` independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent regardless of ``n``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the parent's bit generator state.
        return [np.random.default_rng(seed.integers(0, 2**63)) for _ in range(n)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
