"""Wall-clock timing utility used by the speedup experiments (§IV-F)."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None
