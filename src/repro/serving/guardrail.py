"""SLO guardrail: a reactive circuit breaker around the learned controller.

DeepBAT's surrogate plans configurations minutes ahead; nothing in PR 4's
runtime protects the SLO when those predictions go wrong *now* (a workload
the surrogate never saw, a stale model mid-retrain, a pathological config).
Production systems pair the slow learned planner with a fast reactive
safety net — InferLine's planner/tuner split — and that is what this module
adds: an online monitor over the stream of completed-request latencies that
trips to a known-safe configuration when the observed tail breaks the SLO,
then carefully lets the learned controller back in.

The breaker is a classic three-state machine over *violation windows*
(disjoint windows of ``window`` completed latencies whose ``percentile``
exceeds the SLO):

* **closed** — normal operation. Each compliant window records the active
  configuration as *last known-good*; ``k`` consecutive violating windows
  trip the breaker.
* **open** — the engine deploys the fallback configuration (a configured
  one, else the last known-good, else the conservative ``(M, B=1, T=0)``)
  and suppresses learned-controller reconfigurations. After ``cooldown_s``
  the breaker half-opens.
* **half-open** — the learned controller is probed back in (one out-of-band
  decision). ``probe_windows`` consecutive compliant windows restore the
  breaker to closed; a single violating window re-trips it.

The machine is pure bookkeeping — no RNG, no clock of its own (the engine
passes simulated time in), and every field pickles — so it checkpoints and
restores bit-exactly with the rest of the serving state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.batching.config import BatchConfig

#: Breaker states (stringly-typed on purpose: they pickle, JSONify, and
#: print without an enum import at every call site).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class GuardrailConfig:
    """Policy knobs of the SLO circuit breaker.

    * ``window`` — completed requests per violation window;
    * ``percentile`` — latency percentile compared against the SLO;
    * ``k`` — consecutive violating windows that trip the breaker;
    * ``cooldown_s`` — how long the breaker stays open before probing the
      learned controller again;
    * ``probe_windows`` — consecutive compliant windows required to close
      the breaker from half-open;
    * ``fallback`` — the configuration deployed on trip. ``None`` falls
      back to the last known-good configuration, or — before any compliant
      window has been seen — the conservative ``(M, B=1, T=0)`` at the
      active memory tier (no batching delay, smallest blast radius).
    """

    window: int = 64
    percentile: float = 95.0
    k: int = 3
    cooldown_s: float = 30.0
    probe_windows: int = 2
    fallback: BatchConfig | None = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {self.cooldown_s}")
        if self.probe_windows < 1:
            raise ValueError(
                f"probe_windows must be >= 1, got {self.probe_windows}"
            )


@dataclass
class SLOGuardrail:
    """The breaker's mutable runtime state (one per engine run).

    :meth:`observe` consumes completed latencies in completion order and
    returns the state transitions the engine must act on, each as an
    ``(action, observed_percentile)`` pair with ``action`` one of
    ``"tripped"`` (deploy the fallback), ``"probe"`` (re-admit the learned
    controller for one decision), and ``"restored"`` (normal operation).
    """

    config: GuardrailConfig
    slo: float
    state: str = CLOSED
    violations: int = 0  # consecutive violating windows while closed
    clean_probes: int = 0  # consecutive compliant windows while half-open
    tripped_at: float = -math.inf
    trips: int = 0
    restores: int = 0
    last_good: BatchConfig | None = None
    _window_buf: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.slo <= 0:
            raise ValueError(f"slo must be > 0, got {self.slo}")

    # ----------------------------------------------------------------- policy
    def fallback_config(self, active: BatchConfig) -> BatchConfig:
        """The configuration to deploy when the breaker trips."""
        if self.config.fallback is not None:
            return self.config.fallback
        if self.last_good is not None:
            return self.last_good
        return BatchConfig(memory_mb=active.memory_mb, batch_size=1,
                           timeout=0.0)

    # ------------------------------------------------------------------- flow
    def observe(
        self, latencies: np.ndarray, now: float, active: BatchConfig
    ) -> list[tuple[str, float]]:
        """Feed completed-request latencies; return required transitions.

        ``latencies`` arrive in completion order (the engine calls this at
        every completion event), so the window stream — and therefore every
        transition — is a pure function of the event trace: deterministic,
        replayable, checkpointable.
        """
        actions: list[tuple[str, float]] = []
        if self.state == OPEN and now >= self.tripped_at + self.config.cooldown_s:
            self.state = HALF_OPEN
            self.clean_probes = 0
            actions.append(("probe", math.nan))
        self._window_buf.extend(float(v) for v in np.asarray(latencies).ravel())
        while len(self._window_buf) >= self.config.window:
            window = self._window_buf[: self.config.window]
            del self._window_buf[: self.config.window]
            observed = float(np.percentile(window, self.config.percentile))
            violated = observed > self.slo
            if self.state == CLOSED:
                if violated:
                    self.violations += 1
                    if self.violations >= self.config.k:
                        actions.append(("tripped", observed))
                        self._trip(now)
                else:
                    self.violations = 0
                    self.last_good = active
            elif self.state == HALF_OPEN:
                if violated:
                    actions.append(("tripped", observed))
                    self._trip(now)
                else:
                    self.clean_probes += 1
                    if self.clean_probes >= self.config.probe_windows:
                        self.state = CLOSED
                        self.violations = 0
                        self.restores += 1
                        actions.append(("restored", observed))
            # OPEN: the fallback is already deployed; windows completed
            # under the old configuration carry no new signal — wait out
            # the cooldown.
        return actions

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.tripped_at = now
        self.trips += 1
        self.violations = 0
        self.clean_probes = 0
