"""Grouped configuration for the serving engines (the PR 6 API redesign).

:class:`~repro.serving.engine.ServingEngine` grew one keyword argument per
feature across PRs 4–5 — nine of them belonged to just two concerns, drift
detection and prediction-drift monitoring. This module groups them into
cohesive, validated config dataclasses shared by both the single-endpoint
engine and the fleet (:mod:`repro.serving.fleet`):

* :class:`DriftConfig` — the workload-drift trigger: which fitted detector
  to consult, how often, the cooldown between triggers, and the optional
  delayed retrain;
* :class:`PredictionDriftConfig` — the §III-D prediction-error trigger:
  the training-time baseline error, the tolerance multiplier, and the
  minimum observation count;
* :class:`PrewarmConfig` — predictive warm-pool prewarming: which rate
  forecaster drives it, how often the policy ticks, how far ahead it
  looks, and the headroom / retire knobs (see
  :mod:`repro.serving.prewarm`);
* :class:`GenerationConfig` — the token-streaming workload: the
  prefill/decode timing profile, the seeded output-length model, which
  dispatcher forms batches (the size/timeout buffer or the
  continuous-batching sessions of :mod:`repro.batching.continuous`),
  and the TTFT/TPOT SLOs that define goodput (see
  :mod:`repro.serving.generation`).

They sit alongside the pre-existing groups
:class:`~repro.serving.pool.WarmPoolConfig` and
:class:`~repro.serving.guardrail.GuardrailConfig`, completing the
config-driven engine API. Validation lives in ``__post_init__`` (the
scattered ``if ... raise ValueError`` checks moved out of
``ServingEngine.__init__``), so a malformed group fails at construction —
before any engine exists. The old flat keyword arguments keep working
through a deprecation shim on the engine; see
:class:`~repro.serving.engine.ServingEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.serverless.generation import TokenLengthModel, TokenServiceProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    import numpy as np

    from repro.core.drift import WorkloadDriftDetector
    from repro.serving.prewarm import RateForecaster


@dataclass(frozen=True)
class DriftConfig:
    """The workload-drift trigger's policy knobs.

    * ``detector`` — fitted :class:`WorkloadDriftDetector`; ``None`` keeps
      the cadence parameters (which also pace the prediction-drift check)
      but never fires a workload trigger;
    * ``window`` — live interarrivals scored per check;
    * ``check_every`` — arrivals between checks;
    * ``cooldown_s`` — minimum simulated time between triggers;
    * ``retrain_delay_s`` — with a value set, each trigger also schedules a
      ``RetrainComplete`` (envelope refit on recent traffic) after this
      long; ``None`` disables retraining;
    * ``on_retrain`` — optional hook called with the recent interarrivals
      when a retrain completes.
    """

    detector: "WorkloadDriftDetector | None" = None
    window: int = 64
    check_every: int = 32
    cooldown_s: float = 30.0
    retrain_delay_s: float | None = None
    on_retrain: "Callable[[np.ndarray], None] | None" = None

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.retrain_delay_s is not None and self.retrain_delay_s < 0:
            raise ValueError(
                f"retrain_delay_s must be >= 0 or None, got {self.retrain_delay_s}"
            )


@dataclass(frozen=True)
class PredictionDriftConfig:
    """The prediction-error trigger's policy knobs (§III-D, second trigger).

    * ``baseline_error`` — the surrogate's training-time relative p95
      error; the trigger fires when the live error exceeds
      ``tolerance × baseline_error``;
    * ``tolerance`` — the multiplier on the baseline;
    * ``min_samples`` — completed requests required under the active
      decision before the observed p95 is trusted.
    """

    baseline_error: float
    tolerance: float = 2.0
    min_samples: int = 64

    def __post_init__(self) -> None:
        if self.baseline_error <= 0:
            raise ValueError(
                f"baseline_error must be > 0, got {self.baseline_error}"
            )
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be > 0, got {self.tolerance}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


@dataclass(frozen=True)
class PrewarmConfig:
    """Predictive warm-pool prewarming policy knobs.

    * ``forecaster`` — a :class:`~repro.serving.prewarm.RateForecaster`
      supplying the near-future arrival-rate estimate (empirical window,
      NHPP profile, MAP local rate, or the oracle upper bound);
    * ``interval_s`` — simulated time between prewarm ticks;
    * ``horizon_s`` — how far ahead the forecast looks; ``None`` defaults
      to ``interval_s`` plus the active tier's cold-start delay (provision
      lead time covers the next tick and the spin-up it replaces);
    * ``headroom`` — multiplier on the forecast target (1.0 = size exactly
      to the expected load; >1 buys burst insurance at provisioning cost);
    * ``max_per_tick`` — cap on containers provisioned per tick (rate
      limiter against a forecast spike); ``None`` = uncapped;
    * ``retire`` — also retire idle containers above the target, ahead of
      their keep-alive expiry;
    * ``window`` — recent inter-arrivals handed to the forecaster.
    """

    forecaster: "RateForecaster"
    interval_s: float = 1.0
    horizon_s: float | None = None
    headroom: float = 1.0
    max_per_tick: int | None = None
    retire: bool = False
    window: int = 256

    def __post_init__(self) -> None:
        if self.forecaster is None:
            raise ValueError("forecaster must be set")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.horizon_s is not None and self.horizon_s <= 0:
            raise ValueError(
                f"horizon_s must be > 0 or None, got {self.horizon_s}"
            )
        if self.headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {self.headroom}")
        if self.max_per_tick is not None and self.max_per_tick < 1:
            raise ValueError("max_per_tick must be >= 1 or None")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def fingerprint(self) -> tuple:
        """Scalar identity for checkpoint compatibility checks.

        Deliberately excludes the forecaster object (object identity would
        never match across processes — the detector is likewise left out of
        the drift fingerprint) in favour of its class name.
        """
        return (
            type(self.forecaster).__name__,
            self.interval_s,
            self.horizon_s,
            self.headroom,
            self.max_per_tick,
            self.retire,
            self.window,
        )


#: Dispatcher strategies a :class:`GenerationConfig` may select.
GENERATION_DISPATCHERS = ("buffer", "continuous")


@dataclass(frozen=True)
class GenerationConfig:
    """Token-streaming generation workload knobs.

    * ``token_profile`` — the prefill/decode timing model
      (:class:`~repro.serverless.generation.TokenServiceProfile`); its
      ``ttft(M, B)`` is the request-level ``s(M, B)``, so the old engine
      is the ``output_tokens == 1`` special case;
    * ``length_model`` — seeded per-request ``(prompt, output)`` token
      sampler (:class:`~repro.serverless.generation.TokenLengthModel`);
    * ``dispatcher`` — ``"buffer"`` runs the existing size/timeout
      :class:`~repro.batching.buffer.BatchingBuffer` with generation
      timing (each batch holds its container for the *longest* decode);
      ``"continuous"`` runs iteration-level sessions
      (:class:`~repro.batching.continuous.ContinuousSession`) where
      requests join and leave a running batch at token boundaries;
    * ``max_batch_tokens`` — continuous-mode admission budget: a request
      joins only while the running KV footprint (``prompt + output``
      tokens per member) stays within it; ``None`` = size cap only;
    * ``max_waiting`` — continuous-mode admission control: with the pool
      exhausted, an arrival that would leave more than this many requests
      waiting is shed; ``None`` = never shed;
    * ``ttft_slo`` — the time-to-first-token objective that defines
      goodput; ``None`` falls back to the engine's latency SLO;
    * ``tpot_slo`` — optional per-output-token objective; a served
      request counts toward goodput only if it meets both;
    * ``seed`` — entropy for the per-request length sampling.
    """

    token_profile: TokenServiceProfile = field(
        default_factory=TokenServiceProfile
    )
    length_model: TokenLengthModel = field(default_factory=TokenLengthModel)
    dispatcher: str = "continuous"
    max_batch_tokens: int | None = None
    max_waiting: int | None = None
    ttft_slo: float | None = None
    tpot_slo: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dispatcher not in GENERATION_DISPATCHERS:
            raise ValueError(
                f"dispatcher must be one of {GENERATION_DISPATCHERS}, "
                f"got {self.dispatcher!r}"
            )
        if self.max_batch_tokens is not None and self.max_batch_tokens < 1:
            raise ValueError("max_batch_tokens must be >= 1 or None")
        if self.max_waiting is not None and self.max_waiting < 0:
            raise ValueError("max_waiting must be >= 0 or None")
        if self.ttft_slo is not None and self.ttft_slo <= 0:
            raise ValueError(f"ttft_slo must be > 0 or None, got {self.ttft_slo}")
        if self.tpot_slo is not None and self.tpot_slo <= 0:
            raise ValueError(f"tpot_slo must be > 0 or None, got {self.tpot_slo}")

    def fingerprint(self) -> tuple:
        """Scalar identity for checkpoint compatibility checks.

        The profile and length model are frozen dataclasses of scalars,
        so (unlike the prewarm forecaster) they compare by value and can
        join the fingerprint directly.
        """
        return (
            self.token_profile,
            self.length_model,
            self.dispatcher,
            self.max_batch_tokens,
            self.max_waiting,
            self.ttft_slo,
            self.tpot_slo,
            self.seed,
        )
