"""Grouped configuration for the serving engines (the PR 6 API redesign).

:class:`~repro.serving.engine.ServingEngine` grew one keyword argument per
feature across PRs 4–5 — nine of them belonged to just two concerns, drift
detection and prediction-drift monitoring. This module groups them into
cohesive, validated config dataclasses shared by both the single-endpoint
engine and the fleet (:mod:`repro.serving.fleet`):

* :class:`DriftConfig` — the workload-drift trigger: which fitted detector
  to consult, how often, the cooldown between triggers, and the optional
  delayed retrain;
* :class:`PredictionDriftConfig` — the §III-D prediction-error trigger:
  the training-time baseline error, the tolerance multiplier, and the
  minimum observation count;
* :class:`PrewarmConfig` — predictive warm-pool prewarming: which rate
  forecaster drives it, how often the policy ticks, how far ahead it
  looks, and the headroom / retire knobs (see
  :mod:`repro.serving.prewarm`).

They sit alongside the pre-existing groups
:class:`~repro.serving.pool.WarmPoolConfig` and
:class:`~repro.serving.guardrail.GuardrailConfig`, completing the
config-driven engine API. Validation lives in ``__post_init__`` (the
scattered ``if ... raise ValueError`` checks moved out of
``ServingEngine.__init__``), so a malformed group fails at construction —
before any engine exists. The old flat keyword arguments keep working
through a deprecation shim on the engine; see
:class:`~repro.serving.engine.ServingEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    import numpy as np

    from repro.core.drift import WorkloadDriftDetector
    from repro.serving.prewarm import RateForecaster


@dataclass(frozen=True)
class DriftConfig:
    """The workload-drift trigger's policy knobs.

    * ``detector`` — fitted :class:`WorkloadDriftDetector`; ``None`` keeps
      the cadence parameters (which also pace the prediction-drift check)
      but never fires a workload trigger;
    * ``window`` — live interarrivals scored per check;
    * ``check_every`` — arrivals between checks;
    * ``cooldown_s`` — minimum simulated time between triggers;
    * ``retrain_delay_s`` — with a value set, each trigger also schedules a
      ``RetrainComplete`` (envelope refit on recent traffic) after this
      long; ``None`` disables retraining;
    * ``on_retrain`` — optional hook called with the recent interarrivals
      when a retrain completes.
    """

    detector: "WorkloadDriftDetector | None" = None
    window: int = 64
    check_every: int = 32
    cooldown_s: float = 30.0
    retrain_delay_s: float | None = None
    on_retrain: "Callable[[np.ndarray], None] | None" = None

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.retrain_delay_s is not None and self.retrain_delay_s < 0:
            raise ValueError(
                f"retrain_delay_s must be >= 0 or None, got {self.retrain_delay_s}"
            )


@dataclass(frozen=True)
class PredictionDriftConfig:
    """The prediction-error trigger's policy knobs (§III-D, second trigger).

    * ``baseline_error`` — the surrogate's training-time relative p95
      error; the trigger fires when the live error exceeds
      ``tolerance × baseline_error``;
    * ``tolerance`` — the multiplier on the baseline;
    * ``min_samples`` — completed requests required under the active
      decision before the observed p95 is trusted.
    """

    baseline_error: float
    tolerance: float = 2.0
    min_samples: int = 64

    def __post_init__(self) -> None:
        if self.baseline_error <= 0:
            raise ValueError(
                f"baseline_error must be > 0, got {self.baseline_error}"
            )
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be > 0, got {self.tolerance}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


@dataclass(frozen=True)
class PrewarmConfig:
    """Predictive warm-pool prewarming policy knobs.

    * ``forecaster`` — a :class:`~repro.serving.prewarm.RateForecaster`
      supplying the near-future arrival-rate estimate (empirical window,
      NHPP profile, MAP local rate, or the oracle upper bound);
    * ``interval_s`` — simulated time between prewarm ticks;
    * ``horizon_s`` — how far ahead the forecast looks; ``None`` defaults
      to ``interval_s`` plus the active tier's cold-start delay (provision
      lead time covers the next tick and the spin-up it replaces);
    * ``headroom`` — multiplier on the forecast target (1.0 = size exactly
      to the expected load; >1 buys burst insurance at provisioning cost);
    * ``max_per_tick`` — cap on containers provisioned per tick (rate
      limiter against a forecast spike); ``None`` = uncapped;
    * ``retire`` — also retire idle containers above the target, ahead of
      their keep-alive expiry;
    * ``window`` — recent inter-arrivals handed to the forecaster.
    """

    forecaster: "RateForecaster"
    interval_s: float = 1.0
    horizon_s: float | None = None
    headroom: float = 1.0
    max_per_tick: int | None = None
    retire: bool = False
    window: int = 256

    def __post_init__(self) -> None:
        if self.forecaster is None:
            raise ValueError("forecaster must be set")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.horizon_s is not None and self.horizon_s <= 0:
            raise ValueError(
                f"horizon_s must be > 0 or None, got {self.horizon_s}"
            )
        if self.headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {self.headroom}")
        if self.max_per_tick is not None and self.max_per_tick < 1:
            raise ValueError("max_per_tick must be >= 1 or None")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def fingerprint(self) -> tuple:
        """Scalar identity for checkpoint compatibility checks.

        Deliberately excludes the forecaster object (object identity would
        never match across processes — the detector is likewise left out of
        the drift fingerprint) in favour of its class name.
        """
        return (
            type(self.forecaster).__name__,
            self.interval_s,
            self.horizon_s,
            self.headroom,
            self.max_per_tick,
            self.retire,
            self.window,
        )
