"""The serving runtime's result log, scoreable like an :class:`ExperimentLog`.

A :class:`ServingLog` records one live run at two granularities: per request
(arrival, latency, shed/failed flags) and per executed batch (dispatch,
start, size, cost, cold/warm, memory tier), plus every decision the
controller took and the runtime counters the offline harness cannot express
(cold-start rate, shed requests, reconfigurations, drift triggers).

:meth:`ServingLog.to_experiment_log` re-bins the run into trace segments and
returns a genuine :class:`~repro.evaluation.harness.ExperimentLog`, so the
whole of :mod:`repro.evaluation` — VCR series, cost series, comparison
tables, plots — scores live runs and offline replays through one interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.batching.config import BatchConfig
from repro.evaluation.harness import ExperimentLog, SegmentOutcome
from repro.evaluation.metrics import (
    generation_goodput as _generation_goodput,
    goodput as _goodput,
    nan_percentile as _nan_percentile,
    slo_attainment as _slo_attainment,
    vcr as _vcr,
)


class BatchColumns:
    """Chunked struct-of-arrays accumulator for the per-batch record.

    The serving engine appends one row per executed batch (dispatch, start,
    size, cost, cold, memory, retries). Growing seven Python lists and
    converting them with ``np.asarray`` at the end of a run boxes every
    scalar twice; this accumulator writes straight into preallocated numpy
    chunks of ``chunk_rows`` rows and concatenates the chunks once in
    :meth:`arrays`. The object pickles (checkpoint snapshots carry it), and
    :meth:`arrays` produces dtypes identical to the historical
    ``np.asarray`` conversion, so :class:`ServingLog` contents are
    bit-identical to the list-backed build.
    """

    chunk_rows = 1024

    def __init__(self) -> None:
        self._count = 0
        self._full: list[tuple[np.ndarray, ...]] = []
        self._alloc()

    def _alloc(self) -> None:
        rows = self.chunk_rows
        self._dispatch = np.empty(rows)
        self._start = np.empty(rows)
        self._size = np.empty(rows, dtype=int)
        self._cost = np.empty(rows)
        self._cold = np.empty(rows, dtype=bool)
        self._memory = np.empty(rows)
        self._retries = np.empty(rows, dtype=int)
        self._fill = 0

    def _chunk(self, rows: int) -> tuple[np.ndarray, ...]:
        return (self._dispatch[:rows], self._start[:rows], self._size[:rows],
                self._cost[:rows], self._cold[:rows], self._memory[:rows],
                self._retries[:rows])

    def __len__(self) -> int:
        return self._count

    def append(self, dispatch: float, start: float, size: int, cost: float,
               cold: bool, memory: float, retries: int) -> None:
        i = self._fill
        if i == self.chunk_rows:
            self._full.append(self._chunk(self.chunk_rows))
            self._alloc()
            i = 0
        self._dispatch[i] = dispatch
        self._start[i] = start
        self._size[i] = size
        self._cost[i] = cost
        self._cold[i] = cold
        self._memory[i] = memory
        self._retries[i] = retries
        self._fill = i + 1
        self._count += 1

    def arrays(self) -> tuple[np.ndarray, ...]:
        """``(dispatch, start, sizes, costs, cold, memory, retries)`` as
        freshly-owned arrays (float, float, int, float, bool, float, int)."""
        chunks = list(self._full)
        if self._fill:
            chunks.append(self._chunk(self._fill))
        if not chunks:
            return (np.empty(0), np.empty(0), np.empty(0, dtype=int),
                    np.empty(0), np.empty(0, dtype=bool), np.empty(0),
                    np.empty(0, dtype=int))
        return tuple(
            np.concatenate([chunk[k] for chunk in chunks]) for k in range(7)
        )


@dataclass
class ServingDecision:
    """One controller invocation inside the serving loop.

    Mutable on purpose: the engine back-fills ``applied_at`` when (and if)
    the decided configuration survives the deploy lag and takes effect.
    """

    time: float
    # "interval" | "drift" | "prediction-drift" | "initial" |
    # "guardrail" (breaker trip) | "guardrail-probe" (half-open re-admission)
    reason: str
    config: BatchConfig
    decision_time: float
    degraded: bool = False
    applied_at: float | None = None  # None: no reconfiguration was needed
    predicted_p95: float | None = None


@dataclass
class ServingLog:
    """Everything one :class:`~repro.serving.engine.ServingEngine` run saw."""

    name: str
    trace: str
    slo: float
    # Per request (arrival order; latency is NaN for shed requests).
    arrival_times: np.ndarray
    latencies: np.ndarray
    shed: np.ndarray
    failed: np.ndarray
    # Per executed batch (execution start order).
    dispatch_times: np.ndarray
    start_times: np.ndarray
    batch_sizes: np.ndarray
    batch_costs: np.ndarray
    batch_cold: np.ndarray
    batch_memory: np.ndarray
    batch_retries: np.ndarray = field(default_factory=lambda: np.empty(0, int))
    # Control plane.
    decisions: list[ServingDecision] = field(default_factory=list)
    reconfigurations: int = 0
    drift_triggers: int = 0
    prediction_drift_triggers: int = 0
    retrains: int = 0
    shed_batches: int = 0
    # Pool scorecard.
    cold_starts: int = 0
    warm_starts: int = 0
    expired_containers: int = 0
    evicted_containers: int = 0
    # Predictive prewarming (PR 8); all zero when the feature is off.
    prewarm_ticks: int = 0
    prewarmed_containers: int = 0
    prewarm_retired: int = 0
    #: Provisioning spend of speculative cold starts (billed off the
    #: request path); add to ``total_cost`` for the all-in bill.
    prewarm_cost: float = 0.0
    # Fault layer.
    n_retries: int = 0
    n_failed: int = 0
    sequence_length: int = 256
    #: Optional deterministic event trace (``record_trace=True`` runs).
    event_trace: list[tuple] | None = None
    # Reliability layer (PR 5): crash safety and the SLO guardrail.
    n_events: int = 0
    checkpoints: int = 0
    guardrail_trips: int = 0
    guardrail_restores: int = 0
    guardrail_probes: int = 0
    guardrail_suppressed: int = 0
    #: Final breaker state ("closed" | "open" | "half-open"), None when the
    #: guardrail was not enabled.
    guardrail_state: str | None = None
    # Token-streaming generation (PR 9); all None/zero when the feature is
    # off. Per-request arrays are NaN for shed requests, and ``tpot`` is
    # also NaN for one-token requests (no decode steps to pace).
    ttft: np.ndarray | None = None
    tpot: np.ndarray | None = None
    prompt_tokens: np.ndarray | None = None
    output_tokens: np.ndarray | None = None
    ttft_slo: float | None = None
    tpot_slo: float | None = None
    gen_sessions: int = 0
    gen_prefill_iterations: int = 0
    gen_decode_iterations: int = 0
    gen_tokens: int = 0
    gen_shed: int = 0
    # Infrastructure outages + graceful degradation (PR 10); all zero/None
    # when the features are off.
    #: Cold starts denied because an outage window was open.
    outage_denied: int = 0
    crashed_containers: int = 0
    #: Requests that re-entered the queue after their container crashed.
    crash_requeued: int = 0
    straggler_batches: int = 0
    #: Cold-start retries scheduled by the backoff policy during outages.
    cold_retries: int = 0
    cold_retry_exhausted: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_denied: int = 0
    #: Spend on hedge duplicates (already included in ``total_cost``).
    hedge_cost: float = 0.0
    #: Requests shed by the fleet brownout controller.
    brownout_shed: int = 0
    #: Batches served on a donor lane's container via fleet failover.
    failover_batches: int = 0
    #: Per-request masks: True where a hedge duplicate was dispatched /
    #: where the batch ran on a donor lane. None when the feature is off.
    hedged: np.ndarray | None = None
    failed_over: np.ndarray | None = None

    # ------------------------------------------------------------ request view
    @property
    def n_requests(self) -> int:
        return self.arrival_times.size

    @property
    def n_shed(self) -> int:
        return int(self.shed.sum())

    @property
    def n_served(self) -> int:
        return self.n_requests - self.n_shed

    def served_latencies(self) -> np.ndarray:
        """Latencies of the requests that were actually served."""
        return self.latencies[~self.shed]

    def p(self, percentile: float) -> float:
        lat = self.served_latencies()
        if lat.size == 0:
            return np.nan
        return float(np.percentile(lat, percentile))

    def vcr(self, sequence_length: int | None = None,
            percentile: float = 95.0) -> float:
        """SLO Violation Count Ratio over the served requests (Eq. 11)."""
        length = self.sequence_length if sequence_length is None else sequence_length
        return _vcr(self.served_latencies(), self.slo, length, percentile)

    # ------------------------------------------------------ generation view
    @property
    def is_generation(self) -> bool:
        """Whether this log came from a token-streaming run."""
        return self.ttft is not None

    def p_ttft(self, percentile: float) -> float:
        """TTFT percentile over the requests that actually ran (shed NaN
        excluded — pair with :meth:`ttft_attainment`, which charges them)."""
        if self.ttft is None:
            raise ValueError("not a generation log: no TTFT was recorded")
        return _nan_percentile(self.ttft, percentile)

    def p_tpot(self, percentile: float) -> float:
        """TPOT percentile over requests that decoded at least one token."""
        if self.tpot is None:
            raise ValueError("not a generation log: no TPOT was recorded")
        return _nan_percentile(self.tpot, percentile)

    def ttft_attainment(self) -> float:
        """Fraction of *all* requests whose TTFT met the SLO; shed requests
        (NaN TTFT) count as misses. NaN on an empty log."""
        if self.ttft is None:
            raise ValueError("not a generation log: no TTFT was recorded")
        slo = self.ttft_slo if self.ttft_slo is not None else self.slo
        return _slo_attainment(self.ttft, slo)

    def goodput(self, duration: float | None = None) -> float:
        """Requests/sec that met their SLO — the streaming headline metric.

        Generation runs judge TTFT against ``ttft_slo`` (and decode pace
        against ``tpot_slo`` when set); request-level runs judge end-to-end
        latency against ``slo``. Shed requests count as misses either way.
        ``duration`` defaults to the arrival span; a log with fewer than
        two arrivals has no span and returns NaN unless one is given.
        """
        if duration is None:
            if self.n_requests < 2:
                return float("nan")
            duration = float(self.arrival_times.max() - self.arrival_times.min())
            if duration <= 0:
                return float("nan")
        if self.ttft is not None:
            slo = self.ttft_slo if self.ttft_slo is not None else self.slo
            return _generation_goodput(self.ttft, slo, duration,
                                       tpot=self.tpot,
                                       tpot_slo=self.tpot_slo)
        return _goodput(self.latencies, self.slo, duration)

    # ------------------------------------------------------------- cost & pool
    @property
    def total_cost(self) -> float:
        return float(self.batch_costs.sum())

    @property
    def cost_per_request(self) -> float:
        return self.total_cost / self.n_served if self.n_served else np.nan

    @property
    def total_cost_with_prewarm(self) -> float:
        """Request-path spend plus speculative provisioning spend — the
        number the prewarming trade-off must be judged on."""
        return self.total_cost + self.prewarm_cost

    @property
    def cold_start_rate(self) -> float:
        total = self.cold_starts + self.warm_starts
        return self.cold_starts / total if total else 0.0

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_requests if self.n_requests else 0.0

    @property
    def mean_decision_time(self) -> float:
        times = [d.decision_time for d in self.decisions]
        return float(np.mean(times)) if times else 0.0

    @property
    def degraded_decisions(self) -> int:
        return sum(1 for d in self.decisions if d.degraded)

    # ------------------------------------------------------------- conversion
    def to_experiment_log(
        self,
        segment_duration: float,
        t_start: float = 0.0,
        first_segment: int = 0,
    ) -> ExperimentLog:
        """Re-bin the run into segments for :mod:`repro.evaluation`.

        Served requests land in the segment of their *arrival*, batch costs
        in the segment of their *dispatch* (billing follows execution), and
        decisions in the segment they were taken — so segment rows of a live
        run line up with the offline harness's per-segment scorecard.
        """
        if segment_duration <= 0:
            raise ValueError("segment_duration must be > 0")
        log = ExperimentLog(
            name=self.name, trace=self.trace, slo=self.slo,
            sequence_length=self.sequence_length,
        )
        if self.n_requests == 0:
            return log
        horizon = float(
            max(self.arrival_times.max(),
                self.dispatch_times.max() if self.dispatch_times.size else -np.inf)
        )
        n_segments = int(np.floor((horizon - t_start) / segment_duration)) + 1
        req_seg = np.floor(
            (self.arrival_times - t_start) / segment_duration
        ).astype(int)
        batch_seg = np.floor(
            (self.dispatch_times - t_start) / segment_duration
        ).astype(int)
        served = ~self.shed
        for k in range(n_segments):
            in_seg = req_seg == k
            decisions = [
                d for d in self.decisions
                if t_start + k * segment_duration
                <= d.time < t_start + (k + 1) * segment_duration
            ]
            log.outcomes.append(SegmentOutcome(
                segment=first_segment + k,
                configs=tuple(d.config for d in decisions),
                latencies=self.latencies[in_seg & served],
                total_cost=float(self.batch_costs[batch_seg == k].sum()),
                n_requests=int(in_seg.sum()),
                decision_times=tuple(d.decision_time for d in decisions),
                sequence_length=self.sequence_length,
                n_retries=(
                    int(self.batch_retries[batch_seg == k].sum())
                    if self.batch_retries.size else 0
                ),
                n_failed=int((in_seg & served & self.failed).sum()),
                degraded_decisions=sum(1 for d in decisions if d.degraded),
            ))
        return log
