"""Live serving runtime: a deterministic discrete-event engine.

:mod:`repro.serving` drives the repo's existing components — the online
:class:`~repro.batching.buffer.BatchingBuffer`, the
:class:`~repro.serverless.platform.ServerlessPlatform` (faults included),
and any ``Chooser`` — as one live system with warm-pool keep-alive, deploy
lag, admission control, and drift-triggered re-decisions. With all of those
turned off it reproduces :func:`repro.batching.simulator.simulate`
bit-for-bit; see :mod:`repro.serving.engine`.

PR 5 adds the reliability layer: crash-safe checkpoint/restore with an
event journal (:mod:`repro.serving.checkpoint`), an SLO circuit breaker
around the learned controller (:mod:`repro.serving.guardrail`), and the
chaos harness that proves kill-and-restore is bit-identical
(:mod:`repro.serving.chaos`).

PR 6 generalizes the engine into a fleet: grouped config dataclasses
(:mod:`repro.serving.config`), multi-endpoint serving under a shared
container budget with an SLO-aware cross-tenant scheduler
(:mod:`repro.serving.fleet`), and a validated JSON fleet-config loader
(:mod:`repro.serving.fleet_config`).

PR 8 adds predictive warm-pool prewarming
(:mod:`repro.serving.prewarm`): a periodic policy forecasts the
near-future arrival rate from the fitted arrival models and provisions or
retires warm containers ahead of demand, with an oracle upper bound for
honest evaluation.

PR 9 adds the token-streaming generation workload: a prefill/decode
service model (:mod:`repro.serverless.generation`), iteration-level
continuous batching (:mod:`repro.batching.continuous`) wired into the
engine via :class:`~repro.serving.config.GenerationConfig`, goodput and
TTFT/TPOT SLOs on the log, and a validated JSON loader
(:mod:`repro.serving.generation`).

PR 10 adds correlated infrastructure faults and the graceful-degradation
stack: seeded outage windows, mid-batch container crashes, and straggler
containers (:mod:`repro.serverless.outages`) threaded through the engine
as first-class events, answered by cold-start retry with capped backoff,
percentile-delay request hedging, fleet-level brownout (priority
shedding), and queue failover to compatible endpoints
(:mod:`repro.serving.degrade`).
"""

from repro.serving.chaos import (
    SimulatedCrash,
    assert_serving_logs_equal,
    run_with_crashes,
)
from repro.serving.checkpoint import (
    CheckpointError,
    Journal,
    JournalReplayError,
    journal_path,
    read_snapshot,
    write_snapshot,
)
from repro.serving.config import (
    DriftConfig,
    GenerationConfig,
    PredictionDriftConfig,
    PrewarmConfig,
)
from repro.serving.degrade import (
    BrownoutConfig,
    DegradeConfig,
    FailoverConfig,
    HedgeConfig,
    OutageConfigError,
    load_outage_config,
    validate_fleet_degrade,
    validate_outage_config,
)
from repro.serving.engine import ServingEngine
from repro.serving.fleet import (
    EndpointSpec,
    FleetBudget,
    FleetEngine,
    FleetLog,
    FleetScheduler,
    split_by_shares,
)
from repro.serving.fleet_config import FleetConfigError, load_fleet_config
from repro.serving.generation import (
    GenerationConfigError,
    load_generation_config,
    validate_generation_config,
)
from repro.serving.guardrail import GuardrailConfig, SLOGuardrail
from repro.serving.log import ServingDecision, ServingLog
from repro.serving.pool import Lease, PoolStats, WarmPool, WarmPoolConfig
from repro.serving.prewarm import (
    EmpiricalRateForecaster,
    MAPRateForecaster,
    NHPPRateForecaster,
    OracleForecaster,
    PrewarmPlan,
    PrewarmPolicy,
    RateForecaster,
)

__all__ = [
    "BrownoutConfig",
    "CheckpointError",
    "DegradeConfig",
    "DriftConfig",
    "EmpiricalRateForecaster",
    "EndpointSpec",
    "FailoverConfig",
    "FleetBudget",
    "FleetConfigError",
    "FleetEngine",
    "FleetLog",
    "FleetScheduler",
    "GenerationConfig",
    "GenerationConfigError",
    "GuardrailConfig",
    "HedgeConfig",
    "OutageConfigError",
    "MAPRateForecaster",
    "NHPPRateForecaster",
    "OracleForecaster",
    "PredictionDriftConfig",
    "PrewarmConfig",
    "PrewarmPlan",
    "PrewarmPolicy",
    "Journal",
    "JournalReplayError",
    "Lease",
    "PoolStats",
    "RateForecaster",
    "SLOGuardrail",
    "ServingDecision",
    "ServingEngine",
    "ServingLog",
    "SimulatedCrash",
    "WarmPool",
    "WarmPoolConfig",
    "assert_serving_logs_equal",
    "journal_path",
    "load_fleet_config",
    "load_generation_config",
    "load_outage_config",
    "split_by_shares",
    "read_snapshot",
    "run_with_crashes",
    "validate_fleet_degrade",
    "validate_generation_config",
    "validate_outage_config",
    "write_snapshot",
]
