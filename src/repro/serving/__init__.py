"""Live serving runtime: a deterministic discrete-event engine.

:mod:`repro.serving` drives the repo's existing components — the online
:class:`~repro.batching.buffer.BatchingBuffer`, the
:class:`~repro.serverless.platform.ServerlessPlatform` (faults included),
and any ``Chooser`` — as one live system with warm-pool keep-alive, deploy
lag, admission control, and drift-triggered re-decisions. With all of those
turned off it reproduces :func:`repro.batching.simulator.simulate`
bit-for-bit; see :mod:`repro.serving.engine`.
"""

from repro.serving.engine import ServingEngine
from repro.serving.log import ServingDecision, ServingLog
from repro.serving.pool import Lease, PoolStats, WarmPool, WarmPoolConfig

__all__ = [
    "Lease",
    "PoolStats",
    "ServingDecision",
    "ServingEngine",
    "ServingLog",
    "WarmPool",
    "WarmPoolConfig",
]
