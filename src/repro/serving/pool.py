"""Warm-pool keep-alive model of serverless execution environments.

The offline simulator treats cold starts as a per-invocation coin flip
(:class:`~repro.serverless.service_profile.ColdStartModel.cold_probability`).
Real platforms behave differently — and DeepServe-style measurements show
the difference dominates tail latency at scale: a container that finishes an
invocation stays *warm* for a keep-alive window, and the next invocation is
cold only when no warm container is available. This module models exactly
that state:

* an invocation that finds a warm container of its memory tier starts
  immediately (no cold delay);
* otherwise a new container is provisioned — a **cold start** whose delay is
  the deterministic :meth:`ColdStartModel.delay` for the tier (zero when the
  platform has no cold-start model attached, which is what makes the offline
  simulator a special case of the serving runtime);
* containers idle longer than ``keep_alive_s`` are reclaimed;
* ``max_containers`` caps the pool (the account concurrency limit). A full
  pool with every container busy means the caller must queue or shed; an
  *idle* container of the wrong memory tier is evicted to make room, which
  is how a memory reconfiguration turns into a cold-start storm.

The pool is purely deterministic — no RNG — so the serving engine's
event-trace determinism reduces to event ordering.

Two implementations share the semantics:

* :class:`WarmPool` — the production pool. Expiry, MRU warm reuse, and
  capacity eviction all run off heaps with lazy invalidation (an idle
  min-heap keyed ``(free_at, container_id)`` doubling as expiry queue and
  eviction order, plus one MRU max-heap per memory tier), so every
  :meth:`~WarmPool.acquire` costs O(log n) instead of the three O(n)
  scans the linear version pays.
* :class:`ReferenceWarmPool` — the original linear-scan implementation,
  kept verbatim as the *executable specification*: the pool test suite
  drives both through identical operation sequences and asserts
  bit-identical leases, stats, and container sets, and the serving
  benchmark uses it as the "before" side of ``BENCH_serving.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.serverless.outages import OutageModel
from repro.serverless.service_profile import ColdStartModel


@dataclass(frozen=True)
class WarmPoolConfig:
    """Keep-alive and admission parameters of the container pool.

    * ``keep_alive_s`` — idle time after which a container is reclaimed
      (``inf`` = never, the offline simulator's implicit assumption);
    * ``max_containers`` — pool size cap (``None`` = unbounded, Lambda's
      idealized autoscaling);
    * ``max_queued_batches`` — admission control: batches allowed to wait
      for a container when the pool is exhausted. ``None`` queues without
      bound (the base platform's throttle semantics); ``0`` sheds
      immediately.
    """

    keep_alive_s: float = math.inf
    max_containers: int | None = None
    max_queued_batches: int | None = None

    def __post_init__(self) -> None:
        if self.keep_alive_s < 0:
            raise ValueError(f"keep_alive_s must be >= 0, got {self.keep_alive_s}")
        if self.max_containers is not None and self.max_containers < 1:
            raise ValueError("max_containers must be >= 1 or None")
        if self.max_queued_batches is not None and self.max_queued_batches < 0:
            raise ValueError("max_queued_batches must be >= 0 or None")


@dataclass
class _Container:
    """One execution environment: its tier and when it last went idle."""

    container_id: int
    memory_mb: float
    free_at: float  # inf while busy; else the time it became idle


@dataclass
class PoolStats:
    """Lifetime counters the serving log reports.

    ``crashed`` and ``outage_denied`` (PR 10) default to 0 as class
    attributes, so stats objects pickled before the fields existed
    restore cleanly.
    """

    cold_starts: int = 0
    warm_starts: int = 0
    expired: int = 0
    evicted: int = 0
    prewarmed: int = 0
    retired: int = 0
    crashed: int = 0
    outage_denied: int = 0

    @property
    def cold_start_rate(self) -> float:
        total = self.cold_starts + self.warm_starts
        return self.cold_starts / total if total else 0.0


@dataclass
class Lease:
    """A granted container: start immediately, pay ``cold_delay`` if cold."""

    container_id: int
    cold: bool
    cold_delay: float


class WarmPool:
    """Deterministic container pool with keep-alive reuse.

    The caller (the serving engine) drives it with three calls:
    :meth:`acquire` when a batch dispatches, :meth:`release` when its
    invocation completes, and reads :attr:`stats` for the scorecard.
    Expiry is evaluated lazily at acquire time — capacity only matters at
    that moment, so no timer events are needed and the pool stays
    event-order deterministic.

    Internals (the serving-loop speed pass): the linear implementation
    (:class:`ReferenceWarmPool`) rescans every container on each acquire —
    once for expiry, once for a warm match, once for an eviction victim —
    which is O(n) per dispatched batch and dominated big-pool runs. This
    pool keeps the same observable behaviour with heaps:

    * ``_idle_heap`` — min-heap of ``(free_at, container_id)`` entries, one
      per release. Ascending ``free_at`` is simultaneously the expiry order
      (oldest idle first) and the reference eviction order
      (``min(idle, key=(free_at, container_id))``).
    * ``_warm_heaps[memory_mb]`` — per-tier max-heap on
      ``(free_at, container_id)`` (stored negated), mirroring the
      reference's MRU pick ``max(warm, key=(free_at, container_id))``.

    Entries are invalidated lazily: an entry is live only while the
    container still exists *and* still has the recorded ``free_at`` (an
    acquire resets ``free_at`` to ``inf``, orphaning every older entry).
    A container re-released at an identical timestamp re-creates an equal
    key, which selects identically — so lazy invalidation never changes a
    decision, only skips dead weight. Bit-identity with the reference is
    pinned by ``tests/serving/test_pool_equivalence.py``.
    """

    def __init__(
        self,
        config: WarmPoolConfig | None = None,
        cold_start: ColdStartModel | None = None,
        outage: OutageModel | None = None,
    ) -> None:
        self.config = config if config is not None else WarmPoolConfig()
        self.cold_start = cold_start
        self.stats = PoolStats()
        # Outage windows deny *provisioning* only: warm reuse keeps
        # working, cold starts (and prewarming) fail capacity-unavailable.
        # A model without windows is normalized away, so the window-free
        # crash/straggler configs add no per-acquire work here.
        self.outage = outage if outage is not None and outage.windows else None
        self._containers: dict[int, _Container] = {}
        self._next_id = 0
        self._idle_heap: list[tuple[float, int]] = []
        self._warm_heaps: dict[float, list[tuple[float, int]]] = {}

    # ------------------------------------------------------------- inspection
    def cold_delay(self, memory_mb: float) -> float:
        """Deterministic provisioning delay for a cold start at this tier."""
        if self.cold_start is None:
            return 0.0
        return float(self.cold_start.delay(memory_mb))

    def live_containers(self, now: float, memory_mb: float | None = None) -> int:
        """Containers currently busy or within their keep-alive window
        (optionally of one memory tier).

        Pure inspection: containers past their keep-alive are *counted out*
        but not reclaimed, so a prewarmer (or any observer) polling off the
        event clock cannot mutate pool state. Reclamation still happens
        lazily inside :meth:`acquire`/:meth:`prewarm`/:meth:`retire_idle`,
        where ``now`` is an event timestamp.
        """
        keep = self.config.keep_alive_s
        return sum(
            1
            for c in self._containers.values()
            if not (c.free_at <= now and now - c.free_at > keep)
            and (memory_mb is None or c.memory_mb == memory_mb)
        )

    def warm_containers(self, now: float, memory_mb: float | None = None) -> int:
        """Idle-but-warm containers (optionally of one memory tier).

        Pure inspection, like :meth:`live_containers` — the expiry filter is
        applied in the count (the same ``now - free_at > keep`` float
        comparison the sweep uses) without sweeping anything out.
        """
        keep = self.config.keep_alive_s
        return sum(
            1
            for c in self._containers.values()
            if c.free_at <= now
            and not (now - c.free_at > keep)
            and (memory_mb is None or c.memory_mb == memory_mb)
        )

    # ------------------------------------------------------------------ flow
    def _expire(self, now: float) -> None:
        keep = self.config.keep_alive_s
        if math.isinf(keep):
            return
        # The heap yields idle containers oldest-first; ``now - free_at``
        # is monotone non-increasing along that order, so the first
        # still-alive entry ends the sweep. The comparison is kept as
        # ``now - free_at > keep`` (not a precomputed cutoff) so the
        # floating-point decision is bit-identical to the linear scan's.
        heap = self._idle_heap
        containers = self._containers
        while heap and now - heap[0][0] > keep:
            free_at, cid = heappop(heap)
            container = containers.get(cid)
            if container is not None and container.free_at == free_at:
                del containers[cid]
                self.stats.expired += 1

    def acquire(self, now: float, memory_mb: float) -> Lease | None:
        """Grant a container for a batch dispatching at ``now``.

        Warm reuse picks the most-recently-freed matching container
        (Lambda's observed MRU behaviour; also what keeps the rest of the
        pool coldest-first for expiry). Returns ``None`` when the pool is
        at ``max_containers`` with every container busy — the caller
        queues or sheds the batch.
        """
        self._expire(now)
        containers = self._containers
        warm_heap = self._warm_heaps.get(memory_mb)
        while warm_heap:
            neg_free, neg_cid = warm_heap[0]
            cid = -neg_cid
            container = containers.get(cid)
            if container is None or container.free_at != -neg_free:
                heappop(warm_heap)  # expired, evicted, or re-acquired
                continue
            # Idle containers always have free_at <= now (a release can
            # only stamp a past event time), so the MRU top is grantable.
            heappop(warm_heap)
            container.free_at = math.inf
            self.stats.warm_starts += 1
            return Lease(cid, cold=False, cold_delay=0.0)

        if self.outage is not None and self.outage.active(now):
            # Capacity crunch: no warm container matched and the platform
            # cannot provision (nor evict-to-provision) until the window
            # closes. The caller backs off, queues, or sheds.
            self.stats.outage_denied += 1
            return None

        cap = self.config.max_containers
        if cap is not None and len(containers) >= cap:
            # Evict an idle container of another tier to make room (a
            # redeploy); with every container busy the pool is exhausted.
            # The idle heap's ascending (free_at, id) order is exactly the
            # reference victim choice: the least-recently-freed idle
            # container, ties broken by container id.
            idle_heap = self._idle_heap
            victim_id = None
            while idle_heap:
                free_at, cid = idle_heap[0]
                container = containers.get(cid)
                if container is None or container.free_at != free_at:
                    heappop(idle_heap)
                    continue
                victim_id = cid
                break
            if victim_id is None:
                return None
            heappop(idle_heap)
            del containers[victim_id]
            self.stats.evicted += 1

        if not self._admit_cold(now):
            return None
        container = _Container(self._next_id, memory_mb, free_at=math.inf)
        self._next_id += 1
        containers[container.container_id] = container
        self.stats.cold_starts += 1
        return Lease(container.container_id, cold=True,
                     cold_delay=self.cold_delay(memory_mb))

    def _admit_cold(self, now: float) -> bool:
        """Hook: may a *new* container be provisioned at ``now``?

        The base pool only enforces its own ``max_containers`` cap (already
        checked by the caller); a fleet-shared budget subclasses this to
        charge the new container against a global account limit.
        """
        return True

    def kill(self, container_id: int) -> None:
        """Remove a crashed container immediately.

        The container leaves the pool (and any fleet-shared budget, which
        counts ``len(_containers)``) the moment it dies — not at its next
        keep-alive sweep — so replacement capacity can provision right
        away. A crashed container is mid-invocation (``free_at == inf``),
        so no idle/warm heap entry can refer to it; stale entries from
        earlier idle spells self-invalidate lazily as usual. Shared by
        both pool implementations.
        """
        if self._containers.pop(container_id, None) is not None:
            self.stats.crashed += 1

    def release(self, container_id: int, now: float) -> None:
        """Mark a container idle (its invocation — retries included —
        finished at ``now``); the keep-alive clock starts here."""
        container = self._containers.get(container_id)
        if container is None:  # reclaimed mid-flight cannot happen; be safe
            return
        container.free_at = now
        heappush(self._idle_heap, (now, container_id))
        warm_heap = self._warm_heaps.get(container.memory_mb)
        if warm_heap is None:
            warm_heap = self._warm_heaps[container.memory_mb] = []
        heappush(warm_heap, (-now, -container_id))

    # ------------------------------------------------------------- prewarming
    def prewarm(self, now: float, memory_mb: float, n: int) -> int:
        """Speculatively provision up to ``n`` warm containers at this tier.

        Each provisioned container pays its cold start *off the request
        path* (the caller accounts the provisioning cost) and enters the
        pool idle-warm at ``now`` — the keep-alive clock starts
        immediately, exactly as if an invocation had just released it.
        Prewarming respects ``max_containers`` and the fleet admission
        hook but never evicts: speculative capacity must not cannibalize
        live containers. Returns the number actually provisioned.
        """
        if n <= 0:
            return 0
        self._expire(now)
        if self.outage is not None and self.outage.active(now):
            # Speculative provisioning hits the same capacity wall as a
            # demand-driven cold start.
            self.stats.outage_denied += 1
            return 0
        containers = self._containers
        cap = self.config.max_containers
        provisioned = 0
        for _ in range(n):
            if cap is not None and len(containers) >= cap:
                break
            if not self._admit_cold(now):
                break
            container = _Container(self._next_id, memory_mb, free_at=math.inf)
            self._next_id += 1
            containers[container.container_id] = container
            # release() marks it idle at ``now`` — and is the one place the
            # production pool and the linear-scan reference differ on index
            # maintenance, so prewarm stays a single shared implementation.
            self.release(container.container_id, now)
            provisioned += 1
        self.stats.prewarmed += provisioned
        return provisioned

    def retire_idle(self, now: float, memory_mb: float, n: int) -> int:
        """Retire up to ``n`` idle containers of one tier, coldest-first.

        The inverse of :meth:`prewarm`: when the forecast says the tier is
        over-provisioned, idle containers are reclaimed ahead of their
        keep-alive expiry (stopping their idle-time billing). Busy
        containers are never touched. Victims follow the eviction order —
        least-recently-freed first, ties by container id. Orphaned heap
        entries self-invalidate lazily, as with expiry and eviction.
        Returns the number actually retired.
        """
        if n <= 0:
            return 0
        self._expire(now)
        idle = [
            c
            for c in self._containers.values()
            if c.free_at <= now and c.memory_mb == memory_mb
        ]
        idle.sort(key=lambda c: (c.free_at, c.container_id))
        for c in idle[:n]:
            del self._containers[c.container_id]
        retired = min(n, len(idle))
        self.stats.retired += retired
        return retired


class ReferenceWarmPool(WarmPool):
    """The original linear-scan pool, kept as the executable specification.

    Every acquire rescans the container dict (expiry sweep, warm-match
    scan, eviction-victim scan) exactly as the pre-speed-pass pool did.
    ``tests/serving/test_pool_equivalence.py`` drives this and
    :class:`WarmPool` through identical operation sequences and asserts
    bit-identical behaviour; ``benchmarks/test_perf_serving.py`` uses it
    as the "before" implementation when measuring the serving speedup.
    """

    def _expire(self, now: float) -> None:
        keep = self.config.keep_alive_s
        if math.isinf(keep):
            return
        dead = [
            cid
            for cid, c in self._containers.items()
            if c.free_at <= now and now - c.free_at > keep
        ]
        for cid in dead:
            del self._containers[cid]
        self.stats.expired += len(dead)

    def acquire(self, now: float, memory_mb: float) -> Lease | None:
        self._expire(now)
        warm = [
            c
            for c in self._containers.values()
            if c.free_at <= now and c.memory_mb == memory_mb
        ]
        if warm:
            chosen = max(warm, key=lambda c: (c.free_at, c.container_id))
            chosen.free_at = math.inf
            self.stats.warm_starts += 1
            return Lease(chosen.container_id, cold=False, cold_delay=0.0)

        if self.outage is not None and self.outage.active(now):
            self.stats.outage_denied += 1
            return None

        cap = self.config.max_containers
        if cap is not None and len(self._containers) >= cap:
            idle = [c for c in self._containers.values() if c.free_at <= now]
            if not idle:
                return None
            victim = min(idle, key=lambda c: (c.free_at, c.container_id))
            del self._containers[victim.container_id]
            self.stats.evicted += 1

        if not self._admit_cold(now):
            return None
        container = _Container(self._next_id, memory_mb, free_at=math.inf)
        self._next_id += 1
        self._containers[container.container_id] = container
        self.stats.cold_starts += 1
        return Lease(container.container_id, cold=True,
                     cold_delay=self.cold_delay(memory_mb))

    def release(self, container_id: int, now: float) -> None:
        container = self._containers.get(container_id)
        if container is None:
            return
        container.free_at = now
