"""Graceful-degradation policies and the ``--outages`` JSON schema.

The infrastructure-fault layer (:mod:`repro.serverless.outages`) makes the
platform *fail*: outage windows deny cold starts, containers crash
mid-batch, stragglers stretch service times. This module holds the
policies that make the serving layer *degrade gracefully* instead of
falling over:

* :class:`HedgeConfig` — request hedging: once a dispatched batch has run
  longer than a percentile of recently observed batch durations, dispatch
  a duplicate to a second container; the first completion wins, the
  loser's cost is still billed (speculative-execution economics);
* :class:`DegradeConfig` — the per-engine stack: an optional cold-start
  retry policy (capped exponential backoff, reusing
  :class:`~repro.serverless.faults.RetryPolicy` semantics and its fixed
  draw counts) plus optional hedging;
* :class:`BrownoutConfig` — fleet-level priority shedding: when the total
  queued backlog exceeds a budget, shed from the *lowest-priority*
  endpoint first instead of each lane shedding FIFO on its own;
* :class:`FailoverConfig` — fleet-level failover: a lane whose queue is
  backed up (outage-struck or budget-starved) drains batches to a
  compatible idle endpoint, billed to the donor.

The JSON loader mirrors the generation-config house style: one object for
``repro serve --outages outages.json`` (also embeddable per-endpoint in a
fleet document), every violation raising :class:`OutageConfigError` with
a path-qualified message, unknown keys rejected.

Example::

    {
      "windows": [{"start": 20.0, "end": 35.0}],
      "crash": {"rate": 0.002, "outage_rate": 0.02},
      "straggler": {"rate": 0.1, "slowdown": 3.0},
      "seed": 7,
      "degrade": {
        "backoff": {"max_attempts": 4, "base_backoff_s": 0.1,
                    "max_total_delay_s": 5.0},
        "hedge": {"percentile": 95.0, "multiplier": 1.5}
      }
    }

Scheduled windows may be replaced by a sampled schedule::

    {"random": {"horizon_s": 300.0, "mean_up_s": 60.0, "mean_down_s": 10.0}}
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

from repro.serverless.faults import RetryPolicy
from repro.serverless.outages import (
    CrashHazard,
    OutageModel,
    OutageWindow,
    StragglerModel,
    sample_outage_windows,
)

__all__ = [
    "BrownoutConfig",
    "DegradeConfig",
    "FailoverConfig",
    "HedgeConfig",
    "OutageConfigError",
    "load_outage_config",
    "validate_fleet_degrade",
    "validate_outage_config",
]


@dataclass(frozen=True)
class HedgeConfig:
    """Percentile-delay request hedging.

    A dispatched batch that is still in flight ``multiplier`` times the
    ``percentile``-th percentile of the last ``window`` observed batch
    durations after its start gets a duplicate dispatched to a fresh
    container. The first completion wins the latency; both invocations
    bill. Hedging stays dormant until ``min_observations`` durations have
    been seen — there is no percentile to judge against before that.
    """

    percentile: float = 95.0
    multiplier: float = 1.0
    min_observations: int = 16
    window: int = 128

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got {self.multiplier}")
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        if self.window < self.min_observations:
            raise ValueError(
                f"window must be >= min_observations, got {self.window}"
            )

    def fingerprint(self) -> tuple:
        return (self.percentile, self.multiplier, self.min_observations,
                self.window)


@dataclass(frozen=True)
class DegradeConfig:
    """One engine's graceful-degradation stack.

    * ``backoff`` — cold-start retry policy: a dispatch denied capacity
      during an outage retries after capped exponential backoff instead
      of parking in the queue (``RetryPolicy.max_total_delay_s`` bounds
      the cumulative wait); ``None`` keeps the queue-or-shed behaviour;
    * ``hedge`` — duplicate-dispatch hedging; ``None`` disables it.

    A config with neither set is treated exactly like an absent one.
    """

    backoff: RetryPolicy | None = None
    hedge: HedgeConfig | None = None

    @property
    def enabled(self) -> bool:
        return self.backoff is not None or self.hedge is not None

    def fingerprint(self) -> tuple:
        """Checkpoint identity; both members are frozen scalar dataclasses
        so they compare by value across processes."""
        return ("degrade", self.backoff,
                self.hedge.fingerprint() if self.hedge is not None else None)


@dataclass(frozen=True)
class BrownoutConfig:
    """Fleet-wide priority shedding under backlog pressure.

    When the summed queue depth across lanes exceeds ``max_total_queued``,
    the fleet sheds the most recently queued batch of the lowest-priority
    backlogged endpoint — repeatedly, until the backlog fits. High-priority
    tenants brown out last.
    """

    max_total_queued: int

    def __post_init__(self) -> None:
        if self.max_total_queued < 0:
            raise ValueError(
                f"max_total_queued must be >= 0, got {self.max_total_queued}"
            )

    def fingerprint(self) -> tuple:
        return ("brownout", self.max_total_queued)


@dataclass(frozen=True)
class FailoverConfig:
    """Fleet-wide queue failover to compatible endpoints.

    A lane whose queue holds at least ``min_queue`` batches drains them to
    endpoints of the *same memory tier* whose own queues are empty and
    whose pools have capacity, highest-priority owners first. The donor's
    pool hosts (and is billed for) the foreign batch; the owner keeps the
    latency and the fault model.
    """

    min_queue: int = 1

    def __post_init__(self) -> None:
        if self.min_queue < 1:
            raise ValueError(f"min_queue must be >= 1, got {self.min_queue}")

    def fingerprint(self) -> tuple:
        return ("failover", self.min_queue)


# --------------------------------------------------------------------------
# JSON schema (``repro serve --outages`` / fleet per-endpoint "outages")
# --------------------------------------------------------------------------


class OutageConfigError(ValueError):
    """An outage config failed validation; the message names the path."""


_OUTAGE_KEYS = {"windows", "random", "crash", "straggler", "seed", "degrade"}
_WINDOW_KEYS = {"start", "end"}
_RANDOM_KEYS = {"horizon_s", "mean_up_s", "mean_down_s", "t_start"}
_CRASH_KEYS = {"rate", "outage_rate"}
_STRAGGLER_KEYS = {"rate", "slowdown"}
_DEGRADE_KEYS = {"backoff", "hedge"}
_BACKOFF_KEYS = {"max_attempts", "base_backoff_s", "multiplier", "jitter",
                 "max_total_delay_s"}
_HEDGE_KEYS = {"percentile", "multiplier", "min_observations", "window"}
_FLEET_DEGRADE_KEYS = {"brownout", "failover"}
_BROWNOUT_KEYS = {"max_total_queued"}
_FAILOVER_KEYS = {"min_queue"}


def _fail(path: str, message: str) -> None:
    raise OutageConfigError(f"{path}: {message}")


def _check_keys(obj: dict, allowed: set, path: str) -> None:
    unknown = sorted(set(obj) - allowed)
    if unknown:
        _fail(path, f"unknown keys {unknown} (allowed: {sorted(allowed)})")


def _object(obj, path: str) -> dict:
    if not isinstance(obj, dict):
        _fail(path, f"must be an object, got {type(obj).__name__}")
    return obj


def _number(obj: dict, key: str, path: str, default=None, *,
            minimum: float | None = None, maximum: float | None = None,
            strict: bool = False, nullable: bool = False):
    if key not in obj:
        return default
    v = obj[key]
    if v is None and nullable:
        return None
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        _fail(f"{path}.{key}", f"must be a number, got {v!r}")
    v = float(v)
    if not math.isfinite(v):
        _fail(f"{path}.{key}", f"must be finite, got {v!r}")
    if minimum is not None:
        if strict and not v > minimum:
            _fail(f"{path}.{key}", f"must be > {minimum:g}, got {v:g}")
        if not strict and not v >= minimum:
            _fail(f"{path}.{key}", f"must be >= {minimum:g}, got {v:g}")
    if maximum is not None and v > maximum:
        _fail(f"{path}.{key}", f"must be <= {maximum:g}, got {v:g}")
    return v


def _integer(obj: dict, key: str, path: str, default=None, *,
             minimum: int | None = None, nullable: bool = False):
    if key not in obj:
        return default
    v = obj[key]
    if v is None and nullable:
        return None
    if isinstance(v, bool) or not isinstance(v, int):
        _fail(f"{path}.{key}", f"must be an integer, got {v!r}")
    if minimum is not None and v < minimum:
        _fail(f"{path}.{key}", f"must be >= {minimum}, got {v}")
    return v


def _windows(obj, path: str) -> tuple[OutageWindow, ...]:
    if not isinstance(obj, list):
        _fail(path, f"must be an array, got {type(obj).__name__}")
    windows = []
    for i, entry in enumerate(obj):
        wpath = f"{path}[{i}]"
        entry = _object(entry, wpath)
        _check_keys(entry, _WINDOW_KEYS, wpath)
        if "start" not in entry or "end" not in entry:
            _fail(wpath, "must set both start and end")
        start = _number(entry, "start", wpath, minimum=0.0)
        end = _number(entry, "end", wpath, minimum=0.0)
        if end <= start:
            _fail(f"{wpath}.end", f"must be > start ({start:g}), got {end:g}")
        windows.append(OutageWindow(start, end))
    return tuple(windows)


def _random_windows(obj, path: str, seed: int) -> tuple[OutageWindow, ...]:
    obj = _object(obj, path)
    _check_keys(obj, _RANDOM_KEYS, path)
    if "horizon_s" not in obj:
        _fail(path, "must set horizon_s")
    return sample_outage_windows(
        seed=seed,
        horizon_s=_number(obj, "horizon_s", path, minimum=0.0, strict=True),
        mean_up_s=_number(obj, "mean_up_s", path, default=60.0, minimum=0.0,
                          strict=True),
        mean_down_s=_number(obj, "mean_down_s", path, default=10.0,
                            minimum=0.0, strict=True),
        t_start=_number(obj, "t_start", path, default=0.0, minimum=0.0),
    )


def _crash(obj, path: str) -> CrashHazard:
    obj = _object(obj, path)
    _check_keys(obj, _CRASH_KEYS, path)
    return CrashHazard(
        rate=_number(obj, "rate", path, default=0.0, minimum=0.0,
                     maximum=1.0),
        outage_rate=_number(obj, "outage_rate", path, minimum=0.0,
                            maximum=1.0, nullable=True),
    )


def _straggler(obj, path: str) -> StragglerModel:
    obj = _object(obj, path)
    _check_keys(obj, _STRAGGLER_KEYS, path)
    return StragglerModel(
        rate=_number(obj, "rate", path, default=0.0, minimum=0.0, maximum=1.0),
        slowdown=_number(obj, "slowdown", path, default=3.0, minimum=1.0),
    )


def _backoff(obj, path: str) -> RetryPolicy:
    obj = _object(obj, path)
    _check_keys(obj, _BACKOFF_KEYS, path)
    return RetryPolicy(
        max_attempts=_integer(obj, "max_attempts", path, default=3, minimum=1),
        base_backoff_s=_number(obj, "base_backoff_s", path, default=0.05,
                               minimum=0.0),
        multiplier=_number(obj, "multiplier", path, default=2.0, minimum=1.0),
        jitter=_number(obj, "jitter", path, default=0.1, minimum=0.0),
        max_total_delay_s=_number(obj, "max_total_delay_s", path,
                                  minimum=0.0, strict=True, nullable=True),
    )


def _hedge(obj, path: str) -> HedgeConfig:
    obj = _object(obj, path)
    _check_keys(obj, _HEDGE_KEYS, path)
    min_obs = _integer(obj, "min_observations", path, default=16, minimum=1)
    window = _integer(obj, "window", path, default=128, minimum=1)
    if window < min_obs:
        _fail(f"{path}.window", f"must be >= min_observations ({min_obs})")
    return HedgeConfig(
        percentile=_number(obj, "percentile", path, default=95.0,
                           minimum=0.0, maximum=100.0, strict=True),
        multiplier=_number(obj, "multiplier", path, default=1.0, minimum=0.0,
                           strict=True),
        min_observations=min_obs,
        window=window,
    )


def _degrade(obj, path: str) -> DegradeConfig:
    obj = _object(obj, path)
    _check_keys(obj, _DEGRADE_KEYS, path)
    return DegradeConfig(
        backoff=(_backoff(obj["backoff"], f"{path}.backoff")
                 if obj.get("backoff") is not None else None),
        hedge=(_hedge(obj["hedge"], f"{path}.hedge")
               if obj.get("hedge") is not None else None),
    )


def validate_outage_config(
    doc, path: str = "outages",
) -> tuple[OutageModel, DegradeConfig | None]:
    """Validate a parsed outage object into ``(OutageModel, DegradeConfig)``.

    Raises :class:`OutageConfigError` with a path-qualified message on any
    violation; ``path`` prefixes the reported locations (the fleet passes
    ``endpoints[i].outages``). The second element is ``None`` when the
    document configures no degradation stack.
    """
    doc = _object(doc, path)
    _check_keys(doc, _OUTAGE_KEYS, path)
    if "windows" in doc and "random" in doc:
        _fail(path, "windows and random are mutually exclusive")
    seed = _integer(doc, "seed", path, default=0, minimum=0)
    if doc.get("random") is not None:
        windows = _random_windows(doc["random"], f"{path}.random", seed)
    elif doc.get("windows") is not None:
        windows = _windows(doc["windows"], f"{path}.windows")
    else:
        windows = ()
    try:
        model = OutageModel(
            windows=windows,
            crash=(_crash(doc["crash"], f"{path}.crash")
                   if doc.get("crash") is not None else None),
            straggler=(_straggler(doc["straggler"], f"{path}.straggler")
                       if doc.get("straggler") is not None else None),
            seed=seed,
        )
    except ValueError as exc:
        # Window ordering is the model's own cross-field check.
        raise OutageConfigError(f"{path}.windows: {exc}") from exc
    degrade = (
        _degrade(doc["degrade"], f"{path}.degrade")
        if doc.get("degrade") is not None else None
    )
    if degrade is not None and not degrade.enabled:
        degrade = None
    return model, degrade


def validate_fleet_degrade(
    doc, path: str = "degrade",
) -> tuple[BrownoutConfig | None, FailoverConfig | None]:
    """Validate a fleet document's top-level ``"degrade"`` object.

    The fleet-level stack holds the cross-lane policies only — brownout
    and failover; per-engine backoff/hedging lives in each endpoint's
    ``"outages"`` entry. Returns ``(brownout, failover)``.
    """
    doc = _object(doc, path)
    _check_keys(doc, _FLEET_DEGRADE_KEYS, path)
    brownout = failover = None
    if doc.get("brownout") is not None:
        obj = _object(doc["brownout"], f"{path}.brownout")
        _check_keys(obj, _BROWNOUT_KEYS, f"{path}.brownout")
        if "max_total_queued" not in obj:
            _fail(f"{path}.brownout", "must set max_total_queued")
        brownout = BrownoutConfig(
            max_total_queued=_integer(obj, "max_total_queued",
                                      f"{path}.brownout", minimum=0)
        )
    if doc.get("failover") is not None:
        obj = _object(doc["failover"], f"{path}.failover")
        _check_keys(obj, _FAILOVER_KEYS, f"{path}.failover")
        failover = FailoverConfig(
            min_queue=_integer(obj, "min_queue", f"{path}.failover",
                               default=1, minimum=1)
        )
    return brownout, failover


def load_outage_config(
    path: str | os.PathLike,
) -> tuple[OutageModel, DegradeConfig | None]:
    """Read and validate an outage JSON file.

    Raises :class:`OutageConfigError` with an actionable, path-qualified
    message on any problem — unreadable file, invalid JSON, or a schema
    violation.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise OutageConfigError(
            f"cannot read {os.fspath(path)}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise OutageConfigError(
            f"{os.fspath(path)} is not valid JSON: {exc}"
        ) from exc
    return validate_outage_config(doc)
