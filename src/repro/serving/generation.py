"""Validated JSON generation configuration (``repro serve --generation``).

One JSON object declares the token-streaming workload: the dispatcher
(size/timeout buffer or continuous batching), the admission knobs, the
TTFT/TPOT SLOs, the seeded length model, and the decode-side timing
coefficients. The same object appears in two places:

* ``repro serve --generation gen.json`` — the whole file is the object;
* a fleet document's per-endpoint ``"generation": {...}`` entry
  (:mod:`repro.serving.fleet_config` delegates here and re-labels the
  error as a :class:`~repro.serving.fleet_config.FleetConfigError`).

Validation follows the fleet-config house style: every violation raises
:class:`GenerationConfigError` naming the *path* of the offending field
(``generation.length_model.output_mean: must be >= 1``), unknown keys are
rejected, and the CLI converts the error into ``exit 2``.

The prefill side of the timing model is always the platform's calibrated
:class:`~repro.serverless.service_profile.ServiceProfile` — JSON cannot
name a fitted profile, the same reasoning that pins file-driven prewarming
to the empirical forecaster. The ``profile`` object only tunes the
decode-side coefficients.

Example::

    {
      "dispatcher": "continuous",
      "max_batch_tokens": 4096,
      "max_waiting": 64,
      "ttft_slo": 0.05,
      "tpot_slo": 0.01,
      "seed": 0,
      "length_model": {"prompt_mean": 128, "output_mean": 16},
      "profile": {"decode_time": 0.002, "decode_exponent": 0.5}
    }
"""

from __future__ import annotations

import json
import math
import os

from repro.serverless.generation import TokenLengthModel, TokenServiceProfile
from repro.serving.config import GENERATION_DISPATCHERS, GenerationConfig

__all__ = [
    "GenerationConfigError",
    "load_generation_config",
    "validate_generation_config",
]


class GenerationConfigError(ValueError):
    """A generation config failed validation; the message names the path."""


_GENERATION_KEYS = {
    "dispatcher", "max_batch_tokens", "max_waiting", "ttft_slo", "tpot_slo",
    "seed", "length_model", "profile",
}
_LENGTH_KEYS = {"prompt_mean", "prompt_max", "output_mean", "output_max"}
_PROFILE_KEYS = {"decode_time", "decode_exponent", "decode_memory_dampening"}


def _fail(path: str, message: str) -> None:
    raise GenerationConfigError(f"{path}: {message}")


def _check_keys(obj: dict, allowed: set, path: str) -> None:
    unknown = sorted(set(obj) - allowed)
    if unknown:
        _fail(path, f"unknown keys {unknown} (allowed: {sorted(allowed)})")


def _number(obj: dict, key: str, path: str, default=None, *,
            minimum: float | None = None, maximum: float | None = None,
            strict: bool = False, nullable: bool = False):
    if key not in obj:
        return default
    v = obj[key]
    if v is None and nullable:
        return None
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        _fail(f"{path}.{key}", f"must be a number, got {v!r}")
    v = float(v)
    if not math.isfinite(v):
        _fail(f"{path}.{key}", f"must be finite, got {v!r}")
    if minimum is not None:
        if strict and not v > minimum:
            _fail(f"{path}.{key}", f"must be > {minimum:g}, got {v:g}")
        if not strict and not v >= minimum:
            _fail(f"{path}.{key}", f"must be >= {minimum:g}, got {v:g}")
    if maximum is not None and v > maximum:
        _fail(f"{path}.{key}", f"must be <= {maximum:g}, got {v:g}")
    return v


def _integer(obj: dict, key: str, path: str, default=None, *,
             minimum: int | None = None, nullable: bool = False):
    if key not in obj:
        return default
    v = obj[key]
    if v is None and nullable:
        return None
    if isinstance(v, bool) or not isinstance(v, int):
        _fail(f"{path}.{key}", f"must be an integer, got {v!r}")
    if minimum is not None and v < minimum:
        _fail(f"{path}.{key}", f"must be >= {minimum}, got {v}")
    return v


def _length_model(obj, path: str) -> TokenLengthModel:
    if not isinstance(obj, dict):
        _fail(path, f"must be an object, got {type(obj).__name__}")
    _check_keys(obj, _LENGTH_KEYS, path)
    prompt_mean = _number(obj, "prompt_mean", path, default=128.0, minimum=1.0)
    prompt_max = _integer(obj, "prompt_max", path, default=4096, minimum=1)
    output_mean = _number(obj, "output_mean", path, default=16.0, minimum=1.0)
    output_max = _integer(obj, "output_max", path, default=1024, minimum=1)
    # Cross-field checks before construction: the dataclass raises its own
    # (pathless) ValueError for these, which would skip the path label.
    if prompt_mean > prompt_max:
        _fail(f"{path}.prompt_mean", f"must be <= prompt_max ({prompt_max})")
    if output_mean > output_max:
        _fail(f"{path}.output_mean", f"must be <= output_max ({output_max})")
    return TokenLengthModel(
        prompt_mean=prompt_mean, prompt_max=prompt_max,
        output_mean=output_mean, output_max=output_max,
    )


def _profile(obj, path: str) -> TokenServiceProfile:
    if not isinstance(obj, dict):
        _fail(path, f"must be an object, got {type(obj).__name__}")
    _check_keys(obj, _PROFILE_KEYS, path)
    return TokenServiceProfile(
        decode_time=_number(obj, "decode_time", path, default=0.002,
                            minimum=0.0),
        decode_exponent=_number(obj, "decode_exponent", path, default=0.5,
                                minimum=0.0, maximum=1.0, strict=True),
        decode_memory_dampening=_number(obj, "decode_memory_dampening", path,
                                        default=0.5, minimum=0.0, maximum=1.0),
    )


def validate_generation_config(doc, path: str = "generation") -> GenerationConfig:
    """Validate a parsed generation object into a :class:`GenerationConfig`.

    Raises :class:`GenerationConfigError` with a path-qualified message on
    any violation; ``path`` prefixes the reported locations (the fleet
    passes ``endpoints[i].generation``).
    """
    if not isinstance(doc, dict):
        _fail(path, f"must be a JSON object, got {type(doc).__name__}")
    _check_keys(doc, _GENERATION_KEYS, path)
    dispatcher = doc.get("dispatcher", "continuous")
    if dispatcher not in GENERATION_DISPATCHERS:
        _fail(f"{path}.dispatcher",
              f"must be one of {list(GENERATION_DISPATCHERS)}, "
              f"got {dispatcher!r}")
    length_model = (
        _length_model(doc["length_model"], f"{path}.length_model")
        if doc.get("length_model") is not None else TokenLengthModel()
    )
    profile = (
        _profile(doc["profile"], f"{path}.profile")
        if doc.get("profile") is not None else TokenServiceProfile()
    )
    return GenerationConfig(
        token_profile=profile,
        length_model=length_model,
        dispatcher=dispatcher,
        max_batch_tokens=_integer(doc, "max_batch_tokens", path, minimum=1,
                                  nullable=True),
        max_waiting=_integer(doc, "max_waiting", path, minimum=0,
                             nullable=True),
        ttft_slo=_number(doc, "ttft_slo", path, minimum=0.0, strict=True,
                         nullable=True),
        tpot_slo=_number(doc, "tpot_slo", path, minimum=0.0, strict=True,
                         nullable=True),
        seed=_integer(doc, "seed", path, default=0, minimum=0),
    )


def load_generation_config(path: str | os.PathLike) -> GenerationConfig:
    """Read and validate a generation JSON file.

    Raises :class:`GenerationConfigError` with an actionable,
    path-qualified message on any problem — unreadable file, invalid
    JSON, or a schema violation.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise GenerationConfigError(
            f"cannot read {os.fspath(path)}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise GenerationConfigError(
            f"{os.fspath(path)} is not valid JSON: {exc}"
        ) from exc
    return validate_generation_config(doc)
