"""The discrete-event serving runtime (`repro serve`).

Everything else in the repo replays *fixed* segments offline; this engine
runs the same components — :class:`BatchingBuffer`,
:class:`ServerlessPlatform`, any ``Chooser`` — as a **live system** in which
arrivals, batch timeouts, invocation completions, controller decisions, and
reconfigurations interleave in simulated time on one event heap:

========================  ====================================================
event                     what happens
========================  ====================================================
``Arrival``               a request enters the buffer; may release batches
``BatchDispatch``         a buffer timeout fires (the (B, T) policy's timer)
``Completion``            an invocation finishes; its container goes warm and
                          the head of the admission queue starts
``DecisionTick``          the controller re-optimizes (periodic or
                          drift-triggered)
``Reconfigure``           a decided ``(M, B, T)`` takes effect after the
                          deploy lag; in-flight batches finish under the old
                          configuration
``RetrainComplete``       a drift-triggered fine-tune lands; the drift
                          envelope is refit on recent traffic
``PrewarmTick``           the predictive prewarmer forecasts the near-future
                          arrival rate and provisions/retires warm
                          containers ahead of demand
``GenStep``               a continuous-batching session reaches an iteration
                          boundary: finished decodes leave, waiting requests
                          join, the next prefill/decode step is planned
========================  ====================================================

The engine adds the state the offline path cannot express — a warm-pool
keep-alive model (:mod:`repro.serving.pool`), reconfiguration lag, and
admission control — while keeping the **equivalence property** that anchors
its correctness: with a static configuration, infinite keep-alive, zero
deploy lag, and no shedding, per-request latencies and per-batch costs match
:func:`repro.batching.simulator.simulate` bit-for-bit (with and without a
concurrency limit). The offline simulator is a special case of the runtime.

Determinism: the heap orders events by ``(time, priority, sequence)``; the
pool draws no randomness; fault draws use one fixed-draw-count child
generator per dispatched batch (``platform.spawn_rng(batch_index)``, the
discipline of :mod:`repro.serverless.faults`), so two runs with the same
seed produce identical event traces and :class:`ServingLog`\\ s.

Crash safety (PR 5): the entire mutable state of a run lives in one
picklable :class:`_RunState`, so the engine can snapshot itself at any
event boundary (:mod:`repro.serving.checkpoint`) and
:meth:`ServingEngine.restore` continues a killed run **bit-identically** to
one that never crashed — the determinism property above is what makes the
resumed event stream exact, and the journal-replay check enforces it. An
optional SLO guardrail (:mod:`repro.serving.guardrail`) watches completed
latencies and circuit-breaks to a safe configuration when the learned
controller's predictions go wrong at runtime. Both features are off by
default, and when off every output is bit-identical to the pre-checkpoint
build.
"""

from __future__ import annotations

import os
import pickle
import sys
import warnings
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable

import numpy as np

from repro.batching.buffer import Batch, BatchingBuffer
from repro.batching.config import BatchConfig
from repro.batching.continuous import ContinuousSession, GenRequest
from repro.core.drift import WorkloadDriftDetector, prediction_drift
from repro.core.types import Decision
from repro.evaluation.harness import Chooser, _resolve_sequence_length
from repro.serverless.faults import inject_faults
from repro.serverless.outages import OutageModel
from repro.serverless.platform import ServerlessPlatform
from repro.serving.config import (
    DriftConfig,
    GenerationConfig,
    PredictionDriftConfig,
    PrewarmConfig,
)
from repro.serving.checkpoint import (
    CheckpointError,
    Journal,
    JournalReplayError,
    SimulatedCrash,
    journal_path,
    jsonable,
    read_snapshot,
    write_snapshot,
)
from repro.serving.degrade import DegradeConfig
from repro.serving.guardrail import OPEN, GuardrailConfig, SLOGuardrail
from repro.serving.log import BatchColumns, ServingDecision, ServingLog
from repro.serving.pool import WarmPool, WarmPoolConfig
from repro.serving.prewarm import PrewarmPolicy
from repro.telemetry.events import (
    CheckpointEvent,
    DriftEvent,
    GuardrailEvent,
    ReconfigureEvent,
    ShedEvent,
)
from repro.telemetry.metrics import get_registry
from repro.telemetry.timing import NULL_TIMERS, StageTimers, stage_timers
from repro.utils.validation import check_sorted

# Heap tie-break priorities: completions free containers before anything
# else at the same instant; reconfigurations land before the arrivals of
# that instant; arrivals join a batch whose deadline falls on their own
# timestamp (closed-interval semantics), so they precede the timer.
_P_COMPLETION = 0
_P_RECONFIGURE = 1
_P_ARRIVAL = 2
_P_TIMER = 3
_P_DECISION = 4
_P_RETRAIN = 5
_P_PREWARM = 6
_P_GENSTEP = 7
# PR 10 (outages & degradation): a crash vacates its container like a
# completion, so it ranks with completions; cold-start retries and hedge
# checks are background work that defers to everything else at an instant.
_P_CRASH = _P_COMPLETION
_P_COLD_RETRY = 8
_P_HEDGE = 9

# Event-kind strings, interned once: every heap entry carries the same
# string object, so the dispatch chain's ``==`` checks short-circuit on
# identity instead of comparing characters. (Plain equality is still the
# semantics — a heap restored from a pickle compares by value and stays
# correct, just without the fast path.)
_K_ARRIVAL = sys.intern("arrival")
_K_COMPLETION = sys.intern("completion")
_K_TIMER = sys.intern("timer")
_K_RECONFIGURE = sys.intern("reconfigure")
_K_DECISION = sys.intern("decision")
_K_RETRAIN = sys.intern("retrain")
_K_PREWARM = sys.intern("prewarm")
_K_GENSTEP = sys.intern("genstep")
_K_CRASH = sys.intern("crash")
_K_COLD_RETRY = sys.intern("cold_retry")
_K_HEDGE = sys.intern("hedge")

_INF = float("inf")

#: Flat keyword argument -> grouped-config field name for the shim.
_FLAT_DRIFT_KWARGS = {
    "drift_detector": "detector",
    "drift_window": "window",
    "drift_check_every": "check_every",
    "drift_cooldown_s": "cooldown_s",
    "retrain_delay_s": "retrain_delay_s",
    "on_retrain": "on_retrain",
}
_FLAT_PREDICTION_KWARGS = {
    "prediction_baseline_error": "baseline_error",
    "prediction_tolerance": "tolerance",
    "prediction_min_samples": "min_samples",
}


@dataclass
class _RunState:
    """The complete mutable state of one engine run.

    Everything here pickles, and everything mutable about a run lives here
    (the engine object itself only holds immutable policy) — that is the
    invariant checkpoint/restore rests on: snapshot this object and the run
    can continue in another process, bit-identically.
    """

    name: str
    trace_name: str
    ts: np.ndarray
    n: int
    buffer: BatchingBuffer
    pool: WarmPool
    heap: list
    seq: int
    queue: deque
    timers: set
    recent_ts: deque
    active: BatchConfig
    target: BatchConfig
    reconfig_gen: int = 0
    arrivals_seen: int = 0
    arrival_ptr: int = 0
    cooldown_until: float = -np.inf
    retrain_pending: bool = False
    pred_p95: float | None = None
    recent_latencies: list = field(default_factory=list)
    guardrail: SLOGuardrail | None = None
    clock: float = -np.inf
    events_processed: int = 0
    # Generation mode (None/absent unless a GenerationConfig is set, so a
    # defaults-off run's state — and old snapshots — are untouched).
    prompt_tokens: np.ndarray | None = None
    output_tokens: np.ndarray | None = None
    ttft: np.ndarray | None = None
    tpot: np.ndarray | None = None
    gen_queue: deque | None = None
    gen_sessions: dict | None = None
    gen_session_meta: dict | None = None
    # Infrastructure faults & degradation (PR 10); None/absent unless an
    # OutageModel/DegradeConfig needs them, so a defaults-off run's state —
    # and old snapshots — are untouched.
    inflight: dict | None = None
    hedge_obs: deque | None = None
    hedged: np.ndarray | None = None
    failed_over: np.ndarray | None = None
    # Outputs.
    latencies: np.ndarray = None
    shed: np.ndarray = None
    failed: np.ndarray = None
    batches: BatchColumns = field(default_factory=BatchColumns)
    decisions: list = field(default_factory=list)
    trace: list | None = None
    counters: dict = field(default_factory=dict)


@dataclass
class _RunContext:
    """Transient per-drive plumbing that must NOT be checkpointed:
    the live telemetry registry, the open journal handle, the snapshot
    cadence, the chaos hook, the journal-replay expectation, the stage
    timers, and the service/cost memo caches (pure-function caches — a
    restore rebuilds them from scratch with identical values)."""

    registry: object
    journal: Journal | None = None
    snapshot_path: str | None = None
    checkpoint_every: int = 256
    crash_after: int | None = None
    replay_expect: list | None = None
    replay_pos: int = 0
    timers: StageTimers = NULL_TIMERS
    #: ``(memory_mb, size) -> service_time`` (fault path: cost is drawn).
    service_cache: dict = field(default_factory=dict)
    #: ``(memory_mb, size, cold_delay) -> (service_time, cost)``.
    cost_cache: dict = field(default_factory=dict)
    #: ``container_id -> straggler slowdown`` — a pure function of the
    #: outage model's seed and the id, so restores rebuild it exactly.
    straggler_cache: dict = field(default_factory=dict)


class ServingEngine:
    """Seeded, deterministic online serving loop over an arrival stream.

    Parameters
    ----------
    config:
        The initial ``(M, B, T)`` deployment.
    platform:
        Service-time, pricing, cold-start, and fault models. The platform's
        ``concurrency_limit`` becomes the pool's ``max_containers`` default;
        its queueing throttle itself is *not* used — the warm pool is the
        concurrency model here.
    chooser:
        Optional controller re-deciding at ``decision_interval_s`` and on
        drift triggers; ``None`` serves the static ``config`` forever.
    pool:
        Warm-pool keep-alive and admission parameters. The default is the
        offline simulator's implicit platform: infinite keep-alive,
        ``max_containers`` from the platform's concurrency limit, unbounded
        queueing (no shedding).
    deploy_delay_s:
        Lag between a decision and the new configuration taking effect.
    drift:
        :class:`~repro.serving.config.DriftConfig` grouping the workload
        drift trigger: the fitted :class:`WorkloadDriftDetector`, the check
        cadence/cooldown, and the optional delayed retrain. When a live
        window falls outside the training envelope, an out-of-band
        ``DecisionTick`` fires (§III-D's OOD trigger, run against live
        traffic). The default ``DriftConfig()`` carries no detector.
    prediction:
        :class:`~repro.serving.config.PredictionDriftConfig` enabling the
        second §III-D trigger via :func:`prediction_drift`: when the
        relative error between the active decision's predicted p95 and the
        observed p95 exceeds ``tolerance × baseline_error``, the controller
        re-decides. ``None`` disables it.
    guardrail:
        Optional :class:`GuardrailConfig` enabling the SLO circuit breaker:
        a sliding monitor over completed-request latencies that trips to a
        safe fallback configuration after ``k`` consecutive violation
        windows, suppresses learned reconfigurations while open, and
        half-open-probes the controller back in after a cooldown. ``None``
        (the default) changes nothing.
    prewarm:
        Optional :class:`~repro.serving.config.PrewarmConfig` enabling
        predictive warm-pool prewarming: a deterministic periodic
        ``PrewarmTick`` forecasts the near-future arrival rate
        (:mod:`repro.serving.prewarm`), sizes the active tier's warm
        target, and provisions or retires containers ahead of demand.
        ``None`` (the default) changes nothing — runs stay bit-identical
        to the purely reactive pool.
    generation:
        Optional :class:`~repro.serving.config.GenerationConfig` switching
        the workload to token-streaming generation: per-request
        ``(prompt, output)`` token lengths from the seeded length model,
        prefill/decode timing from the
        :class:`~repro.serverless.generation.TokenServiceProfile`, and the
        dispatcher it names — ``"buffer"`` keeps the size/timeout
        :class:`BatchingBuffer` (each batch holds its container for the
        longest decode), ``"continuous"`` runs iteration-level sessions
        where requests join and leave a running batch at token boundaries
        (:mod:`repro.batching.continuous`). The guardrail, when present,
        watches TTFT windows against ``ttft_slo``. ``None`` (the default)
        changes nothing — runs stay bit-identical to the request-level
        engine. Incompatible with active fault injection.
    outages:
        Optional :class:`~repro.serverless.outages.OutageModel` enabling
        the infrastructure-fault layer: scheduled outage windows during
        which the pool denies cold-start provisioning
        (capacity-unavailable), a per-batch container-crash hazard whose
        victims fail mid-batch and re-enter the queue, and a seeded
        straggler model stretching a slow container's service times.
        ``None`` (and a disabled model, which is treated identically)
        changes nothing — runs stay bit-identical to the fault-free tree.
        Incompatible with generation mode (like fault injection).
    degrade:
        Optional :class:`~repro.serving.degrade.DegradeConfig` enabling
        the graceful-degradation stack on top of the fault layer: a
        cold-start retry policy (capacity-denied dispatches back off with
        capped exponential delays instead of parking in the queue) and
        request hedging (a batch in flight past a percentile of recent
        batch durations gets a duplicate dispatch; first completion wins
        the latency, both bill). ``None`` changes nothing.
    metrics_prefix:
        Namespace for the engine's telemetry (counters/histograms). The
        default ``"serving"`` keeps the historical names; the fleet runs
        each endpoint under ``serving.<endpoint>`` so two endpoints never
        share a counter.

    The pre-PR-6 flat keyword arguments (``drift_detector``,
    ``drift_window``, ``drift_check_every``, ``drift_cooldown_s``,
    ``retrain_delay_s``, ``on_retrain``, ``prediction_baseline_error``,
    ``prediction_tolerance``, ``prediction_min_samples``) still work
    through a deprecation shim — they are folded into the grouped configs
    with a single :class:`DeprecationWarning` per call and zero behavior
    change. Mixing a grouped config with flat kwargs of the same group is
    ambiguous and raises ``ValueError``.
    """

    #: Fleet-failover wiring, set per lane by ``FleetEngine.run`` (the
    #: donor pools a foreign completion releases into). The base engine
    #: never fails over.
    _failover_enabled = False
    _donor_pools: list | None = None

    def __init__(
        self,
        config: BatchConfig,
        platform: ServerlessPlatform | None = None,
        chooser: Chooser | None = None,
        slo: float = 0.1,
        pool: WarmPoolConfig | None = None,
        deploy_delay_s: float = 0.0,
        decision_interval_s: float | None = None,
        history_tail: int = 4096,
        min_history: int = 32,
        drift: DriftConfig | None = None,
        prediction: PredictionDriftConfig | None = None,
        sequence_length: int | None = None,
        guardrail: GuardrailConfig | None = None,
        prewarm: PrewarmConfig | None = None,
        generation: GenerationConfig | None = None,
        outages: OutageModel | None = None,
        degrade: DegradeConfig | None = None,
        metrics_prefix: str = "serving",
        **deprecated_kwargs,
    ) -> None:
        drift, prediction = self._apply_deprecated_kwargs(
            drift, prediction, deprecated_kwargs
        )
        if slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        if deploy_delay_s < 0:
            raise ValueError(f"deploy_delay_s must be >= 0, got {deploy_delay_s}")
        if decision_interval_s is not None and decision_interval_s <= 0:
            raise ValueError("decision_interval_s must be > 0 or None")
        if history_tail < 1:
            raise ValueError(f"history_tail must be >= 1, got {history_tail}")
        if not metrics_prefix:
            raise ValueError("metrics_prefix must be non-empty")
        self.initial_config = config
        self.platform = platform if platform is not None else ServerlessPlatform()
        self.chooser = chooser
        self.slo = slo
        self.pool_config = (
            pool
            if pool is not None
            else WarmPoolConfig(max_containers=self.platform.concurrency_limit)
        )
        self.deploy_delay_s = deploy_delay_s
        self.decision_interval_s = decision_interval_s
        self.history_tail = history_tail
        self.min_history = min_history
        self.drift_config = drift if drift is not None else DriftConfig()
        self.prediction_config = prediction
        # Flat views of the grouped configs: the event loop and the
        # checkpoint fingerprint read these, so old checkpoints (written
        # before the grouped API) keep restoring.
        self.drift_detector = self.drift_config.detector
        self.drift_window = self.drift_config.window
        self.drift_check_every = self.drift_config.check_every
        self.drift_cooldown_s = self.drift_config.cooldown_s
        self.retrain_delay_s = self.drift_config.retrain_delay_s
        self.on_retrain = self.drift_config.on_retrain
        self.prediction_baseline_error = (
            prediction.baseline_error if prediction is not None else None
        )
        self.prediction_tolerance = (
            prediction.tolerance if prediction is not None else 2.0
        )
        self.prediction_min_samples = (
            prediction.min_samples if prediction is not None else 64
        )
        self.sequence_length = _resolve_sequence_length(chooser, sequence_length)
        self.guardrail_config = guardrail
        self.prewarm_config = prewarm
        self._prewarm_policy = (
            PrewarmPolicy(prewarm) if prewarm is not None else None
        )
        self.generation_config = generation
        # Disabled configs are normalized to None — "disabled" and "absent"
        # are one state, so fingerprints, state layout, and the defaults-off
        # bit-identity contract all collapse to the None checks below.
        self.outage_config = (
            outages if outages is not None and outages.enabled else None
        )
        self.degrade_config = (
            degrade if degrade is not None and degrade.enabled else None
        )
        if generation is not None and (
            self.outage_config is not None or self.degrade_config is not None
        ):
            # Crash/hedge draws are a function of the *batch index* with a
            # fixed draw count per batch; token-level sessions have no such
            # index discipline (same reasoning as fault injection below).
            raise ValueError(
                "generation mode does not support outages or degradation; "
                "drop the outages/degrade configs"
            )
        if generation is not None and self.platform.faults_active:
            # Fault draws are a function of the *batch index* with a fixed
            # draw count per batch; token-level sessions have no such index
            # discipline, so combining the two would silently break the
            # seeded-fault determinism contract. Refuse loudly instead.
            raise ValueError(
                "generation mode does not support fault injection; "
                "use a platform without active faults"
            )
        # Hoisted mode flags: the hot loops branch once on these instead of
        # re-deriving the dispatcher per event.
        self._gen_continuous = (
            generation is not None and generation.dispatcher == "continuous"
        )
        self._gen_buffer = (
            generation is not None and generation.dispatcher == "buffer"
        )
        # The SLO that defines goodput (and feeds the guardrail) in
        # generation mode is time-to-first-token, not end-to-end latency.
        self._gen_ttft_slo = (
            (generation.ttft_slo if generation.ttft_slo is not None else slo)
            if generation is not None else None
        )
        # Hoisted outage/degrade flags: the data plane branches once on
        # these per batch instead of unpacking the configs per event.
        oc = self.outage_config
        dc = self.degrade_config
        self._crash_hazard = (
            oc is not None and oc.crash is not None and oc.crash.enabled
        )
        self._straggler = (
            oc is not None and oc.straggler is not None
            and oc.straggler.enabled
        )
        self._outage_windows = oc is not None and bool(oc.windows)
        self._hedge = dc.hedge if dc is not None else None
        self._backoff = dc.backoff if dc is not None else None
        # _degrade_mode routes _start_batch through the fault-layer variant;
        # a windows-only model keeps the plain path (windows affect only
        # pool admission and the cold-start backoff).
        self._degrade_mode = (
            self._crash_hazard or self._straggler or self._hedge is not None
        )
        self.metrics_prefix = metrics_prefix
        # Hot-path flags hoisted out of the event loop: with neither drift
        # trigger configured the cadence check never fires (output-identical
        # — an unconfigured _check_drift is a no-op), and completion
        # latencies only accumulate when the prediction trigger reads them.
        self._drift_enabled = (
            self.drift_detector is not None
            or self.prediction_baseline_error is not None
        )
        self._track_latencies = self.prediction_baseline_error is not None

    @staticmethod
    def _apply_deprecated_kwargs(
        drift: DriftConfig | None,
        prediction: PredictionDriftConfig | None,
        kwargs: dict,
    ) -> tuple[DriftConfig | None, PredictionDriftConfig | None]:
        """Fold pre-PR-6 flat keyword arguments into the grouped configs.

        Emits exactly one :class:`DeprecationWarning` naming every flat
        kwarg used; unknown keyword arguments raise ``TypeError`` as a
        normal signature would.
        """
        unknown = set(kwargs) - set(_FLAT_DRIFT_KWARGS) - set(_FLAT_PREDICTION_KWARGS)
        if unknown:
            raise TypeError(
                f"ServingEngine got unexpected keyword arguments: "
                f"{sorted(unknown)}"
            )
        if not kwargs:
            return drift, prediction
        warnings.warn(
            "ServingEngine flat keyword arguments ("
            + ", ".join(sorted(kwargs))
            + ") are deprecated; pass drift=DriftConfig(...) / "
            "prediction=PredictionDriftConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        drift_flat = {
            field: kwargs[name]
            for name, field in _FLAT_DRIFT_KWARGS.items()
            if name in kwargs
        }
        pred_flat = {
            field: kwargs[name]
            for name, field in _FLAT_PREDICTION_KWARGS.items()
            if name in kwargs
        }
        if drift_flat:
            if drift is not None:
                raise ValueError(
                    "pass either drift=DriftConfig(...) or the flat drift_* "
                    "kwargs, not both"
                )
            drift = DriftConfig(**drift_flat)
        if pred_flat:
            if prediction is not None:
                raise ValueError(
                    "pass either prediction=PredictionDriftConfig(...) or "
                    "the flat prediction_* kwargs, not both"
                )
            baseline = pred_flat.pop("baseline_error", None)
            # Old semantics: the trigger is enabled iff a baseline error is
            # given; tolerance/min_samples alone configured a disabled
            # trigger and were (harmlessly) ignored.
            if baseline is not None:
                prediction = PredictionDriftConfig(baseline_error=baseline,
                                                   **pred_flat)
        return drift, prediction

    # ------------------------------------------------------------------- run
    def run(
        self,
        timestamps: np.ndarray,
        name: str = "serving",
        trace_name: str = "trace",
        history: np.ndarray | None = None,
        record_trace: bool = False,
        checkpoint_path: str | os.PathLike | None = None,
        checkpoint_every: int = 256,
        crash_after_events: int | None = None,
    ) -> ServingLog:
        """Serve ``timestamps`` (absolute, sorted) and return the log.

        ``history`` optionally supplies earlier arrival timestamps that seed
        the controller's observation window and the drift detector's live
        window without being served themselves.

        With ``checkpoint_path`` set, the run becomes crash-safe: the full
        state is snapshotted atomically every ``checkpoint_every`` processed
        events (plus once at the start), and every emitted event is appended
        to ``<checkpoint_path>.journal``. :meth:`restore` continues a killed
        run from those files, bit-identically. ``crash_after_events`` is the
        chaos-testing hook: the engine raises :class:`SimulatedCrash` after
        processing that many events, exactly as a process death at an event
        boundary would.
        """
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if crash_after_events is not None and crash_after_events < 1:
            raise ValueError("crash_after_events must be >= 1 or None")
        ts = check_sorted(np.asarray(timestamps, dtype=float), "timestamps")
        st = self._init_state(ts, name, trace_name, history, record_trace)
        ctx = _RunContext(
            registry=get_registry(),
            snapshot_path=(
                os.fspath(checkpoint_path) if checkpoint_path is not None else None
            ),
            checkpoint_every=checkpoint_every,
            crash_after=crash_after_events,
        )
        if ctx.snapshot_path is not None:
            ctx.journal = Journal(journal_path(ctx.snapshot_path)).open()
            # Event-0 snapshot: a crash before the first cadence boundary
            # must still be restorable.
            self._write_snapshot(st, ctx)
        try:
            return self._drive(st, ctx)
        finally:
            if ctx.journal is not None:
                ctx.journal.close()

    def _init_state(
        self,
        ts: np.ndarray,
        name: str,
        trace_name: str,
        history: np.ndarray | None,
        record_trace: bool,
    ) -> _RunState:
        n = ts.size
        recent_ts: deque = deque(maxlen=self.history_tail + 1)
        if history is not None:
            for t in np.asarray(history, dtype=float)[-(self.history_tail + 1):]:
                recent_ts.append(float(t))
        st = _RunState(
            name=name,
            trace_name=trace_name,
            ts=ts,
            n=n,
            buffer=BatchingBuffer(self.initial_config),
            pool=self._make_pool(),
            heap=[],
            seq=0,
            queue=deque(),
            timers=set(),
            recent_ts=recent_ts,
            active=self.initial_config,
            target=self.initial_config,
            latencies=np.full(n, np.nan),
            shed=np.zeros(n, dtype=bool),
            failed=np.zeros(n, dtype=bool),
            trace=[] if record_trace else None,
            counters={
                "reconfigurations": 0, "drift": 0, "pred_drift": 0,
                "retrains": 0, "shed_batches": 0, "n_retries": 0,
                "n_failed": 0, "guardrail_trips": 0, "guardrail_restores": 0,
                "guardrail_probes": 0, "guardrail_suppressed": 0,
                "checkpoints": 0,
            },
        )
        if self.guardrail_config is not None:
            # In generation mode the breaker watches TTFT windows: the
            # user-facing promise for streaming is first-token time, not
            # end-of-decode latency.
            st.guardrail = SLOGuardrail(
                config=self.guardrail_config,
                slo=(self._gen_ttft_slo if self.generation_config is not None
                     else self.slo),
            )
        gen = self.generation_config
        if gen is not None:
            # Like the prewarm counters: generation state exists only when
            # the feature is on, so a defaults-off run's state (and its
            # snapshots) match the request-level engine exactly.
            st.prompt_tokens, st.output_tokens = gen.length_model.sample(
                n, gen.seed
            )
            st.ttft = np.full(n, np.nan)
            st.tpot = np.full(n, np.nan)
            st.counters["gen_sessions"] = 0
            st.counters["gen_prefill_iterations"] = 0
            st.counters["gen_decode_iterations"] = 0
            st.counters["gen_tokens"] = 0
            st.counters["gen_shed"] = 0
            if self._gen_continuous:
                st.gen_queue = deque()
                st.gen_sessions = {}
                st.gen_session_meta = {}
        if self.outage_config is not None or self.degrade_config is not None:
            # Like the prewarm/generation counters: degradation state
            # exists only when the fault layer or the stack is on, so a
            # defaults-off run's state (and snapshots) are untouched.
            st.counters["crashed_containers"] = 0
            st.counters["crash_requeued"] = 0
            st.counters["straggler_batches"] = 0
            st.counters["cold_retries"] = 0
            st.counters["cold_retry_exhausted"] = 0
            st.counters["hedges"] = 0
            st.counters["hedge_wins"] = 0
            st.counters["hedge_denied"] = 0
            st.counters["hedge_cost"] = 0.0
        if self._crash_hazard or self._hedge is not None:
            # container_id -> (expected completion, Batch) of the primary
            # dispatch; a crash or hedge check looks its victim up here.
            st.inflight = {}
        if self._hedge is not None:
            st.hedge_obs = deque(maxlen=self._hedge.window)
            st.hedged = np.zeros(n, dtype=bool)
        if self._failover_enabled:
            st.failed_over = np.zeros(n, dtype=bool)
            st.counters["failover_batches"] = 0
        if n and self.chooser is not None and self.decision_interval_s:
            self._push(st, float(ts[0]) + self.decision_interval_s, _P_DECISION,
                       _K_DECISION, "interval")
        if n and self.prewarm_config is not None:
            # The prewarm counters exist only when the feature is on, so a
            # defaults-off run's state (and snapshots) match PR 7 exactly.
            st.counters["prewarm_ticks"] = 0
            st.counters["prewarm_cost"] = 0.0
            # First tick at the trace start: with warmup ``history`` seeding
            # recent_ts the forecaster can cover the opening burst front.
            self._push(st, float(ts[0]), _P_PREWARM, _K_PREWARM, None)
        return st

    def _make_pool(self) -> WarmPool:
        """Pool factory; the fleet overrides it to share a container budget."""
        return WarmPool(self.pool_config, self.platform.cold_start,
                        outage=self.outage_config)

    # --------------------------------------------------------------- restore
    def restore(
        self,
        path: str | os.PathLike,
        verify_journal: bool = True,
        crash_after_events: int | None = None,
    ) -> ServingLog:
        """Resume a checkpointed run and drive it to completion.

        The engine must be constructed with the same parameters as the one
        that wrote the checkpoint (a fingerprint mismatch raises
        :class:`CheckpointError`). The snapshot restores the run state, the
        chooser's internal state, the drift detector's envelope, and the
        platform's bit-generator state; the journal is truncated back to
        the snapshot boundary and — with ``verify_journal`` — the entries
        beyond it (events the crashed run emitted after its last snapshot)
        become a replay assertion: the resumed run must regenerate them
        verbatim, or :class:`JournalReplayError` is raised. Checkpointing
        continues to the same files at the cadence of the original run, so
        a restore can itself be crashed and restored (the chaos harness
        does exactly that via ``crash_after_events``).

        Because the engine is deterministic, the returned
        :class:`ServingLog` is bit-identical to the log of an uninterrupted
        run — that equivalence is this subsystem's keystone property.
        """
        payload = read_snapshot(path)
        theirs = payload.get("fingerprint", {})
        ours = self._fingerprint()
        mismatched = sorted(
            k for k in set(theirs) | set(ours) if theirs.get(k) != ours.get(k)
        )
        if mismatched:
            raise CheckpointError(
                f"checkpoint {os.fspath(path)!r} was written by a differently-"
                f"configured engine; mismatched parameters: {mismatched}"
            )
        st: _RunState = payload["state"]
        if payload.get("chooser") is not None:
            self.chooser = pickle.loads(payload["chooser"])
        if payload.get("detector") is not None and self.drift_detector is not None:
            self.drift_detector.set_state(payload["detector"])
        if payload.get("rng_state") is not None:
            self.platform._rng.bit_generator.state = payload["rng_state"]

        journal = Journal(journal_path(path))
        entries_on_disk = journal.read()
        keep = int(payload["journal_entries"])
        replay_expect = entries_on_disk[keep:] if verify_journal else None
        journal.open(truncate_to=keep)

        registry = get_registry()
        ctx = _RunContext(
            registry=registry,
            journal=journal,
            snapshot_path=os.fspath(path),
            checkpoint_every=int(payload.get("checkpoint_every", 256)),
            crash_after=crash_after_events,
            replay_expect=replay_expect,
        )
        if registry.enabled:
            registry.counter("checkpoint.restores").inc()
            if replay_expect:
                registry.counter("checkpoint.replayed_events").inc(
                    len(replay_expect)
                )
        try:
            return self._drive(st, ctx)
        finally:
            ctx.journal.close()

    def _fingerprint(self) -> dict:
        """Engine parameters a checkpoint must agree on to be resumable."""
        return {
            "initial_config": self.initial_config,
            "slo": self.slo,
            "pool": self.pool_config,
            "deploy_delay_s": self.deploy_delay_s,
            "decision_interval_s": self.decision_interval_s,
            "history_tail": self.history_tail,
            "min_history": self.min_history,
            "drift_window": self.drift_window,
            "drift_check_every": self.drift_check_every,
            "drift_cooldown_s": self.drift_cooldown_s,
            "retrain_delay_s": self.retrain_delay_s,
            "prediction_baseline_error": self.prediction_baseline_error,
            "prediction_tolerance": self.prediction_tolerance,
            "prediction_min_samples": self.prediction_min_samples,
            "sequence_length": self.sequence_length,
            "guardrail": self.guardrail_config,
            # Scalars only (the forecaster object would never compare equal
            # across processes — like the drift detector, it is restored by
            # constructing the engine identically). Disabled → None, which
            # is also what pre-prewarm checkpoints yield via .get(), so old
            # snapshots keep restoring.
            "prewarm": (
                self.prewarm_config.fingerprint()
                if self.prewarm_config is not None else None
            ),
            # Same contract as prewarm: disabled → None, matching what
            # pre-generation checkpoints yield via .get().
            "generation": (
                self.generation_config.fingerprint()
                if self.generation_config is not None else None
            ),
            # Same contract again: a disabled (= normalized-away) outage
            # model or degradation stack fingerprints as None, matching
            # what pre-PR-10 checkpoints yield via .get().
            "outages": (
                self.outage_config.fingerprint()
                if self.outage_config is not None else None
            ),
            "degrade": (
                self.degrade_config.fingerprint()
                if self.degrade_config is not None else None
            ),
            "platform_seed": self.platform.seed,
            "platform_faults": self.platform.faults,
            "platform_retry": self.platform.retry_policy,
            "platform_concurrency": self.platform.concurrency_limit,
        }

    def _write_snapshot(self, st: _RunState, ctx: _RunContext) -> None:
        try:
            chooser_blob = (
                pickle.dumps(self.chooser, protocol=pickle.HIGHEST_PROTOCOL)
                if self.chooser is not None else None
            )
        except Exception:
            # An unpicklable chooser degrades gracefully: the restore keeps
            # the engine's own chooser instance instead.
            chooser_blob = None
        ctx.journal.sync()  # the snapshot must never reference journal
        # entries the disk does not have
        write_snapshot(ctx.snapshot_path, {
            "fingerprint": self._fingerprint(),
            "state": st,
            "chooser": chooser_blob,
            "detector": (
                self.drift_detector.get_state()
                if self.drift_detector is not None else None
            ),
            "rng_state": self.platform._rng.bit_generator.state,
            "journal_entries": ctx.journal.entries,
            "checkpoint_every": ctx.checkpoint_every,
        })
        st.counters["checkpoints"] += 1
        registry = ctx.registry
        if registry.enabled:
            registry.counter("checkpoint.snapshots").inc()
            registry.record_event(CheckpointEvent(
                time=float(st.clock),
                events_processed=st.events_processed,
                journal_entries=ctx.journal.entries,
            ))

    # ------------------------------------------------------------ event loop
    def _drive(self, st: _RunState, ctx: _RunContext) -> ServingLog:
        if (
            ctx.journal is None
            and ctx.snapshot_path is None
            and ctx.crash_after is None
            and not ctx.registry.enabled
        ):
            # Nothing observes individual events: no journal entries, no
            # snapshot cadence, no chaos hook, no per-event telemetry. The
            # tight loop processes the same events in the same order and
            # its outputs are bit-identical — the checkpoint/chaos suites
            # pin that by comparing it against the stepwise path below.
            self._drive_fast(st, ctx)
            return self._finish(st)
        timers = ctx.timers
        if timers is NULL_TIMERS:
            timers = ctx.timers = stage_timers(f"{self.metrics_prefix}.perf")
        try:
            while self._step(st, ctx):
                st.events_processed += 1
                if (
                    ctx.snapshot_path is not None
                    and st.events_processed % ctx.checkpoint_every == 0
                ):
                    self._write_snapshot(st, ctx)
                if ctx.crash_after is not None and st.events_processed >= ctx.crash_after:
                    raise SimulatedCrash(
                        f"chaos hook: killed after {st.events_processed} events"
                    )
        finally:
            timers.flush()
        return self._finish(st)

    def _drive_fast(self, st: _RunState, ctx: _RunContext) -> None:
        """The uninstrumented hot loop: same events, same order, less work.

        Differences from driving :meth:`_step` in a loop — none of them
        observable in the outputs:

        * arrivals are consumed in **contiguous runs**: the heap head is
          read once per run and refreshed only after a handler actually
          pushed an event, instead of two tuple constructions and a heap
          peek for every single arrival;
        * timestamps come from one bulk ``ndarray.tolist()`` conversion
          instead of a ``float(st.ts[i])`` numpy-scalar unboxing each;
        * the ``("arrival", ...)`` trace tuple is only built when a trace
          is being recorded.

        Runs that checkpoint, journal, chaos-crash, or emit telemetry keep
        the stepwise loop: snapshots cut at exact event boundaries and the
        journal wants one entry per event.
        """
        ts = st.ts.tolist()
        n = st.n
        heap = st.heap
        buffer = st.buffer
        timers = st.timers
        recent_ts = st.recent_ts
        trace = st.trace
        drift_every = self.drift_check_every
        check_drift = self._drift_enabled
        continuous = self._gen_continuous
        events = st.events_processed
        while True:
            if heap:
                head = heap[0]
                head_time = head[0]
                head_prio = head[1]
            else:
                head_time = _INF
                head_prio = _P_ARRIVAL
            ptr = st.arrival_ptr
            while ptr < n:
                t = ts[ptr]
                if t > head_time or (t == head_time and head_prio < _P_ARRIVAL):
                    break
                st.clock = t
                st.arrival_ptr = ptr = ptr + 1
                st.arrivals_seen += 1
                recent_ts.append(t)
                if trace is not None:
                    trace.append(("arrival", t, ptr - 1))
                before = len(heap)
                if continuous:
                    # Token-streaming arrivals bypass the buffer: they wait
                    # in the generation queue and join a running session at
                    # its next iteration boundary.
                    self._gen_arrival(st, ctx, t, ptr - 1)
                else:
                    for batch in buffer.observe(t):
                        self._dispatch(st, ctx, batch, t)
                    deadline = buffer.next_deadline()
                    if deadline is not None and deadline not in timers:
                        timers.add(deadline)
                        heappush(heap, (deadline, _P_TIMER, st.seq, _K_TIMER,
                                        deadline))
                        st.seq += 1
                if check_drift and st.arrivals_seen % drift_every == 0:
                    self._check_drift(st, ctx, t)
                events += 1
                if len(heap) != before:
                    if heap:
                        head = heap[0]
                        head_time = head[0]
                        head_prio = head[1]
                    else:  # pragma: no cover - handlers only push
                        head_time = _INF
                        head_prio = _P_ARRIVAL
            if not heap:
                break
            item = heappop(heap)
            now = item[0]
            kind = item[3]
            st.clock = now
            if kind == _K_COMPLETION:
                self._on_completion(st, ctx, now, item[4])
            elif kind == _K_TIMER:
                timers.discard(item[4])
                for batch in buffer.poll(now):
                    self._dispatch(st, ctx, batch, now)
                self._arm_timer(st)
            elif kind == _K_RECONFIGURE:
                self._on_reconfigure(st, ctx, now, item[4])
            elif kind == _K_DECISION:
                self._on_decision(st, ctx, now, item[4])
            elif kind == _K_RETRAIN:
                self._on_retrain(st, ctx, now)
            elif kind == _K_PREWARM:
                self._on_prewarm(st, ctx, now)
            elif kind == _K_GENSTEP:
                self._on_gen_step(st, ctx, now, item[4])
            elif kind == _K_CRASH:
                self._on_crash(st, ctx, now, item[4])
            elif kind == _K_COLD_RETRY:
                self._on_cold_retry(st, ctx, now, item[4])
            elif kind == _K_HEDGE:
                self._on_hedge(st, ctx, now, item[4])
            events += 1
        st.events_processed = events

    def _next_event_key(self, st: _RunState) -> tuple[float, int] | None:
        """``(time, priority)`` of the event :meth:`_step` would process
        next, or ``None`` when the run is finished. The fleet merges lanes
        on this key, so it must rank exactly as ``_step`` chooses: on a
        tie the heap event wins (arrival priority is unique to arrivals,
        so ties never actually cross the two sources)."""
        arrival = (
            (float(st.ts[st.arrival_ptr]), _P_ARRIVAL)
            if st.arrival_ptr < st.n else None
        )
        head = (st.heap[0][0], st.heap[0][1]) if st.heap else None
        if arrival is None:
            return head
        if head is None or arrival < head:
            return arrival
        return head

    def _step(self, st: _RunState, ctx: _RunContext) -> bool:
        """Process exactly one event (arrival or heap pop); False when done.

        This is the stepwise (checkpointable, instrumentable) path; plain
        runs take :meth:`_drive_fast` instead. With ``ctx.timers`` enabled
        every event is accumulated into a ``serving.perf.*`` stage named
        after its kind — the disabled branch never touches the clock.
        """
        if st.arrival_ptr >= st.n and not st.heap:
            return False
        take_arrival = st.arrival_ptr < st.n and (
            not st.heap
            or (st.ts[st.arrival_ptr], _P_ARRIVAL) < (st.heap[0][0], st.heap[0][1])
        )
        timers = ctx.timers
        if take_arrival:
            if timers.enabled:
                with timers.stage(_K_ARRIVAL):
                    self._on_arrival(st, ctx)
            else:
                self._on_arrival(st, ctx)
            return True
        now, _priority, _seq, kind, payload = heappop(st.heap)
        st.clock = now
        if timers.enabled:
            with timers.stage(kind):
                self._handle_heap_event(st, ctx, now, kind, payload)
        else:
            self._handle_heap_event(st, ctx, now, kind, payload)
        return True

    def _on_arrival(self, st: _RunState, ctx: _RunContext) -> None:
        i = st.arrival_ptr
        now = float(st.ts[i])
        st.clock = now
        st.arrival_ptr += 1
        st.arrivals_seen += 1
        st.recent_ts.append(now)
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("arrival", now, i))
        registry = ctx.registry
        if registry.enabled:
            registry.counter(f"{self.metrics_prefix}.requests").inc()
        if self._gen_continuous:
            self._gen_arrival(st, ctx, now, i)
            if self._drift_enabled and st.arrivals_seen % self.drift_check_every == 0:
                self._check_drift(st, ctx, now)
            return
        released = st.buffer.observe(now)
        if released:
            timers = ctx.timers
            if timers.enabled:
                # Nested stage: dispatch time shows up inside "arrival"
                # and on its own row.
                with timers.stage("dispatch"):
                    for batch in released:
                        self._dispatch(st, ctx, batch, now)
            else:
                for batch in released:
                    self._dispatch(st, ctx, batch, now)
        self._arm_timer(st)
        if self._drift_enabled and st.arrivals_seen % self.drift_check_every == 0:
            self._check_drift(st, ctx, now)

    def _handle_heap_event(self, st: _RunState, ctx: _RunContext, now: float,
                           kind: str, payload) -> None:
        if kind == _K_COMPLETION:
            self._on_completion(st, ctx, now, payload)
        elif kind == _K_TIMER:
            st.timers.discard(payload)
            for batch in st.buffer.poll(now):
                self._dispatch(st, ctx, batch, now)
            self._arm_timer(st)
        elif kind == _K_RECONFIGURE:
            self._on_reconfigure(st, ctx, now, payload)
        elif kind == _K_DECISION:
            self._on_decision(st, ctx, now, payload)
        elif kind == _K_RETRAIN:
            self._on_retrain(st, ctx, now)
        elif kind == _K_PREWARM:
            self._on_prewarm(st, ctx, now)
        elif kind == _K_GENSTEP:
            self._on_gen_step(st, ctx, now, payload)
        elif kind == _K_CRASH:
            self._on_crash(st, ctx, now, payload)
        elif kind == _K_COLD_RETRY:
            self._on_cold_retry(st, ctx, now, payload)
        elif kind == _K_HEDGE:
            self._on_hedge(st, ctx, now, payload)

    # ------------------------------------------------------------- plumbing
    def _push(self, st: _RunState, time: float, priority: int, kind: str,
              payload) -> None:
        heappush(st.heap, (time, priority, st.seq, kind, payload))
        st.seq += 1

    def _emit(self, st: _RunState, ctx: _RunContext, event: tuple) -> None:
        """Record one event in the trace (opt-in) and the journal (when
        checkpointing), verifying journal replay on a restore."""
        if st.trace is not None:
            st.trace.append(event)
        if ctx.journal is not None:
            if (
                ctx.replay_expect is not None
                and ctx.replay_pos < len(ctx.replay_expect)
            ):
                expected = ctx.replay_expect[ctx.replay_pos]
                got = jsonable(event)
                if got != expected:
                    raise JournalReplayError(
                        f"resumed run diverged from the journal at entry "
                        f"{ctx.journal.entries}: expected {expected!r}, "
                        f"regenerated {got!r}"
                    )
                ctx.replay_pos += 1
            ctx.journal.append(event)

    def _arm_timer(self, st: _RunState) -> None:
        # After any observe/poll/reconfigure the head deadline is
        # strictly in the future, so a timer armed here never fires
        # late; the set dedupes repeat arming of the same deadline.
        deadline = st.buffer.next_deadline()
        if deadline is not None and deadline not in st.timers:
            st.timers.add(deadline)
            self._push(st, deadline, _P_TIMER, _K_TIMER, deadline)

    def _trigger_decision(self, st: _RunState, now: float, reason: str) -> None:
        self._push(st, now, _P_DECISION, _K_DECISION, reason)

    # ----------------------------------------------------------- data plane
    def _start_batch(self, st: _RunState, ctx: _RunContext, batch: Batch,
                     memory_mb: float, cold_delay: float, cold: bool,
                     container_id: int, start: float) -> None:
        if self._gen_buffer:
            self._start_batch_gen(st, ctx, batch, memory_mb, cold_delay,
                                  cold, container_id, start)
            return
        if self._degrade_mode:
            self._start_batch_outage(st, ctx, batch, memory_mb, cold_delay,
                                     cold, container_id, start)
            return
        size = batch.size
        if self.platform.faults_active:
            key = (memory_mb, size)
            service = ctx.service_cache.get(key)
            if service is None:
                service = float(
                    self.platform.profile.service_time(memory_mb, size)
                )
                ctx.service_cache[key] = service
            # Fixed-draw-count child generator per dispatched batch:
            # randomness is a function of the batch index, never of
            # event interleaving (repro.serverless.faults discipline).
            rng = self.platform.spawn_rng(len(st.batches))
            outcome = inject_faults(
                np.asarray([cold_delay + service]), memory_mb,
                self.platform.pricing,
                self.platform.faults, self.platform.retry_policy, rng,
            )
            fault_delay = float(outcome.fault_delays[0])
            cost = float(outcome.costs[0])
            retries = int(outcome.attempts[0]) - 1
            batch_failed = bool(outcome.failed[0])
        else:
            # service_time and invocation_cost are pure functions of the
            # key, so the memoized floats are the exact values a fresh
            # call would produce — bit-identity is free.
            key = (memory_mb, size, cold_delay)
            hit = ctx.cost_cache.get(key)
            if hit is None:
                service = float(
                    self.platform.profile.service_time(memory_mb, size)
                )
                cost = float(self.platform.pricing.invocation_cost(
                    memory_mb, cold_delay + service
                ))
                ctx.cost_cache[key] = (service, cost)
            else:
                service, cost = hit
            fault_delay = 0.0
            retries = 0
            batch_failed = False
        # Same association as BatchExecution.completion_times, so the
        # static-config equivalence is bitwise, not merely close.
        completion = start + cold_delay + service + fault_delay
        st.batches.append(batch.dispatch_time, start, size, cost, cold,
                          memory_mb, retries)
        if retries:
            st.counters["n_retries"] += retries
        i0 = batch.first_index
        stop = i0 + size
        st.latencies[i0:stop] = completion - batch.arrival_times
        if batch_failed:
            st.failed[i0:stop] = True
            st.counters["n_failed"] += size
        self._push(st, completion, _P_COMPLETION, _K_COMPLETION,
                   (container_id, i0, size))
        registry = ctx.registry
        if registry.enabled:
            registry.counter(f"{self.metrics_prefix}.batches").inc()
            registry.counter(
                f"{self.metrics_prefix}.cold_starts" if cold else f"{self.metrics_prefix}.warm_starts"
            ).inc()
            registry.histogram(f"{self.metrics_prefix}.queue_delay").observe(
                start - batch.dispatch_time
            )
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("start", start, container_id, size, cold,
                                 memory_mb, completion))

    def _straggler_factor(self, ctx: _RunContext, container_id: int) -> float:
        """Memoized per-container slowdown (1.0 when stragglers are off)."""
        if not self._straggler:
            return 1.0
        factor = ctx.straggler_cache.get(container_id)
        if factor is None:
            factor = self.outage_config.straggler_factor(container_id)
            ctx.straggler_cache[container_id] = factor
        return factor

    def _start_batch_outage(self, st: _RunState, ctx: _RunContext,
                            batch: Batch, memory_mb: float, cold_delay: float,
                            cold: bool, container_id: int,
                            start: float) -> None:
        """Request-level batch start under the infrastructure-fault layer.

        Semantics of :meth:`_start_batch` plus three hazards, each drawn
        with fixed counts from per-batch generator children so outcomes
        are a function of the batch row index, never of event order:

        * the container's straggler factor stretches the clean service
          time (drawn from ``(seed, container_id)``, not from the stream);
        * per-attempt request faults run on the stretched duration,
          exactly as on the plain fault path;
        * the crash hazard (child key ``(row, 1)``, two draws: the coin
          and the crash point) may kill the container partway through —
          the batch bills its partial run, its requests re-enter the
          queue at the crash, and no completion event is pushed.

        Non-crashed dispatches register in ``st.inflight`` and, with
        hedging on, schedule a hedge check at the percentile delay.
        """
        size = batch.size
        row = len(st.batches)
        key = (memory_mb, size)
        service = ctx.service_cache.get(key)
        if service is None:
            service = float(
                self.platform.profile.service_time(memory_mb, size)
            )
            ctx.service_cache[key] = service
        slowdown = self._straggler_factor(ctx, container_id)
        if slowdown != 1.0:
            st.counters["straggler_batches"] += 1
        eff_service = service * slowdown
        if self.platform.faults_active:
            rng = self.platform.spawn_rng(row)
            outcome = inject_faults(
                np.asarray([cold_delay + eff_service]), memory_mb,
                self.platform.pricing,
                self.platform.faults, self.platform.retry_policy, rng,
            )
            fault_delay = float(outcome.fault_delays[0])
            cost = float(outcome.costs[0])
            retries = int(outcome.attempts[0]) - 1
            batch_failed = bool(outcome.failed[0])
        else:
            fault_delay = 0.0
            cost = float(self.platform.pricing.invocation_cost(
                memory_mb, cold_delay + eff_service
            ))
            retries = 0
            batch_failed = False
        duration = cold_delay + eff_service + fault_delay
        completion = start + duration
        registry = ctx.registry
        if self._crash_hazard:
            u = self.platform.spawn_rng(row, 1).random(2)
            if float(u[0]) < self.outage_config.crash_probability(start):
                # The container dies a uniform fraction into the run: bill
                # the partial invocation, requeue the requests at the
                # crash. No completion, no latency, no hedge.
                crash_time = start + float(u[1]) * duration
                partial = float(self.platform.pricing.invocation_cost(
                    memory_mb, crash_time - start
                ))
                st.batches.append(batch.dispatch_time, start, size, partial,
                                  cold, memory_mb, 0)
                self._push(st, crash_time, _P_CRASH, _K_CRASH,
                           (container_id, batch))
                if registry.enabled:
                    prefix = self.metrics_prefix
                    registry.counter(f"{prefix}.batches").inc()
                    registry.counter(
                        f"{prefix}.cold_starts" if cold
                        else f"{prefix}.warm_starts"
                    ).inc()
                if st.trace is not None or ctx.journal is not None:
                    self._emit(st, ctx, ("start", start, container_id, size,
                                         cold, memory_mb, completion))
                return
        st.batches.append(batch.dispatch_time, start, size, cost, cold,
                          memory_mb, retries)
        if retries:
            st.counters["n_retries"] += retries
        i0 = batch.first_index
        stop = i0 + size
        st.latencies[i0:stop] = completion - batch.arrival_times
        if batch_failed:
            st.failed[i0:stop] = True
            st.counters["n_failed"] += size
        if st.inflight is not None:
            st.inflight[container_id] = (completion, batch)
        hedge = self._hedge
        if hedge is not None:
            obs = st.hedge_obs
            if len(obs) >= hedge.min_observations:
                delay = hedge.multiplier * float(
                    np.percentile(obs, hedge.percentile)
                )
                hedge_at = start + delay
                if hedge_at < completion:
                    self._push(st, hedge_at, _P_HEDGE, _K_HEDGE,
                               container_id)
            # The current batch joins the window only after the delay is
            # computed: a hedge judges against *previous* dispatches.
            obs.append(duration)
        self._push(st, completion, _P_COMPLETION, _K_COMPLETION,
                   (container_id, i0, size))
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.batches").inc()
            registry.counter(
                f"{prefix}.cold_starts" if cold else f"{prefix}.warm_starts"
            ).inc()
            registry.histogram(f"{prefix}.queue_delay").observe(
                start - batch.dispatch_time
            )
            if slowdown != 1.0:
                registry.counter(f"{prefix}.outage.straggler_batches").inc()
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("start", start, container_id, size, cold,
                                 memory_mb, completion))

    def _start_batch_foreign(self, st: _RunState, ctx: _RunContext,
                             batch: Batch, memory_mb: float, lease,
                             now: float, donor: int,
                             slowdown: float) -> None:
        """Run one failed-over batch on a donor lane's container.

        The owner keeps the accounting — latencies, fault draws (its own
        batch-row generator children), billing — while the donor's pool
        hosts the container; the completion payload carries the donor
        index so the release goes back to the right pool. Failed-over
        batches are never crash-checked or hedged (they are already the
        recovery path), but the donor container's straggler factor
        (computed by the donor's engine and passed in) does apply.
        """
        size = batch.size
        key = (memory_mb, size)
        service = ctx.service_cache.get(key)
        if service is None:
            service = float(
                self.platform.profile.service_time(memory_mb, size)
            )
            ctx.service_cache[key] = service
        eff_service = service * slowdown
        cold_delay = lease.cold_delay
        if self.platform.faults_active:
            rng = self.platform.spawn_rng(len(st.batches))
            outcome = inject_faults(
                np.asarray([cold_delay + eff_service]), memory_mb,
                self.platform.pricing,
                self.platform.faults, self.platform.retry_policy, rng,
            )
            fault_delay = float(outcome.fault_delays[0])
            cost = float(outcome.costs[0])
            retries = int(outcome.attempts[0]) - 1
            batch_failed = bool(outcome.failed[0])
        else:
            fault_delay = 0.0
            cost = float(self.platform.pricing.invocation_cost(
                memory_mb, cold_delay + eff_service
            ))
            retries = 0
            batch_failed = False
        completion = now + cold_delay + eff_service + fault_delay
        st.batches.append(batch.dispatch_time, now, size, cost, lease.cold,
                          memory_mb, retries)
        if retries:
            st.counters["n_retries"] += retries
        i0 = batch.first_index
        stop = i0 + size
        st.latencies[i0:stop] = completion - batch.arrival_times
        if batch_failed:
            st.failed[i0:stop] = True
            st.counters["n_failed"] += size
        if st.failed_over is not None:
            st.failed_over[i0:stop] = True
        st.counters["failover_batches"] = (
            st.counters.get("failover_batches", 0) + 1
        )
        self._push(st, completion, _P_COMPLETION, _K_COMPLETION,
                   (lease.container_id, i0, size, donor))
        registry = ctx.registry
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.batches").inc()
            registry.counter(f"{prefix}.degrade.failover").inc()
            registry.counter(
                f"{prefix}.cold_starts" if lease.cold
                else f"{prefix}.warm_starts"
            ).inc()
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("failover", now, donor, lease.container_id,
                                 size))

    def _on_crash(self, st: _RunState, ctx: _RunContext, now: float,
                  payload) -> None:
        """A container died mid-batch: it leaves the pool immediately
        (freeing any fleet-shared budget), and the batch re-enters the
        dispatch path — a fresh batch row, hence fresh fault/crash draws."""
        if self.outage_config is None:
            return  # a restored pre-outage heap cannot carry this kind
        container_id, batch = payload
        if st.inflight is not None:
            st.inflight.pop(container_id, None)
        st.pool.kill(container_id)
        st.counters["crashed_containers"] += 1
        st.counters["crash_requeued"] += batch.size
        registry = ctx.registry
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.outage.crashes").inc()
            registry.counter(f"{prefix}.outage.crash_requeued").inc(
                batch.size
            )
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("crash", now, container_id, batch.size))
        self._dispatch(st, ctx, batch, now)

    def _on_cold_retry(self, st: _RunState, ctx: _RunContext, now: float,
                       payload) -> None:
        """One fired cold-start backoff: retry the acquire; on another
        denial take the next scheduled backoff, and after the last one
        fall back to the ordinary queue-or-shed admission path."""
        if self.degrade_config is None:
            return  # a restored pre-degrade heap cannot carry this kind
        batch, attempt, sched = payload
        memory_mb = st.active.memory_mb
        lease = st.pool.acquire(now, memory_mb)
        registry = ctx.registry
        if lease is not None:
            if registry.enabled and lease.cold:
                registry.histogram(
                    f"{self.metrics_prefix}.cold_delay"
                ).observe(lease.cold_delay)
            self._start_batch(st, ctx, batch, memory_mb, lease.cold_delay,
                              lease.cold, lease.container_id, start=now)
            return
        if attempt < len(sched):
            st.counters["cold_retries"] += 1
            if registry.enabled:
                registry.counter(
                    f"{self.metrics_prefix}.degrade.cold_retries"
                ).inc()
            if st.trace is not None or ctx.journal is not None:
                self._emit(st, ctx, ("cold_retry", now, batch.size,
                                     attempt + 1))
            self._push(st, now + sched[attempt], _P_COLD_RETRY, _K_COLD_RETRY,
                       (batch, attempt + 1, sched))
            return
        st.counters["cold_retry_exhausted"] += 1
        if registry.enabled:
            registry.counter(
                f"{self.metrics_prefix}.degrade.retry_exhausted"
            ).inc()
        self._enqueue_or_shed(st, ctx, batch, now)

    def _on_hedge(self, st: _RunState, ctx: _RunContext, now: float,
                  container_id: int) -> None:
        """The hedge delay elapsed and the primary is still in flight:
        dispatch a duplicate to a fresh container. The first completion
        wins the latency; both invocations bill (the hedging economics).
        The duplicate is never crash-checked, fault-injected, or itself
        hedged — it is the recovery path — but its own container's
        straggler factor applies.
        """
        hedge = self._hedge
        if hedge is None:
            return  # a restored pre-degrade heap cannot carry this kind
        rec = st.inflight.get(container_id) if st.inflight is not None else None
        if rec is None:
            return  # completed (or crashed) before the hedge fired
        completion, batch = rec
        memory_mb = st.active.memory_mb
        lease = st.pool.acquire(now, memory_mb)
        registry = ctx.registry
        if lease is None:
            # No capacity for speculation — the primary keeps running.
            st.counters["hedge_denied"] += 1
            if registry.enabled:
                registry.counter(
                    f"{self.metrics_prefix}.degrade.hedge_denied"
                ).inc()
            return
        size = batch.size
        key = (memory_mb, size)
        service = ctx.service_cache.get(key)
        if service is None:
            service = float(
                self.platform.profile.service_time(memory_mb, size)
            )
            ctx.service_cache[key] = service
        slowdown = self._straggler_factor(ctx, lease.container_id)
        duration = lease.cold_delay + service * slowdown
        dup_completion = now + duration
        cost = float(self.platform.pricing.invocation_cost(
            memory_mb, duration
        ))
        st.batches.append(batch.dispatch_time, now, size, cost, lease.cold,
                          memory_mb, 0)
        st.counters["hedges"] += 1
        st.counters["hedge_cost"] += cost
        i0 = batch.first_index
        stop = i0 + size
        st.hedged[i0:stop] = True
        if dup_completion < completion:
            # The duplicate wins: overwrite the primary's latencies (and
            # clear any fault verdict — the winning attempt is clean).
            st.latencies[i0:stop] = dup_completion - batch.arrival_times
            st.failed[i0:stop] = False
            st.counters["hedge_wins"] += 1
        # Size-0 completion payload: release the duplicate's container at
        # its own finish time without re-touching any request slice.
        self._push(st, dup_completion, _P_COMPLETION, _K_COMPLETION,
                   (lease.container_id, i0, 0))
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.batches").inc()
            registry.counter(f"{prefix}.degrade.hedges").inc()
            registry.counter(f"{prefix}.degrade.hedge_cost").inc(cost)
            if dup_completion < completion:
                registry.counter(f"{prefix}.degrade.hedge_wins").inc()
            registry.counter(
                f"{prefix}.cold_starts" if lease.cold
                else f"{prefix}.warm_starts"
            ).inc()
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("hedge", now, container_id,
                                 lease.container_id, size))

    def _start_batch_gen(self, st: _RunState, ctx: _RunContext, batch: Batch,
                         memory_mb: float, cold_delay: float, cold: bool,
                         container_id: int, start: float) -> None:
        """Size/timeout batch under generation timing.

        The batch prefills together (``ttft(M, B)``) and then decodes in
        lockstep; each member's own completion lands after its output
        length, but the container is held — and billed — until the
        *longest* decode in the batch finishes. With every
        ``output_tokens == 1`` this is exactly the request-level
        :meth:`_start_batch`: same service time, same cost, same events.
        """
        gen = self.generation_config
        size = batch.size
        # ttft/tpot are pure functions of (M, B); reuse the service memo.
        key = (memory_mb, size)
        pair = ctx.service_cache.get(key)
        if pair is None:
            pair = (
                float(gen.token_profile.ttft(memory_mb, size)),
                float(gen.token_profile.tpot(memory_mb, size)),
            )
            ctx.service_cache[key] = pair
        ttft, tpot = pair
        i0 = batch.first_index
        stop = i0 + size
        out = st.output_tokens[i0:stop]
        max_out = int(out.max())
        duration = cold_delay + ttft + (max_out - 1) * tpot
        completion = start + duration
        cost = float(self.platform.pricing.invocation_cost(memory_mb, duration))
        st.batches.append(batch.dispatch_time, start, size, cost, cold,
                          memory_mb, 0)
        first_token = start + cold_delay + ttft
        st.ttft[i0:stop] = first_token - batch.arrival_times
        st.latencies[i0:stop] = (
            first_token + (out - 1) * tpot - batch.arrival_times
        )
        st.tpot[i0:stop] = np.where(out > 1, tpot, np.nan)
        st.counters["gen_prefill_iterations"] += 1
        st.counters["gen_decode_iterations"] += max_out - 1
        st.counters["gen_tokens"] += int(out.sum())
        self._push(st, completion, _P_COMPLETION, _K_COMPLETION,
                   (container_id, i0, size))
        registry = ctx.registry
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.batches").inc()
            registry.counter(
                f"{prefix}.cold_starts" if cold else f"{prefix}.warm_starts"
            ).inc()
            registry.histogram(f"{prefix}.queue_delay").observe(
                start - batch.dispatch_time
            )
            registry.counter(f"{prefix}.gen.requests").inc(size)
            registry.counter(f"{prefix}.gen.tokens").inc(int(out.sum()))
            registry.histogram(f"{prefix}.ttft").observe_many(
                st.ttft[i0:stop]
            )
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("start", start, container_id, size, cold,
                                 memory_mb, completion))

    # ------------------------------------------------- continuous batching
    def _gen_arrival(self, st: _RunState, ctx: _RunContext, now: float,
                     i: int) -> None:
        """A token-streaming arrival: queue it, and open a new session when
        no running session could take it at its next boundary."""
        gen = self.generation_config
        req = GenRequest(
            index=i, arrival=now,
            prompt_tokens=int(st.prompt_tokens[i]),
            output_tokens=int(st.output_tokens[i]),
        )
        registry = ctx.registry
        if registry.enabled:
            registry.counter(f"{self.metrics_prefix}.gen.requests").inc()
        for sess in st.gen_sessions.values():
            if sess.can_accept(req):
                st.gen_queue.append(req)
                return
        lease = st.pool.acquire(now, st.active.memory_mb)
        if lease is None:
            if (
                gen.max_waiting is not None
                and len(st.gen_queue) >= gen.max_waiting
            ):
                # Admission control: a full pool plus a full wait queue
                # sheds the arrival; it counts against goodput as a miss.
                st.shed[i] = True
                st.counters["gen_shed"] += 1
                if registry.enabled:
                    registry.counter(f"{self.metrics_prefix}.shed_requests").inc()
                    registry.counter(f"{self.metrics_prefix}.gen.shed").inc()
                    registry.record_event(ShedEvent(
                        time=now, requests=1,
                        queued_batches=len(st.gen_queue),
                    ))
                if st.trace is not None or ctx.journal is not None:
                    self._emit(st, ctx, ("shed", now, 1))
                return
            st.gen_queue.append(req)
            return
        st.gen_queue.append(req)
        self._open_session(st, ctx, lease, now)

    def _open_session(self, st: _RunState, ctx: _RunContext, lease,
                      now: float) -> None:
        gen = self.generation_config
        cid = lease.container_id
        sess = ContinuousSession(
            profile=gen.token_profile,
            memory_mb=st.active.memory_mb,
            batch_size=st.active.batch_size,
            max_batch_tokens=gen.max_batch_tokens,
        )
        # The opening step admits from the (non-empty) queue and plans the
        # first prefill; the cold start delays its boundary.
        res = sess.step(st.gen_queue)
        st.gen_sessions[cid] = sess
        st.gen_session_meta[cid] = (now, lease.cold, lease.cold_delay)
        st.counters["gen_sessions"] += 1
        registry = ctx.registry
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.gen.sessions").inc()
            registry.counter(f"{prefix}.gen.prefill_iterations").inc()
            registry.counter(
                f"{prefix}.cold_starts" if lease.cold else f"{prefix}.warm_starts"
            ).inc()
            if lease.cold:
                registry.histogram(f"{prefix}.cold_delay").observe(
                    lease.cold_delay
                )
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("gen_session", now, cid, lease.cold,
                                 sess.memory_mb))
        self._push(st, now + lease.cold_delay + res.next_duration,
                   _P_GENSTEP, _K_GENSTEP, cid)

    def _on_gen_step(self, st: _RunState, ctx: _RunContext, now: float,
                     cid: int) -> None:
        """One iteration boundary of a continuous-batching session."""
        if self.generation_config is None:
            return  # a restored pre-generation heap cannot carry this kind
        sess = st.gen_sessions.get(cid)
        if sess is None:  # pragma: no cover - defensive
            return
        res = sess.step(st.gen_queue)
        for req in res.prefilled:
            st.ttft[req.index] = now - req.arrival
        for req in res.finished:
            latency = now - req.arrival
            st.latencies[req.index] = latency
            if req.output_tokens > 1:
                st.tpot[req.index] = (
                    (latency - st.ttft[req.index]) / (req.output_tokens - 1)
                )
            st.counters["gen_tokens"] += req.output_tokens
        registry = ctx.registry
        if registry.enabled:
            prefix = self.metrics_prefix
            if res.prefilled:
                registry.histogram(f"{prefix}.ttft").observe_many(
                    st.ttft[[r.index for r in res.prefilled]]
                )
            if res.finished:
                registry.histogram(f"{prefix}.latency").observe_many(
                    st.latencies[[r.index for r in res.finished]]
                )
                registry.counter(f"{prefix}.gen.tokens").inc(
                    sum(r.output_tokens for r in res.finished)
                )
            if res.next_kind == "prefill":
                registry.counter(f"{prefix}.gen.prefill_iterations").inc()
            elif res.next_kind == "decode":
                registry.counter(f"{prefix}.gen.decode_iterations").inc()
        if st.guardrail is not None and res.prefilled:
            ttfts = st.ttft[[r.index for r in res.prefilled]]
            for action, observed in st.guardrail.observe(ttfts, now,
                                                         st.active):
                self._on_guardrail_action(st, ctx, now, action, observed)
        if res.next_duration is not None:
            self._push(st, now + res.next_duration, _P_GENSTEP, _K_GENSTEP,
                       cid)
        else:
            self._close_session(st, ctx, cid, now)

    def _close_session(self, st: _RunState, ctx: _RunContext, cid: int,
                       now: float) -> None:
        """The session drained: bill the container hold, release it."""
        sess = st.gen_sessions.pop(cid)
        start, cold, _cold_delay = st.gen_session_meta.pop(cid)
        duration = now - start
        cost = float(
            self.platform.pricing.invocation_cost(sess.memory_mb, duration)
        )
        # One batch row per session: the whole container hold, all the
        # requests it served, one invocation fee — the continuous win the
        # cost model surfaces.
        st.batches.append(start, start, sess.n_served, cost, cold,
                          sess.memory_mb, 0)
        st.counters["gen_prefill_iterations"] += sess.n_prefills
        st.counters["gen_decode_iterations"] += sess.n_decodes
        st.pool.release(cid, now)
        registry = ctx.registry
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.batches").inc()
            registry.histogram(f"{prefix}.gen.session_seconds").observe(
                duration
            )
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("gen_release", now, cid, sess.n_served))

    def _dispatch(self, st: _RunState, ctx: _RunContext, batch: Batch,
                  now: float) -> None:
        memory_mb = st.active.memory_mb
        lease = st.pool.acquire(now, memory_mb)
        registry = ctx.registry
        if lease is not None:
            if registry.enabled and lease.cold:
                registry.histogram(f"{self.metrics_prefix}.cold_delay").observe(
                    lease.cold_delay
                )
            self._start_batch(st, ctx, batch, memory_mb, lease.cold_delay,
                              lease.cold, lease.container_id, start=now)
            return
        backoff = self._backoff
        if (backoff is not None and st.pool.outage is not None
                and st.pool.outage.active(now)):
            # Capacity-unavailable during an outage window: retry the cold
            # start on a capped exponential backoff schedule instead of
            # parking in the queue. The whole jittered schedule is drawn
            # up front from a per-batch generator child (key: first request
            # index) so draws are order-independent and checkpoint-safe.
            rng = self.platform.spawn_rng(batch.first_index, 2)
            sched = backoff.backoff_matrix(1, rng)[:, 0]
            if backoff.max_total_delay_s is not None:
                keep = int(
                    (np.cumsum(sched) <= backoff.max_total_delay_s).sum()
                )
                sched = sched[:keep]
            if sched.size:
                st.counters["cold_retries"] += 1
                if registry.enabled:
                    registry.counter(
                        f"{self.metrics_prefix}.degrade.cold_retries"
                    ).inc()
                if st.trace is not None or ctx.journal is not None:
                    self._emit(st, ctx, ("cold_retry", now, batch.size, 1))
                self._push(st, now + float(sched[0]), _P_COLD_RETRY,
                           _K_COLD_RETRY,
                           (batch, 1, tuple(float(x) for x in sched)))
                return
        self._enqueue_or_shed(st, ctx, batch, now)

    def _enqueue_or_shed(self, st: _RunState, ctx: _RunContext, batch: Batch,
                         now: float) -> None:
        """No capacity (and no retry budget left): queue, or shed at the
        queue cap. The tail of the historical ``_dispatch``, split out so
        the cold-retry path can fall back to it after exhaustion."""
        registry = ctx.registry
        limit = self.pool_config.max_queued_batches
        if limit is not None and len(st.queue) >= limit:
            st.shed[batch.first_index:batch.first_index + batch.size] = True
            st.counters["shed_batches"] += 1
            if registry.enabled:
                registry.counter(f"{self.metrics_prefix}.shed_requests").inc(batch.size)
                registry.counter(f"{self.metrics_prefix}.shed_batches").inc()
                registry.record_event(ShedEvent(
                    time=now, requests=batch.size,
                    queued_batches=len(st.queue),
                ))
            if st.trace is not None or ctx.journal is not None:
                self._emit(st, ctx, ("shed", now, batch.size))
            return
        st.queue.append(batch)
        if registry.enabled:
            registry.counter(f"{self.metrics_prefix}.queued_batches").inc()
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("queued", now, batch.size))

    def _on_completion(self, st: _RunState, ctx: _RunContext, now: float,
                       payload) -> None:
        foreign = None
        if len(payload) == 3:
            container_id, i0, size = payload
            lat = st.latencies[i0:i0 + size]
            # Generation mode breaks on TTFT windows, not end-of-decode
            # latency — first-token time is the streaming SLO.
            guard_obs = st.ttft[i0:i0 + size] if self._gen_buffer else lat
        elif len(payload) == 4:
            # Failed-over batch: the donor lane's pool hosted the
            # container, so release goes there, and this lane's own queue
            # is left to the fleet's drain pass (popping it here would
            # reorder admissions).
            container_id, i0, size, foreign = payload
            lat = st.latencies[i0:i0 + size]
            guard_obs = lat
        else:
            # A pre-speed-pass snapshot's heap carries (id, indices-array)
            # payloads; honor them so old checkpoints keep restoring.
            container_id, indices = payload
            lat = st.latencies[indices]
            guard_obs = lat
        if st.inflight is not None:
            st.inflight.pop(container_id, None)
        if foreign is None:
            st.pool.release(container_id, now)
        else:
            self._donor_pools[foreign].release(container_id, now)
        if self._track_latencies:
            st.recent_latencies.extend(lat.tolist())
        registry = ctx.registry
        if registry.enabled:
            registry.histogram(f"{self.metrics_prefix}.latency").observe_many(
                lat
            )
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("completion", now, container_id))
        if foreign is None and st.queue:
            self._dispatch(st, ctx, st.queue.popleft(), now)
        if st.guardrail is not None:
            for action, observed in st.guardrail.observe(
                guard_obs, now, st.active
            ):
                self._on_guardrail_action(st, ctx, now, action, observed)

    # --------------------------------------------------------- control plane
    @staticmethod
    def _extract_predicted_p95(decision: Decision) -> float | None:
        opt = getattr(decision, "optimization", None)
        pred = getattr(opt, "predicted_latency", None)
        if pred is None and decision.diagnostics:
            pred = decision.diagnostics.get("predicted_p95")
        return float(pred) if pred is not None else None

    def _inject_decision(self, st: _RunState, ctx: _RunContext, now: float,
                         config: BatchConfig, reason: str,
                         decision_time: float = 0.0,
                         predicted_p95: float | None = None,
                         degraded: bool = False) -> None:
        """Record an externally supplied decision and schedule its rollout.

        The fleet scheduler uses this to push an arbitrated ``(M, B, T)``
        into a lane; ``_on_decision`` funnels chooser output through the
        same path so both produce identical event sequences.
        """
        registry = ctx.registry
        record = ServingDecision(
            time=now,
            reason=reason,
            config=config,
            decision_time=float(decision_time),
            degraded=degraded,
            predicted_p95=predicted_p95,
        )
        st.decisions.append(record)
        if registry.enabled:
            registry.counter(f"{self.metrics_prefix}.decisions").inc()
        self._emit(st, ctx, ("decision", now, reason, str(config)))
        if config != st.target:
            st.target = config
            st.reconfig_gen += 1
            self._push(st, now + self.deploy_delay_s, _P_RECONFIGURE,
                       _K_RECONFIGURE, (st.reconfig_gen, record, now, reason))

    def _on_decision(self, st: _RunState, ctx: _RunContext, now: float,
                     reason: str) -> None:
        registry = ctx.registry
        if self.chooser is None:
            return
        suppressed = st.guardrail is not None and st.guardrail.state == OPEN
        hist = np.diff(np.asarray(st.recent_ts, dtype=float))
        if suppressed:
            # The breaker is open: the fallback configuration stays pinned
            # and the learned controller does not get to reconfigure until
            # the half-open probe re-admits it.
            st.counters["guardrail_suppressed"] += 1
            if registry.enabled:
                registry.counter("guardrail.suppressed_decisions").inc()
            self._emit(st, ctx, ("decision_suppressed", now, reason))
        elif hist.size >= self.min_history:
            try:
                decision = self.chooser.choose(hist, self.slo)
            except Exception:
                # Live serving must survive a controller crash with no
                # fallback decision; keep the active configuration.
                if registry.enabled:
                    registry.counter(f"{self.metrics_prefix}.decision_errors").inc()
                self._emit(st, ctx, ("decision_error", now, reason))
                decision = None
            if decision is not None:
                self._inject_decision(
                    st, ctx, now, decision.config, reason,
                    decision_time=float(decision.decision_time),
                    predicted_p95=self._extract_predicted_p95(decision),
                    degraded=decision.degraded,
                )
        if (
            reason == "interval"
            and self.decision_interval_s is not None
            and st.arrival_ptr < st.n
        ):
            self._push(st, now + self.decision_interval_s, _P_DECISION,
                       _K_DECISION, "interval")

    def _on_reconfigure(self, st: _RunState, ctx: _RunContext, now: float,
                        payload) -> None:
        gen, record, decided_at, reason = payload
        if gen != st.reconfig_gen:  # superseded by a newer decision
            return
        old = st.active
        released = st.buffer.reconfigure(record.config, now=now)
        st.active = record.config
        record.applied_at = now
        st.counters["reconfigurations"] += 1
        st.pred_p95 = record.predicted_p95
        st.recent_latencies.clear()
        registry = ctx.registry
        if registry.enabled:
            registry.counter(f"{self.metrics_prefix}.reconfigurations").inc()
            registry.record_event(ReconfigureEvent(
                time=now, reason=reason,
                memory_mb=st.active.memory_mb,
                batch_size=st.active.batch_size, timeout=st.active.timeout,
                old_memory_mb=old.memory_mb,
                old_batch_size=old.batch_size, old_timeout=old.timeout,
                lag=now - decided_at,
            ))
        self._emit(st, ctx, ("reconfigure", now, str(st.active), reason))
        for batch in released:
            self._dispatch(st, ctx, batch, now)
        self._arm_timer(st)

    def _on_guardrail_action(self, st: _RunState, ctx: _RunContext,
                             now: float, action: str, observed: float) -> None:
        registry = ctx.registry
        guard = st.guardrail
        if action == "tripped":
            fallback = guard.fallback_config(st.active)
            st.counters["guardrail_trips"] += 1
            record = ServingDecision(
                time=now, reason="guardrail", config=fallback,
                decision_time=0.0,
            )
            st.decisions.append(record)
            if fallback != st.target:
                # The reactive path deploys immediately (no planner lag):
                # the breaker exists precisely because waiting is the
                # failure mode. A pending learned reconfiguration is
                # superseded by the generation bump.
                st.target = fallback
                st.reconfig_gen += 1
                self._push(st, now, _P_RECONFIGURE, _K_RECONFIGURE,
                           (st.reconfig_gen, record, now, "guardrail"))
            event_config = fallback
        elif action == "probe":
            st.counters["guardrail_probes"] += 1
            self._trigger_decision(st, now, "guardrail-probe")
            event_config = st.active
        else:  # "restored"
            st.counters["guardrail_restores"] += 1
            event_config = st.active
        if registry.enabled:
            registry.counter(f"guardrail.{action}").inc()
            registry.record_event(GuardrailEvent(
                time=now, action=action, state=guard.state,
                observed_p=float(observed), slo=self.slo,
                memory_mb=event_config.memory_mb,
                batch_size=event_config.batch_size,
                timeout=event_config.timeout,
            ))
        self._emit(st, ctx, ("guardrail", now, action, guard.state))

    def _check_drift(self, st: _RunState, ctx: _RunContext, now: float) -> None:
        if now < st.cooldown_until:
            return
        registry = ctx.registry
        detector = self.drift_detector
        if (
            detector is not None
            and detector.lo_ is not None
            and len(st.recent_ts) > self.drift_window
        ):
            window = np.diff(
                np.asarray(st.recent_ts, dtype=float)[-(self.drift_window + 1):]
            )
            score = detector.score(window)
            if score >= detector.threshold:
                st.counters["drift"] += 1
                st.cooldown_until = now + self.drift_cooldown_s
                if registry.enabled:
                    registry.counter(f"{self.metrics_prefix}.drift_triggers").inc()
                    registry.record_event(DriftEvent(
                        time=now, detector="workload", score=score
                    ))
                self._emit(st, ctx, ("drift", now, "workload", round(score, 9)))
                self._trigger_decision(st, now, "drift")
                if self.retrain_delay_s is not None and not st.retrain_pending:
                    st.retrain_pending = True
                    self._push(st, now + self.retrain_delay_s, _P_RETRAIN,
                               _K_RETRAIN, None)
                return
        if (
            self.prediction_baseline_error is not None
            and st.pred_p95 is not None
            and len(st.recent_latencies) >= self.prediction_min_samples
        ):
            observed = float(np.percentile(st.recent_latencies, 95.0))
            if observed > 0:
                error = abs(st.pred_p95 - observed) / observed
                if prediction_drift(error, self.prediction_baseline_error,
                                    self.prediction_tolerance):
                    st.counters["pred_drift"] += 1
                    st.cooldown_until = now + self.drift_cooldown_s
                    if registry.enabled:
                        registry.counter(
                            f"{self.metrics_prefix}.prediction_drift_triggers"
                        ).inc()
                        registry.record_event(DriftEvent(
                            time=now, detector="prediction", score=error
                        ))
                    self._emit(st, ctx, ("drift", now, "prediction",
                                         round(error, 9)))
                    self._trigger_decision(st, now, "prediction-drift")

    def _on_retrain(self, st: _RunState, ctx: _RunContext, now: float) -> None:
        st.retrain_pending = False
        st.counters["retrains"] += 1
        recent = np.diff(np.asarray(st.recent_ts, dtype=float))
        if self.drift_detector is not None:
            try:
                self.drift_detector.fit(recent, self.drift_window)
            except ValueError:
                pass  # not enough recent traffic to refit the envelope
        if self.on_retrain is not None:
            self.on_retrain(recent)
            # The retrain hook may refit the platform's models in place;
            # drop the memoized service/cost values so later batches see it.
            ctx.service_cache.clear()
            ctx.cost_cache.clear()
        if ctx.registry.enabled:
            ctx.registry.counter(f"{self.metrics_prefix}.retrains").inc()
        self._emit(st, ctx, ("retrain", now))

    def _on_prewarm(self, st: _RunState, ctx: _RunContext, now: float) -> None:
        """One predictive-prewarm tick: forecast, size, provision/retire.

        Deterministic and checkpoint-safe by construction: the next tick
        is an ordinary heap event, the counters live in ``st.counters``,
        and the forecaster is stateless — so a restore resumes the tick
        cadence bit-identically without any dedicated policy state.
        """
        pw = self.prewarm_config
        if pw is None:  # a restored pre-prewarm heap cannot carry this kind
            return
        st.counters["prewarm_ticks"] += 1
        tier = st.active.memory_mb
        cold_delay = st.pool.cold_delay(tier)
        # Default horizon: the next tick plus the spin-up the prewarm is
        # replacing — the window demand must be covered ahead of.
        horizon = (
            pw.horizon_s if pw.horizon_s is not None
            else pw.interval_s + cold_delay
        )
        recent = np.diff(
            np.asarray(st.recent_ts, dtype=float)[-(pw.window + 1):]
        )
        service = float(
            self.platform.profile.service_time(tier, st.active.batch_size)
        )
        plan = self._prewarm_policy.plan(
            recent, now, horizon,
            batch_size=st.active.batch_size,
            service_time=service,
            live=st.pool.live_containers(now, tier),
            idle=st.pool.warm_containers(now, tier),
        )
        provisioned = retired = 0
        cost = 0.0
        if plan.provision:
            provisioned = st.pool.prewarm(now, tier, plan.provision)
            if provisioned:
                # Each speculative container bills its cold start off the
                # request path — the trade-off the telemetry surfaces.
                cost = provisioned * float(
                    self.platform.pricing.invocation_cost(tier, cold_delay)
                )
                st.counters["prewarm_cost"] += cost
        if plan.retire:
            retired = st.pool.retire_idle(now, tier, plan.retire)
        registry = ctx.registry
        if registry.enabled:
            prefix = self.metrics_prefix
            registry.counter(f"{prefix}.prewarm.ticks").inc()
            if provisioned:
                registry.counter(f"{prefix}.prewarm.provisioned").inc(provisioned)
                registry.counter(f"{prefix}.prewarm.cost").inc(cost)
            if retired:
                registry.counter(f"{prefix}.prewarm.retired").inc(retired)
        if st.trace is not None or ctx.journal is not None:
            self._emit(st, ctx, ("prewarm", now, round(plan.rate, 9),
                                 plan.target, provisioned, retired))
        if st.arrival_ptr < st.n:
            self._push(st, now + pw.interval_s, _P_PREWARM, _K_PREWARM, None)

    # ---------------------------------------------------------------- finish
    def _finish(self, st: _RunState) -> ServingLog:
        stats = st.pool.stats
        (b_dispatch, b_start, b_sizes, b_costs, b_cold, b_memory,
         b_retries) = st.batches.arrays()
        return ServingLog(
            name=st.name, trace=st.trace_name, slo=self.slo,
            arrival_times=st.ts,
            latencies=st.latencies,
            shed=st.shed,
            failed=st.failed,
            dispatch_times=b_dispatch,
            start_times=b_start,
            batch_sizes=b_sizes,
            batch_costs=b_costs,
            batch_cold=b_cold,
            batch_memory=b_memory,
            batch_retries=b_retries,
            decisions=st.decisions,
            reconfigurations=st.counters["reconfigurations"],
            drift_triggers=st.counters["drift"],
            prediction_drift_triggers=st.counters["pred_drift"],
            retrains=st.counters["retrains"],
            shed_batches=st.counters["shed_batches"],
            cold_starts=stats.cold_starts,
            warm_starts=stats.warm_starts,
            expired_containers=stats.expired,
            evicted_containers=stats.evicted,
            # getattr/.get: a snapshot written before the prewarm fields
            # existed unpickles without them and must still finish cleanly.
            prewarmed_containers=getattr(stats, "prewarmed", 0),
            prewarm_retired=getattr(stats, "retired", 0),
            prewarm_ticks=st.counters.get("prewarm_ticks", 0),
            prewarm_cost=st.counters.get("prewarm_cost", 0.0),
            n_retries=st.counters["n_retries"],
            n_failed=st.counters["n_failed"],
            sequence_length=self.sequence_length,
            event_trace=st.trace,
            n_events=st.events_processed,
            checkpoints=st.counters["checkpoints"],
            guardrail_trips=st.counters["guardrail_trips"],
            guardrail_restores=st.counters["guardrail_restores"],
            guardrail_probes=st.counters["guardrail_probes"],
            guardrail_suppressed=st.counters["guardrail_suppressed"],
            guardrail_state=(
                st.guardrail.state if st.guardrail is not None else None
            ),
            # getattr/.get throughout: state objects written before the
            # generation fields existed must still finish cleanly.
            ttft=getattr(st, "ttft", None),
            tpot=getattr(st, "tpot", None),
            prompt_tokens=getattr(st, "prompt_tokens", None),
            output_tokens=getattr(st, "output_tokens", None),
            ttft_slo=self._gen_ttft_slo,
            tpot_slo=(
                self.generation_config.tpot_slo
                if self.generation_config is not None else None
            ),
            gen_sessions=st.counters.get("gen_sessions", 0),
            gen_prefill_iterations=st.counters.get("gen_prefill_iterations", 0),
            gen_decode_iterations=st.counters.get("gen_decode_iterations", 0),
            gen_tokens=st.counters.get("gen_tokens", 0),
            gen_shed=st.counters.get("gen_shed", 0),
            outage_denied=getattr(stats, "outage_denied", 0),
            crashed_containers=st.counters.get("crashed_containers", 0),
            crash_requeued=st.counters.get("crash_requeued", 0),
            straggler_batches=st.counters.get("straggler_batches", 0),
            cold_retries=st.counters.get("cold_retries", 0),
            cold_retry_exhausted=st.counters.get("cold_retry_exhausted", 0),
            hedges=st.counters.get("hedges", 0),
            hedge_wins=st.counters.get("hedge_wins", 0),
            hedge_denied=st.counters.get("hedge_denied", 0),
            hedge_cost=st.counters.get("hedge_cost", 0.0),
            brownout_shed=st.counters.get("brownout_shed", 0),
            failover_batches=st.counters.get("failover_batches", 0),
            hedged=getattr(st, "hedged", None),
            failed_over=getattr(st, "failed_over", None),
        )
