"""The discrete-event serving runtime (`repro serve`).

Everything else in the repo replays *fixed* segments offline; this engine
runs the same components — :class:`BatchingBuffer`,
:class:`ServerlessPlatform`, any ``Chooser`` — as a **live system** in which
arrivals, batch timeouts, invocation completions, controller decisions, and
reconfigurations interleave in simulated time on one event heap:

========================  ====================================================
event                     what happens
========================  ====================================================
``Arrival``               a request enters the buffer; may release batches
``BatchDispatch``         a buffer timeout fires (the (B, T) policy's timer)
``Completion``            an invocation finishes; its container goes warm and
                          the head of the admission queue starts
``DecisionTick``          the controller re-optimizes (periodic or
                          drift-triggered)
``Reconfigure``           a decided ``(M, B, T)`` takes effect after the
                          deploy lag; in-flight batches finish under the old
                          configuration
``RetrainComplete``       a drift-triggered fine-tune lands; the drift
                          envelope is refit on recent traffic
========================  ====================================================

The engine adds the state the offline path cannot express — a warm-pool
keep-alive model (:mod:`repro.serving.pool`), reconfiguration lag, and
admission control — while keeping the **equivalence property** that anchors
its correctness: with a static configuration, infinite keep-alive, zero
deploy lag, and no shedding, per-request latencies and per-batch costs match
:func:`repro.batching.simulator.simulate` bit-for-bit (with and without a
concurrency limit). The offline simulator is a special case of the runtime.

Determinism: the heap orders events by ``(time, priority, sequence)``; the
pool draws no randomness; fault draws use one fixed-draw-count child
generator per dispatched batch (``platform.spawn_rng(batch_index)``, the
discipline of :mod:`repro.serverless.faults`), so two runs with the same
seed produce identical event traces and :class:`ServingLog`\\ s.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable

import numpy as np

from repro.batching.buffer import Batch, BatchingBuffer
from repro.batching.config import BatchConfig
from repro.core.drift import WorkloadDriftDetector, prediction_drift
from repro.core.types import Decision
from repro.evaluation.harness import Chooser, _resolve_sequence_length
from repro.serverless.faults import inject_faults
from repro.serverless.platform import ServerlessPlatform
from repro.serving.log import ServingDecision, ServingLog
from repro.serving.pool import WarmPool, WarmPoolConfig
from repro.telemetry.events import DriftEvent, ReconfigureEvent, ShedEvent
from repro.telemetry.metrics import get_registry
from repro.utils.validation import check_sorted

# Heap tie-break priorities: completions free containers before anything
# else at the same instant; reconfigurations land before the arrivals of
# that instant; arrivals join a batch whose deadline falls on their own
# timestamp (closed-interval semantics), so they precede the timer.
_P_COMPLETION = 0
_P_RECONFIGURE = 1
_P_ARRIVAL = 2
_P_TIMER = 3
_P_DECISION = 4
_P_RETRAIN = 5


class ServingEngine:
    """Seeded, deterministic online serving loop over an arrival stream.

    Parameters
    ----------
    config:
        The initial ``(M, B, T)`` deployment.
    platform:
        Service-time, pricing, cold-start, and fault models. The platform's
        ``concurrency_limit`` becomes the pool's ``max_containers`` default;
        its queueing throttle itself is *not* used — the warm pool is the
        concurrency model here.
    chooser:
        Optional controller re-deciding at ``decision_interval_s`` and on
        drift triggers; ``None`` serves the static ``config`` forever.
    pool:
        Warm-pool keep-alive and admission parameters. The default is the
        offline simulator's implicit platform: infinite keep-alive,
        ``max_containers`` from the platform's concurrency limit, unbounded
        queueing (no shedding).
    deploy_delay_s:
        Lag between a decision and the new configuration taking effect.
    drift_detector:
        Fitted :class:`WorkloadDriftDetector`; when a live window falls
        outside the training envelope, an out-of-band ``DecisionTick``
        fires (§III-D's OOD trigger, run against live traffic).
    prediction_baseline_error:
        Enables the second §III-D trigger via :func:`prediction_drift`:
        when the relative error between the active decision's predicted p95
        and the observed p95 exceeds ``prediction_tolerance ×`` this
        baseline, the controller re-decides. ``None`` disables it.
    retrain_delay_s:
        With a value set, each drift trigger also schedules a
        ``RetrainComplete`` after this long; on completion the drift
        envelope is refit on recent traffic and ``on_retrain`` is called.
    """

    def __init__(
        self,
        config: BatchConfig,
        platform: ServerlessPlatform | None = None,
        chooser: Chooser | None = None,
        slo: float = 0.1,
        pool: WarmPoolConfig | None = None,
        deploy_delay_s: float = 0.0,
        decision_interval_s: float | None = None,
        history_tail: int = 4096,
        min_history: int = 32,
        drift_detector: WorkloadDriftDetector | None = None,
        drift_window: int = 64,
        drift_check_every: int = 32,
        drift_cooldown_s: float = 30.0,
        retrain_delay_s: float | None = None,
        on_retrain: Callable[[np.ndarray], None] | None = None,
        prediction_baseline_error: float | None = None,
        prediction_tolerance: float = 2.0,
        prediction_min_samples: int = 64,
        sequence_length: int | None = None,
    ) -> None:
        if slo <= 0:
            raise ValueError(f"slo must be > 0, got {slo}")
        if deploy_delay_s < 0:
            raise ValueError(f"deploy_delay_s must be >= 0, got {deploy_delay_s}")
        if decision_interval_s is not None and decision_interval_s <= 0:
            raise ValueError("decision_interval_s must be > 0 or None")
        if history_tail < 1:
            raise ValueError(f"history_tail must be >= 1, got {history_tail}")
        if drift_window < 2:
            raise ValueError(f"drift_window must be >= 2, got {drift_window}")
        if drift_check_every < 1:
            raise ValueError("drift_check_every must be >= 1")
        if retrain_delay_s is not None and retrain_delay_s < 0:
            raise ValueError("retrain_delay_s must be >= 0 or None")
        self.initial_config = config
        self.platform = platform if platform is not None else ServerlessPlatform()
        self.chooser = chooser
        self.slo = slo
        self.pool_config = (
            pool
            if pool is not None
            else WarmPoolConfig(max_containers=self.platform.concurrency_limit)
        )
        self.deploy_delay_s = deploy_delay_s
        self.decision_interval_s = decision_interval_s
        self.history_tail = history_tail
        self.min_history = min_history
        self.drift_detector = drift_detector
        self.drift_window = drift_window
        self.drift_check_every = drift_check_every
        self.drift_cooldown_s = drift_cooldown_s
        self.retrain_delay_s = retrain_delay_s
        self.on_retrain = on_retrain
        self.prediction_baseline_error = prediction_baseline_error
        self.prediction_tolerance = prediction_tolerance
        self.prediction_min_samples = prediction_min_samples
        self.sequence_length = _resolve_sequence_length(chooser, sequence_length)

    # ------------------------------------------------------------------- run
    def run(
        self,
        timestamps: np.ndarray,
        name: str = "serving",
        trace_name: str = "trace",
        history: np.ndarray | None = None,
        record_trace: bool = False,
    ) -> ServingLog:
        """Serve ``timestamps`` (absolute, sorted) and return the log.

        ``history`` optionally supplies earlier arrival timestamps that seed
        the controller's observation window and the drift detector's live
        window without being served themselves.
        """
        ts = check_sorted(np.asarray(timestamps, dtype=float), "timestamps")
        n = ts.size
        registry = get_registry()

        # Mutable run state (fresh per run, so one engine can run repeatedly).
        buffer = BatchingBuffer(self.initial_config)
        pool = WarmPool(self.pool_config, self.platform.cold_start)
        heap: list[tuple] = []
        seq = 0
        queue: deque[Batch] = deque()
        timers: set[float] = set()
        recent_ts: deque[float] = deque(maxlen=self.history_tail + 1)
        if history is not None:
            for t in np.asarray(history, dtype=float)[-(self.history_tail + 1):]:
                recent_ts.append(float(t))
        active = self.initial_config
        target = self.initial_config
        reconfig_gen = 0
        arrivals_seen = 0
        cooldown_until = -np.inf
        retrain_pending = False
        pred_p95: float | None = None
        recent_latencies: list[float] = []

        latencies = np.full(n, np.nan)
        shed = np.zeros(n, dtype=bool)
        failed = np.zeros(n, dtype=bool)
        b_dispatch: list[float] = []
        b_start: list[float] = []
        b_size: list[int] = []
        b_cost: list[float] = []
        b_cold: list[bool] = []
        b_memory: list[float] = []
        b_retries: list[int] = []
        decisions: list[ServingDecision] = []
        trace: list[tuple] | None = [] if record_trace else None
        counters = {
            "reconfigurations": 0, "drift": 0, "pred_drift": 0,
            "retrains": 0, "shed_batches": 0, "n_retries": 0, "n_failed": 0,
        }

        def push(time: float, priority: int, kind: str, payload) -> None:
            nonlocal seq
            heappush(heap, (time, priority, seq, kind, payload))
            seq += 1

        def arm_timer() -> None:
            # After any observe/poll/reconfigure the head deadline is
            # strictly in the future, so a timer armed here never fires
            # late; the set dedupes repeat arming of the same deadline.
            deadline = buffer.next_deadline()
            if deadline is not None and deadline not in timers:
                timers.add(deadline)
                push(deadline, _P_TIMER, "timer", deadline)

        def start_batch(batch: Batch, memory_mb: float, cold_delay: float,
                        cold: bool, container_id: int, start: float) -> None:
            size = batch.size
            service = float(self.platform.profile.service_time(memory_mb, size))
            duration = cold_delay + service
            if self.platform.faults_active:
                # Fixed-draw-count child generator per dispatched batch:
                # randomness is a function of the batch index, never of
                # event interleaving (repro.serverless.faults discipline).
                rng = self.platform.spawn_rng(len(b_dispatch))
                outcome = inject_faults(
                    np.asarray([duration]), memory_mb, self.platform.pricing,
                    self.platform.faults, self.platform.retry_policy, rng,
                )
                fault_delay = float(outcome.fault_delays[0])
                cost = float(outcome.costs[0])
                retries = int(outcome.attempts[0]) - 1
                batch_failed = bool(outcome.failed[0])
            else:
                fault_delay = 0.0
                cost = float(
                    self.platform.pricing.invocation_cost(memory_mb, duration)
                )
                retries = 0
                batch_failed = False
            # Same association as BatchExecution.completion_times, so the
            # static-config equivalence is bitwise, not merely close.
            completion = start + cold_delay + service + fault_delay
            b_dispatch.append(batch.dispatch_time)
            b_start.append(start)
            b_size.append(size)
            b_cost.append(cost)
            b_cold.append(cold)
            b_memory.append(memory_mb)
            b_retries.append(retries)
            counters["n_retries"] += retries
            latencies[batch.indices] = completion - batch.arrival_times
            if batch_failed:
                failed[batch.indices] = True
                counters["n_failed"] += size
            push(completion, _P_COMPLETION, "completion",
                 (container_id, batch.indices))
            if registry.enabled:
                registry.counter("serving.batches").inc()
                registry.counter(
                    "serving.cold_starts" if cold else "serving.warm_starts"
                ).inc()
                registry.histogram("serving.queue_delay").observe(
                    start - batch.dispatch_time
                )
            if trace is not None:
                trace.append(("start", start, container_id, size, cold,
                              memory_mb, completion))

        def dispatch(batch: Batch, now: float) -> None:
            memory_mb = active.memory_mb
            lease = pool.acquire(now, memory_mb)
            if lease is not None:
                if registry.enabled and lease.cold:
                    registry.histogram("serving.cold_delay").observe(
                        lease.cold_delay
                    )
                start_batch(batch, memory_mb, lease.cold_delay, lease.cold,
                            lease.container_id, start=now)
                return
            limit = self.pool_config.max_queued_batches
            if limit is not None and len(queue) >= limit:
                shed[batch.indices] = True
                counters["shed_batches"] += 1
                if registry.enabled:
                    registry.counter("serving.shed_requests").inc(batch.size)
                    registry.counter("serving.shed_batches").inc()
                    registry.record_event(ShedEvent(
                        time=now, requests=batch.size,
                        queued_batches=len(queue),
                    ))
                if trace is not None:
                    trace.append(("shed", now, batch.size))
                return
            queue.append(batch)
            if registry.enabled:
                registry.counter("serving.queued_batches").inc()
            if trace is not None:
                trace.append(("queued", now, batch.size))

        def trigger_decision(now: float, reason: str) -> None:
            push(now, _P_DECISION, "decision", reason)

        def extract_predicted_p95(decision: Decision) -> float | None:
            opt = getattr(decision, "optimization", None)
            pred = getattr(opt, "predicted_latency", None)
            if pred is None and decision.diagnostics:
                pred = decision.diagnostics.get("predicted_p95")
            return float(pred) if pred is not None else None

        def on_decision(now: float, reason: str) -> None:
            nonlocal target, reconfig_gen
            if self.chooser is None:
                return
            hist = np.diff(np.asarray(recent_ts, dtype=float))
            if hist.size >= self.min_history:
                try:
                    decision = self.chooser.choose(hist, self.slo)
                except Exception:
                    # Live serving must survive a controller crash with no
                    # fallback decision; keep the active configuration.
                    if registry.enabled:
                        registry.counter("serving.decision_errors").inc()
                    if trace is not None:
                        trace.append(("decision_error", now, reason))
                    decision = None
                if decision is not None:
                    record = ServingDecision(
                        time=now,
                        reason=reason,
                        config=decision.config,
                        decision_time=float(decision.decision_time),
                        degraded=decision.degraded,
                        predicted_p95=extract_predicted_p95(decision),
                    )
                    decisions.append(record)
                    if registry.enabled:
                        registry.counter("serving.decisions").inc()
                    if trace is not None:
                        trace.append(("decision", now, reason,
                                      str(decision.config)))
                    if decision.config != target:
                        target = decision.config
                        reconfig_gen += 1
                        push(now + self.deploy_delay_s, _P_RECONFIGURE,
                             "reconfigure", (reconfig_gen, record, now, reason))
            if (
                reason == "interval"
                and self.decision_interval_s is not None
                and arrival_ptr[0] < n
            ):
                push(now + self.decision_interval_s, _P_DECISION, "decision",
                     "interval")

        def on_reconfigure(now: float, payload) -> None:
            nonlocal active, pred_p95
            gen, record, decided_at, reason = payload
            if gen != reconfig_gen:  # superseded by a newer decision
                return
            old = active
            released = buffer.reconfigure(record.config, now=now)
            active = record.config
            record.applied_at = now
            counters["reconfigurations"] += 1
            pred_p95 = record.predicted_p95
            recent_latencies.clear()
            if registry.enabled:
                registry.counter("serving.reconfigurations").inc()
                registry.record_event(ReconfigureEvent(
                    time=now, reason=reason,
                    memory_mb=active.memory_mb,
                    batch_size=active.batch_size, timeout=active.timeout,
                    old_memory_mb=old.memory_mb,
                    old_batch_size=old.batch_size, old_timeout=old.timeout,
                    lag=now - decided_at,
                ))
            if trace is not None:
                trace.append(("reconfigure", now, str(active), reason))
            for batch in released:
                dispatch(batch, now)
            arm_timer()

        def check_drift(now: float) -> None:
            nonlocal cooldown_until, retrain_pending
            if now < cooldown_until:
                return
            detector = self.drift_detector
            if (
                detector is not None
                and detector.lo_ is not None
                and len(recent_ts) > self.drift_window
            ):
                window = np.diff(
                    np.asarray(recent_ts, dtype=float)[-(self.drift_window + 1):]
                )
                score = detector.score(window)
                if score >= detector.threshold:
                    counters["drift"] += 1
                    cooldown_until = now + self.drift_cooldown_s
                    if registry.enabled:
                        registry.counter("serving.drift_triggers").inc()
                        registry.record_event(DriftEvent(
                            time=now, detector="workload", score=score
                        ))
                    if trace is not None:
                        trace.append(("drift", now, "workload", round(score, 9)))
                    trigger_decision(now, "drift")
                    if self.retrain_delay_s is not None and not retrain_pending:
                        retrain_pending = True
                        push(now + self.retrain_delay_s, _P_RETRAIN,
                             "retrain", None)
                    return
            if (
                self.prediction_baseline_error is not None
                and pred_p95 is not None
                and len(recent_latencies) >= self.prediction_min_samples
            ):
                observed = float(np.percentile(recent_latencies, 95.0))
                if observed > 0:
                    error = abs(pred_p95 - observed) / observed
                    if prediction_drift(error, self.prediction_baseline_error,
                                        self.prediction_tolerance):
                        counters["pred_drift"] += 1
                        cooldown_until = now + self.drift_cooldown_s
                        if registry.enabled:
                            registry.counter(
                                "serving.prediction_drift_triggers"
                            ).inc()
                            registry.record_event(DriftEvent(
                                time=now, detector="prediction", score=error
                            ))
                        if trace is not None:
                            trace.append(("drift", now, "prediction",
                                          round(error, 9)))
                        trigger_decision(now, "prediction-drift")

        def on_retrain(now: float) -> None:
            nonlocal retrain_pending
            retrain_pending = False
            counters["retrains"] += 1
            recent = np.diff(np.asarray(recent_ts, dtype=float))
            if self.drift_detector is not None:
                try:
                    self.drift_detector.fit(recent, self.drift_window)
                except ValueError:
                    pass  # not enough recent traffic to refit the envelope
            if self.on_retrain is not None:
                self.on_retrain(recent)
            if registry.enabled:
                registry.counter("serving.retrains").inc()
            if trace is not None:
                trace.append(("retrain", now))

        # ------------------------------------------------------- event loop
        arrival_ptr = [0]
        if n and self.chooser is not None and self.decision_interval_s:
            push(float(ts[0]) + self.decision_interval_s, _P_DECISION,
                 "decision", "interval")

        while arrival_ptr[0] < n or heap:
            take_arrival = arrival_ptr[0] < n and (
                not heap
                or (ts[arrival_ptr[0]], _P_ARRIVAL) < (heap[0][0], heap[0][1])
            )
            if take_arrival:
                i = arrival_ptr[0]
                now = float(ts[i])
                arrival_ptr[0] += 1
                arrivals_seen += 1
                recent_ts.append(now)
                if trace is not None:
                    trace.append(("arrival", now, i))
                if registry.enabled:
                    registry.counter("serving.requests").inc()
                for batch in buffer.observe(now):
                    dispatch(batch, now)
                arm_timer()
                if arrivals_seen % self.drift_check_every == 0:
                    check_drift(now)
                continue
            now, _priority, _seq, kind, payload = heappop(heap)
            if kind == "completion":
                container_id, indices = payload
                pool.release(container_id, now)
                recent_latencies.extend(latencies[indices].tolist())
                if registry.enabled:
                    registry.histogram("serving.latency").observe_many(
                        latencies[indices]
                    )
                if trace is not None:
                    trace.append(("completion", now, container_id))
                if queue:
                    dispatch(queue.popleft(), now)
            elif kind == "timer":
                timers.discard(payload)
                for batch in buffer.poll(now):
                    dispatch(batch, now)
                arm_timer()
            elif kind == "reconfigure":
                on_reconfigure(now, payload)
            elif kind == "decision":
                on_decision(now, payload)
            elif kind == "retrain":
                on_retrain(now)

        stats = pool.stats
        return ServingLog(
            name=name, trace=trace_name, slo=self.slo,
            arrival_times=ts,
            latencies=latencies,
            shed=shed,
            failed=failed,
            dispatch_times=np.asarray(b_dispatch),
            start_times=np.asarray(b_start),
            batch_sizes=np.asarray(b_size, dtype=int),
            batch_costs=np.asarray(b_cost),
            batch_cold=np.asarray(b_cold, dtype=bool),
            batch_memory=np.asarray(b_memory),
            batch_retries=np.asarray(b_retries, dtype=int),
            decisions=decisions,
            reconfigurations=counters["reconfigurations"],
            drift_triggers=counters["drift"],
            prediction_drift_triggers=counters["pred_drift"],
            retrains=counters["retrains"],
            shed_batches=counters["shed_batches"],
            cold_starts=stats.cold_starts,
            warm_starts=stats.warm_starts,
            expired_containers=stats.expired,
            evicted_containers=stats.evicted,
            n_retries=counters["n_retries"],
            n_failed=counters["n_failed"],
            sequence_length=self.sequence_length,
            event_trace=trace,
        )
