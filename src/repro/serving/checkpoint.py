"""Crash-safe persistence for the serving runtime: snapshots + journal.

A :class:`~repro.serving.engine.ServingEngine` run is a deterministic
discrete-event system, which makes it *exactly* recoverable: persist the
complete mutable state at an event boundary and the continuation is
bit-identical to never having crashed. This module supplies the two
artifacts that make that real (DeepServe treats recoverability as a
first-class property of serverless serving; we inherit the stance):

* **snapshot** — the full run state (event heap, buffer contents, warm
  pool, in-flight completions, pending reconfigurations, controller
  history tail, drift-detector envelope, breaker state, output arrays, and
  the platform's NumPy bit-generator state), pickled and written through
  :func:`repro.utils.io.atomic_write`. A crash mid-snapshot leaves the
  previous snapshot intact — there is never a torn checkpoint.
* **journal** — an append-only JSONL file of every event the engine emits,
  flushed per event and fsynced at each snapshot. On restore the journal
  is truncated back to the snapshot boundary, and the entries beyond it —
  events the crashed run processed but whose state died with it — become
  the *replay expectation*: the resumed run must regenerate them verbatim
  (it is deterministic), and :class:`JournalReplayError` flags any
  divergence, which would mean the snapshot and journal disagree (torn
  write, mixed-up files, or non-determinism — all bugs worth crashing on).

The snapshot is authoritative for state; the journal is authoritative for
what was already observed. Together they give the chaos harness
(:mod:`repro.serving.chaos`) its equivalence oracle.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np

from repro.utils.io import atomic_write

#: Bump when the snapshot layout changes; restore refuses other formats.
SNAPSHOT_FORMAT = 1


class CheckpointError(RuntimeError):
    """A snapshot could not be read, or does not fit this engine."""


class JournalReplayError(CheckpointError):
    """A resumed run diverged from the journal written before the crash."""


class SimulatedCrash(RuntimeError):
    """Raised by the engine's chaos hook (``crash_after_events``).

    Models a process dying at an event boundary: no flush, no final
    snapshot, no cleanup beyond what the OS would do. The chaos harness
    catches it and exercises the restore path.
    """


def journal_path(snapshot_path: str | os.PathLike) -> str:
    """The journal that rides along with ``snapshot_path``."""
    return os.fspath(snapshot_path) + ".journal"


def jsonable(value):
    """Normalize an event payload to pure-JSON types.

    Tuples become lists and NumPy scalars become Python scalars, so an
    event compares equal (``==``) to its own journal round-trip — the
    property the replay check in :meth:`ServingEngine.restore` relies on.
    Python's ``json`` emits shortest-roundtrip float literals, so float
    equality after the round-trip is exact, not approximate.
    """
    if isinstance(value, (tuple, list)):
        return [jsonable(v) for v in value]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    return value


class Journal:
    """Append-only JSONL event journal with truncate-on-restore.

    One JSON array per line, one line per emitted event. ``append`` writes
    and flushes (the OS has the bytes even if we die); ``sync`` fsyncs
    (the *disk* has them — called at snapshot boundaries so the journal is
    never behind the snapshot that references it).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._handle = None
        self.entries = 0

    def open(self, truncate_to: int | None = None) -> "Journal":
        """Open for appending; ``truncate_to`` first rewrites the file to
        its first that-many entries (the restore path discarding the
        post-snapshot tail it is about to regenerate)."""
        if truncate_to is not None:
            kept = self.read()[:truncate_to]
            with atomic_write(self.path, mode="w") as handle:
                for entry in kept:
                    handle.write(json.dumps(entry) + "\n")
            self.entries = len(kept)
        else:
            self.entries = 0
            with open(self.path, "w", encoding="utf-8"):
                pass
        self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def append(self, event) -> None:
        if self._handle is None:
            raise CheckpointError("journal is not open")
        self._handle.write(json.dumps(jsonable(event)) + "\n")
        self._handle.flush()
        self.entries += 1

    def sync(self) -> None:
        if self._handle is not None:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def read(self) -> list:
        """All journal entries currently on disk (tolerates a torn final
        line — the one write a crash can actually interrupt)."""
        if not os.path.exists(self.path):
            return []
        entries = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # torn tail: everything before it is intact
        return entries


def write_snapshot(path: str | os.PathLike, payload: dict) -> None:
    """Atomically persist one snapshot payload (pickle, temp + replace)."""
    payload = dict(payload)
    payload["format"] = SNAPSHOT_FORMAT
    with atomic_write(path) as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def read_snapshot(path: str | os.PathLike) -> dict:
    """Load a snapshot written by :func:`write_snapshot`."""
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {os.fspath(path)!r}: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} has unsupported format "
            f"{payload.get('format') if isinstance(payload, dict) else '?'!r} "
            f"(this build reads format {SNAPSHOT_FORMAT})"
        )
    return payload
