"""Chaos harness: kill the engine at event boundaries, restore, compare.

The checkpoint subsystem's keystone claim is an *equivalence*: a run that is
killed at an arbitrary event boundary and resumed from its latest snapshot
(+ journal replay) produces a :class:`ServingLog` bit-identical to a run
that was never interrupted. This module turns that claim into an executable
oracle:

* :func:`run_with_crashes` drives a run to completion through a seeded
  sequence of simulated crashes — each leg runs until
  :class:`SimulatedCrash` fires at a random event boundary, then the next
  leg restores from the snapshot on disk. The crash points come from a
  dedicated ``numpy`` Generator seeded by the caller, so a failing sequence
  is reproducible from its seed.
* :func:`assert_serving_logs_equal` is the strict comparison: every array
  bitwise-equal (NaNs aligned), every decision equal, every counter equal.
  ``decision_time`` is excluded by default because learned controllers
  measure it with a wall clock — the one field of a run that is *allowed*
  to differ across processes.

Both are plain library code (no pytest dependency) so the CLI and notebooks
can run the same drill; ``tests/serving/test_chaos.py`` wires them to the
``chaos`` marker.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.serving.checkpoint import SimulatedCrash
from repro.serving.engine import ServingEngine
from repro.serving.log import ServingLog

__all__ = [
    "SimulatedCrash",
    "assert_serving_logs_equal",
    "run_with_crashes",
]


def run_with_crashes(
    engine_factory: Callable[[], ServingEngine],
    timestamps: np.ndarray,
    checkpoint_path: str | os.PathLike,
    n_crashes: int = 3,
    seed: int = 0,
    checkpoint_every: int = 64,
    max_events: int | None = None,
    record_trace: bool = False,
    **run_kwargs,
) -> tuple[ServingLog, list[int]]:
    """Serve ``timestamps`` to completion through ``n_crashes`` kill points.

    ``engine_factory`` must build a *fresh*, identically-configured engine
    per leg — exactly what a restarted process would do. The first leg is a
    normal :meth:`ServingEngine.run` with checkpointing on; each subsequent
    leg is a :meth:`ServingEngine.restore` from the snapshot the previous
    leg left behind. Crash points are drawn uniformly over the whole run's
    event count (estimated from an uninterrupted probe when ``max_events``
    is not given), sorted, deduplicated, and injected via the engine's
    ``crash_after_events`` hook; draws that fall after the run ends simply
    never fire and that leg completes.

    Returns the final (completed) log and the list of event counts at which
    the run was actually killed.
    """
    if n_crashes < 0:
        raise ValueError(f"n_crashes must be >= 0, got {n_crashes}")
    if max_events is None:
        # Probe leg: same engine config, no checkpointing, just to learn how
        # many events the run processes so crash draws span all of it.
        max_events = engine_factory().run(
            timestamps, record_trace=False, **run_kwargs
        ).n_events
    rng = np.random.default_rng(seed)
    crash_points = sorted(
        set(int(v) for v in rng.integers(1, max(2, max_events), n_crashes))
    )
    crashes_hit: list[int] = []
    remaining = list(crash_points)
    crash_after = remaining.pop(0) if remaining else None
    try:
        log = engine_factory().run(
            timestamps,
            record_trace=record_trace,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            crash_after_events=crash_after,
            **run_kwargs,
        )
    except SimulatedCrash:
        crashes_hit.append(crash_after)
        log = None
    while log is None:
        # Crash points are absolute event counts; the restored state resumes
        # its events_processed counter from the snapshot, so the next (larger)
        # point fires on the resumed leg without any re-basing.
        next_point = remaining.pop(0) if remaining else None
        try:
            log = engine_factory().restore(
                checkpoint_path, crash_after_events=next_point
            )
        except SimulatedCrash:
            crashes_hit.append(next_point)
            log = None
    return log, crashes_hit


def assert_serving_logs_equal(
    a: ServingLog,
    b: ServingLog,
    compare_decision_times: bool = False,
) -> None:
    """Assert two :class:`ServingLog`\\ s are bit-identical.

    Raises :class:`AssertionError` naming the first differing field.
    ``decision_time`` is skipped unless ``compare_decision_times`` — it is
    measured with a wall clock, the single legitimately non-deterministic
    value in a log.
    """
    array_fields = (
        "arrival_times", "latencies", "shed", "failed", "dispatch_times",
        "start_times", "batch_sizes", "batch_costs", "batch_cold",
        "batch_memory", "batch_retries",
    )
    for name in array_fields:
        x, y = getattr(a, name), getattr(b, name)
        if x.shape != y.shape or not np.array_equal(x, y, equal_nan=True):
            raise AssertionError(f"ServingLog.{name} differs: {x!r} != {y!r}")
    optional_array_fields = ("hedged", "failed_over")
    for name in optional_array_fields:
        x, y = getattr(a, name), getattr(b, name)
        if (x is None) != (y is None):
            raise AssertionError(
                f"ServingLog.{name} present in one log only"
            )
        if x is not None and (
            x.shape != y.shape or not np.array_equal(x, y)
        ):
            raise AssertionError(f"ServingLog.{name} differs: {x!r} != {y!r}")
    scalar_fields = (
        "name", "trace", "slo", "reconfigurations", "drift_triggers",
        "prediction_drift_triggers", "retrains", "shed_batches",
        "cold_starts", "warm_starts", "expired_containers",
        "evicted_containers", "n_retries", "n_failed", "sequence_length",
        "n_events", "guardrail_trips", "guardrail_restores",
        "guardrail_probes", "guardrail_suppressed", "guardrail_state",
        "outage_denied", "crashed_containers", "crash_requeued",
        "straggler_batches", "cold_retries", "cold_retry_exhausted",
        "hedges", "hedge_wins", "hedge_denied", "hedge_cost",
        "brownout_shed", "failover_batches",
    )
    for name in scalar_fields:
        x, y = getattr(a, name), getattr(b, name)
        if x != y:
            raise AssertionError(f"ServingLog.{name} differs: {x!r} != {y!r}")
    if len(a.decisions) != len(b.decisions):
        raise AssertionError(
            f"decision counts differ: {len(a.decisions)} != {len(b.decisions)}"
        )
    for i, (da, db) in enumerate(zip(a.decisions, b.decisions)):
        fields = ["time", "reason", "config", "degraded", "applied_at",
                  "predicted_p95"]
        if compare_decision_times:
            fields.append("decision_time")
        for name in fields:
            x, y = getattr(da, name), getattr(db, name)
            if x != y:
                raise AssertionError(
                    f"decisions[{i}].{name} differs: {x!r} != {y!r}"
                )
    if (a.event_trace is None) != (b.event_trace is None):
        raise AssertionError("one log has an event trace, the other does not")
    if a.event_trace is not None and a.event_trace != b.event_trace:
        for i, (ea, eb) in enumerate(zip(a.event_trace, b.event_trace)):
            if ea != eb:
                raise AssertionError(
                    f"event_trace[{i}] differs: {ea!r} != {eb!r}"
                )
        raise AssertionError(
            f"event trace lengths differ: {len(a.event_trace)} != "
            f"{len(b.event_trace)}"
        )
