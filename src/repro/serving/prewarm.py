"""Predictive warm-pool prewarming from the fitted arrival models.

The warm pool (:mod:`repro.serving.pool`) is reactive: a container exists
only because a past batch cold-started it, so every burst front pays the
full cold-start storm the cost model penalizes. This module closes the
loop with the forecasting machinery the repo already owns — the policy
periodically estimates the near-future arrival rate, converts it into a
target warm-container count for the active ``(M, B, T)`` deployment, and
asks the pool to speculatively provision (or retire) the difference ahead
of demand.

Two pieces, both deterministic and stateless between ticks:

* **Rate forecasters** — interchangeable estimators of the mean arrival
  rate over ``[now, now + horizon]``:

  - :class:`EmpiricalRateForecaster` — the windowed fallback: recent
    arrivals over their span, no model required;
  - :class:`NHPPRateForecaster` — a fitted NHPP rate profile
    (:func:`repro.arrival.nhpp.diurnal_rate` or any callable), averaged
    over the horizon;
  - :class:`MAPRateForecaster` — a fitted MMPP/MAP
    (:class:`repro.arrival.map_process.MAP`): the phase distribution is
    filtered along the recent inter-arrivals, then the conditional rate is
    averaged over the horizon as the phase relaxes toward stationarity;
  - :class:`OracleForecaster` — perfect future knowledge of the trace,
    the upper bound every honest evaluation must report alongside.

* :class:`PrewarmPolicy` — pure planning: forecast → Little's-law target
  (``ceil(headroom · λ̂ · s(M, B) / B)``) → provision/retire deltas. The
  serving engine owns the tick cadence, the pool mutation, and the cost
  accounting, so the policy itself carries no mutable run state — which is
  what keeps prewarming checkpoint-safe for free (the next tick lives on
  the event heap, the counters in the run state, both already snapshotted).

Statelessness also means no randomness: every forecaster is a pure
function of its inputs, preserving the engine's bit-identical determinism
and replay guarantees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arrival.map_process import MAP


class RateForecaster:
    """Interface: mean arrival rate expected over ``[now, now + horizon]``.

    ``recent_interarrivals`` are the live inter-arrival times (most recent
    last); ``now`` is the current simulated time. Implementations must be
    pure functions of their constructor arguments and these inputs —
    no internal mutable state, no randomness — so the prewarmer stays
    deterministic and checkpoint-safe.
    """

    def forecast_rate(
        self, recent_interarrivals: np.ndarray, now: float, horizon_s: float
    ) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class EmpiricalRateForecaster(RateForecaster):
    """Windowed empirical rate: recent arrival count over its time span.

    The model-free fallback — it assumes the immediate past persists over
    the horizon, which is exactly the assumption that fails at a burst
    front (and why the fitted forecasters exist).
    """

    def forecast_rate(
        self, recent_interarrivals: np.ndarray, now: float, horizon_s: float
    ) -> float:
        x = np.asarray(recent_interarrivals, dtype=float)
        if x.size == 0:
            return 0.0
        span = float(x.sum())
        if span <= 0.0 or not math.isfinite(span):
            return 0.0
        return x.size / span


@dataclass(frozen=True)
class NHPPRateForecaster(RateForecaster):
    """Mean of a fitted NHPP rate profile ``λ(t)`` over the horizon.

    ``rate_fn`` is the same vectorized signature
    :func:`repro.arrival.nhpp.sample_nhpp` consumes (an array of times to
    an array of rates), so a profile fitted for generation doubles as the
    forecast with no adaptation.
    """

    rate_fn: Callable[[np.ndarray], np.ndarray]
    grid_points: int = 16

    def forecast_rate(
        self, recent_interarrivals: np.ndarray, now: float, horizon_s: float
    ) -> float:
        grid = np.linspace(now, now + horizon_s, max(2, self.grid_points))
        rates = np.asarray(self.rate_fn(grid), dtype=float)
        return float(np.mean(rates))


def _expm(a: np.ndarray) -> np.ndarray:
    """Matrix exponential by scaling-and-squaring of a truncated series.

    The MAP matrices here are tiny (order 2–4), so a 16-term Taylor series
    after halving to unit norm is exact to double precision — and keeps the
    forecaster on plain NumPy.
    """
    norm = float(np.linalg.norm(a, ord=np.inf))
    k = max(0, int(math.ceil(math.log2(norm))) + 1) if norm > 1.0 else 0
    b = a / (2.0**k)
    out = np.eye(a.shape[0])
    term = np.eye(a.shape[0])
    for i in range(1, 17):
        term = term @ b / i
        out = out + term
    for _ in range(k):
        out = out @ out
    return out


@dataclass(frozen=True)
class MAPRateForecaster(RateForecaster):
    """Conditional rate of a fitted MMPP/MAP given the recent arrivals.

    Standard MAP filtering: starting from the stationary post-arrival
    phase distribution, each observed inter-arrival ``x`` updates the
    phase belief ``p ← p · e^{D0 x} · D1`` (renormalized). The forecast is
    the conditional arrival rate ``p · e^{Qt} · λ`` (``Q = D0 + D1``,
    ``λ`` the per-phase rates ``D1·𝟙``) averaged over a grid on the
    horizon — capturing both *which regime we are in now* and *how fast
    the regime mixes away* over the look-ahead.
    """

    process: "MAP"
    filter_window: int = 64
    grid_points: int = 8

    def forecast_rate(
        self, recent_interarrivals: np.ndarray, now: float, horizon_s: float
    ) -> float:
        d0 = self.process.d0
        d1 = self.process.d1
        p = np.asarray(self.process.arrival_phase_distribution(), dtype=float)
        x = np.asarray(recent_interarrivals, dtype=float)
        for gap in x[-self.filter_window:]:
            if not (math.isfinite(gap) and gap >= 0.0):
                continue
            p = p @ _expm(d0 * gap) @ d1
            total = float(p.sum())
            if total <= 0.0 or not math.isfinite(total):
                p = np.asarray(
                    self.process.arrival_phase_distribution(), dtype=float
                )
            else:
                p = p / total
        lam = d1.sum(axis=1)
        q = d0 + d1
        n_grid = max(2, self.grid_points)
        step = _expm(q * (horizon_s / (n_grid - 1)))
        rates = []
        for _ in range(n_grid):
            rates.append(float(p @ lam))
            p = p @ step
        return float(np.mean(rates))


class OracleForecaster(RateForecaster):
    """Perfect future knowledge: the realized rate over the horizon.

    Holds the full arrival trace and simply counts the arrivals that *will*
    land in ``(now, now + horizon]``. Not a policy anyone can deploy — it
    is the upper bound that tells you how much of the cold-start gap is
    forecasting error versus irreducible provisioning lag.
    """

    def __init__(self, timestamps: np.ndarray) -> None:
        self.timestamps = np.asarray(timestamps, dtype=float)

    def forecast_rate(
        self, recent_interarrivals: np.ndarray, now: float, horizon_s: float
    ) -> float:
        ts = self.timestamps
        lo = int(np.searchsorted(ts, now, side="right"))
        hi = int(np.searchsorted(ts, now + horizon_s, side="right"))
        return (hi - lo) / horizon_s


@dataclass(frozen=True)
class PrewarmPlan:
    """One tick's decision: the forecast and the resulting pool deltas."""

    rate: float
    target: int
    provision: int
    retire: int


class PrewarmPolicy:
    """Forecast → per-tier warm-container target → provision/retire deltas.

    Pure planning over inputs the engine supplies each tick; the policy
    holds only the frozen :class:`~repro.serving.config.PrewarmConfig`.
    The target is Little's law on batches: arrivals at rate ``λ̂`` form
    batches of ``B`` that each occupy a container for ``s(M, B)`` seconds,
    so sustaining the forecast needs ``λ̂ · s / B`` concurrent containers;
    ``headroom`` scales that up for burst insurance at provisioning cost.
    """

    def __init__(self, config) -> None:
        self.config = config

    def target_containers(
        self, rate: float, batch_size: int, service_time: float
    ) -> int:
        if not (rate > 0.0 and math.isfinite(rate)):
            return 0
        return int(
            math.ceil(self.config.headroom * rate * service_time / batch_size)
        )

    def plan(
        self,
        recent_interarrivals: np.ndarray,
        now: float,
        horizon_s: float,
        batch_size: int,
        service_time: float,
        live: int,
        idle: int,
    ) -> PrewarmPlan:
        """Plan one tick for the active tier.

        ``live`` counts busy + warm containers at the tier, ``idle`` the
        warm subset — surplus is retired only out of the idle containers
        (and only when the config opts in).
        """
        cfg = self.config
        rate = float(
            cfg.forecaster.forecast_rate(recent_interarrivals, now, horizon_s)
        )
        if not math.isfinite(rate) or rate < 0.0:
            rate = 0.0
        target = self.target_containers(rate, batch_size, service_time)
        provision = max(0, target - live)
        if cfg.max_per_tick is not None:
            provision = min(provision, cfg.max_per_tick)
        retire = min(idle, max(0, live - target)) if cfg.retire else 0
        return PrewarmPlan(
            rate=rate, target=target, provision=provision, retire=retire
        )
