"""Fleet serving: N endpoints, one deterministic event loop (PR 6).

The single-endpoint :class:`~repro.serving.engine.ServingEngine` optimizes
one model against one SLO. The real serverless setting — the paper's §VI
(MBS) and HarmonyBatch — is heterogeneous: several request classes with
distinct SLOs sharing platform capacity. This module generalizes the
engine into that setting:

* :class:`EndpointSpec` — one tenant: its model/service profile, initial
  ``(M, B, T)``, per-class SLO + percentile, and traffic source (a named
  stream passed to :meth:`FleetEngine.run`, or a ``share`` of one trace
  split by :func:`split_by_shares`);
* :class:`FleetBudget` / :class:`BudgetedWarmPool` — per-endpoint warm
  pools drawing on one fleet-wide container budget (the account-level
  concurrency limit): a cold start anywhere charges the shared cap, and
  when the fleet is at the cap the globally least-recently-freed idle
  container — whichever tenant owns it — is evicted to make room;
* :class:`FleetScheduler` — cross-tenant arbitration of ``(M, B, T)``:
  cost-min subject to *every* endpoint's SLO, reusing the decomposed
  multi-class optimizer (:func:`repro.batching.multiclass
  .optimize_multiclass`) per memory tier over the endpoints' live
  arrival histories. When the scheduler abstains (insufficient history),
  each lane's own chooser keeps deciding — the per-endpoint fallback;
* :class:`FleetEngine` — N lane engines merged into **one** event loop:
  each lane is a full :class:`ServingEngine` run state, and the fleet
  repeatedly steps whichever lane owns the globally next event (ordered
  by ``(time, priority, lane index)`` — exactly the ranking ``_step``
  itself uses, so with a single endpoint and an unconstrained budget the
  fleet reproduces ``ServingEngine`` bit-for-bit: latencies, costs, and
  event trace, faults on and off. That equivalence is this module's
  keystone, pinned in tier-1).

Determinism: lanes share no RNG (each endpoint has its own platform, and
fault draws are keyed by per-lane batch index), the budget's eviction is
a pure ``min`` over ``(free_at, lane, container_id)``, and the scheduler
plans on *fresh fault-free platforms* so planning never consumes a live
generator. Telemetry is namespaced ``serving.<endpoint>.*`` per lane, so
two endpoints never share a counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.batching.config import BatchConfig
from repro.batching.multiclass import RequestClass, optimize_multiclass
from repro.serverless.outages import OutageModel
from repro.serverless.platform import ServerlessPlatform
from repro.serving.config import (
    DriftConfig,
    GenerationConfig,
    PredictionDriftConfig,
    PrewarmConfig,
)
from repro.serving.degrade import BrownoutConfig, DegradeConfig, FailoverConfig
from repro.serving.engine import _P_DECISION, ServingEngine, _RunContext
from repro.serving.guardrail import GuardrailConfig
from repro.serving.log import ServingLog
from repro.serving.pool import WarmPool, WarmPoolConfig
from repro.telemetry.events import ShedEvent
from repro.telemetry.metrics import get_registry
from repro.telemetry.timing import stage_timers
from repro.utils.validation import check_sorted


# --------------------------------------------------------------- endpoints
@dataclass(frozen=True)
class EndpointSpec:
    """One fleet tenant: a model endpoint with its own SLO and traffic.

    * ``name`` — endpoint identifier; becomes the telemetry namespace
      ``serving.<name>.*``, so it must not contain ``.``;
    * ``config`` — the initial ``(M, B, T)`` deployment;
    * ``slo`` / ``percentile`` — the endpoint's latency target;
    * ``platform`` — the endpoint's service-time/pricing/fault model
      (``None`` = a default :class:`ServerlessPlatform`);
    * ``chooser`` — optional per-endpoint controller (the fallback when
      the fleet scheduler abstains); ``decision_interval_s`` paces it;
    * ``share`` — this endpoint's fraction of a single shared trace when
      :meth:`FleetEngine.run` is given one array instead of per-endpoint
      streams (see :func:`split_by_shares`);
    * ``pool`` / ``drift`` / ``prediction`` / ``guardrail`` /
      ``prewarm`` / ``generation`` — the same grouped config dataclasses
      the single engine takes (``generation`` turns the lane into a
      token-streaming endpoint; lanes mix freely, so one fleet can serve
      a chat endpoint continuously batched next to request-level lanes);
    * ``priority`` — the brownout tier (PR 10): under fleet-wide
      overload, lower tiers shed first, and the failover pass serves
      higher tiers first;
    * ``outages`` / ``degrade`` — the lane's infrastructure-fault model
      and graceful-degradation stack, exactly the single engine's
      ``ServingEngine(outages=..., degrade=...)`` knobs.
    """

    name: str
    config: BatchConfig
    slo: float = 0.1
    percentile: float = 95.0
    platform: ServerlessPlatform | None = None
    chooser: object | None = None
    decision_interval_s: float | None = None
    min_history: int = 32
    share: float | None = None
    pool: WarmPoolConfig | None = None
    drift: DriftConfig | None = None
    prediction: PredictionDriftConfig | None = None
    guardrail: GuardrailConfig | None = None
    prewarm: PrewarmConfig | None = None
    generation: GenerationConfig | None = None
    priority: int = 0
    outages: OutageModel | None = None
    degrade: DegradeConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("endpoint name must be non-empty")
        if "." in self.name:
            raise ValueError(
                f"endpoint name {self.name!r} must not contain '.' "
                "(it namespaces telemetry as serving.<name>.*)"
            )
        if self.slo <= 0:
            raise ValueError(f"endpoint {self.name!r}: slo must be > 0, "
                             f"got {self.slo}")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"endpoint {self.name!r}: percentile must be in (0, 100], "
                f"got {self.percentile}"
            )
        if self.share is not None and not 0.0 < self.share <= 1.0:
            raise ValueError(
                f"endpoint {self.name!r}: share must be in (0, 1], "
                f"got {self.share}"
            )


def split_by_shares(
    timestamps: np.ndarray,
    endpoints: list[EndpointSpec],
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Split one arrival trace across endpoints by their ``share`` weights.

    Each arrival is assigned independently (a thinned Poisson process
    stays Poisson), with probabilities proportional to the shares. The
    split is a pure function of ``(timestamps, shares, seed)`` — it uses
    its own seeded generator, never global state.
    """
    ts = check_sorted(np.asarray(timestamps, dtype=float), "timestamps")
    missing = [e.name for e in endpoints if e.share is None]
    if missing:
        raise ValueError(
            f"endpoints without a share cannot split a single trace: {missing}"
        )
    shares = np.asarray([e.share for e in endpoints], dtype=float)
    edges = np.cumsum(shares) / shares.sum()
    rng = np.random.default_rng(seed)
    lane = np.searchsorted(edges, rng.random(ts.size), side="right")
    return {e.name: ts[lane == i] for i, e in enumerate(endpoints)}


# ------------------------------------------------------------ shared budget
class FleetBudget:
    """A fleet-wide cap on live containers across all endpoint pools.

    ``max_containers`` bounds busy + warm-idle containers summed over
    every registered pool (``None`` = unbounded, in which case the budget
    never denies anything). A pool asking to provision a cold container
    when the fleet is at the cap triggers a *global* eviction: the
    least-recently-freed idle container anywhere — ties broken by lane
    registration order, then container id — is reclaimed, whichever
    tenant owns it. With every container busy fleet-wide, admission is
    denied and the batch queues in its own lane.

    A budget is built fresh per :meth:`FleetEngine.run` (pools register
    at pool construction), so runs never share eviction state.
    """

    def __init__(self, max_containers: int | None = None) -> None:
        if max_containers is not None and max_containers < 1:
            raise ValueError(
                f"max_containers must be >= 1 or None, got {max_containers}"
            )
        self.max_containers = max_containers
        self._pools: list[WarmPool] = []

    def register(self, pool: WarmPool) -> None:
        self._pools.append(pool)

    def live_containers(self, now: float) -> int:
        """Busy + warm-idle containers fleet-wide (after lazy expiry)."""
        return sum(p.live_containers(now) for p in self._pools)

    def admit_cold(self, now: float) -> bool:
        """May a new container be provisioned anywhere in the fleet?"""
        if self.max_containers is None:
            return True
        for pool in self._pools:
            pool._expire(now)
        live = sum(len(p._containers) for p in self._pools)
        if live < self.max_containers:
            return True
        idle = [
            (c.free_at, lane, c.container_id, pool)
            for lane, pool in enumerate(self._pools)
            for c in pool._containers.values()
            if c.free_at <= now
        ]
        if not idle:
            return False
        _, _, victim_id, victim_pool = min(idle, key=lambda x: x[:3])
        del victim_pool._containers[victim_id]
        victim_pool.stats.evicted += 1
        return True


class BudgetedWarmPool(WarmPool):
    """A :class:`WarmPool` whose cold starts charge a shared fleet budget."""

    def __init__(
        self,
        config: WarmPoolConfig | None,
        cold_start,
        budget: FleetBudget,
        outage=None,
    ) -> None:
        super().__init__(config, cold_start, outage=outage)
        self.budget = budget
        budget.register(self)

    def _admit_cold(self, now: float) -> bool:
        return self.budget.admit_cold(now)


class _LaneEngine(ServingEngine):
    """A per-endpoint engine whose pool can draw on a shared budget.

    With ``fleet_budget`` unset it *is* a ``ServingEngine`` (the base
    pool, no budget checks) — the keystone equivalence path.
    """

    fleet_budget: FleetBudget | None = None

    def _make_pool(self) -> WarmPool:
        if self.fleet_budget is None:
            return super()._make_pool()
        return BudgetedWarmPool(
            self.pool_config, self.platform.cold_start, self.fleet_budget,
            outage=self.outage_config,
        )


# --------------------------------------------------------------- scheduler
class FleetScheduler:
    """Cross-tenant ``(M, B, T)`` arbitration via the MBS decomposition.

    At each fleet decision tick the scheduler sees every endpoint's
    recent interarrival history, rebuilds them as
    :class:`~repro.batching.multiclass.RequestClass` streams, and runs
    the decomposed multi-class optimizer: per memory tier each endpoint
    independently picks its cheapest SLO-feasible ``(B, T)``, and the
    cheapest tier where every endpoint is feasible wins (cost-min subject
    to all SLOs). The plan is one shared ``M`` with per-endpoint
    ``(B, T)`` — exactly the MBS deployment shape.

    Planning runs on **fresh fault-free platforms** cloned from each
    endpoint's profile/pricing: the live platforms' generators must never
    be consumed by what-if simulation, or the fleet would stop being
    bit-reproducible. :meth:`decide` abstains (returns ``None``) while
    any endpoint's history is shorter than ``min_history`` — the lanes'
    own choosers remain the fallback controllers.
    """

    def __init__(
        self,
        memories: tuple[float, ...] = (512.0, 1024.0, 2048.0, 4096.0),
        batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
        timeouts: tuple[float, ...] = (0.0, 0.025, 0.05, 0.1),
        min_history: int = 32,
    ) -> None:
        if not memories or not batch_sizes or not timeouts:
            raise ValueError("memories, batch_sizes, timeouts must be non-empty")
        if min_history < 1:
            raise ValueError(f"min_history must be >= 1, got {min_history}")
        self.memories = tuple(memories)
        self.batch_sizes = tuple(batch_sizes)
        self.timeouts = tuple(timeouts)
        self.min_history = min_history

    @staticmethod
    def _planning_platform(platform: ServerlessPlatform) -> ServerlessPlatform:
        """A fault-free, cold-start-free clone for what-if simulation."""
        return ServerlessPlatform(
            profile=platform.profile, pricing=platform.pricing
        )

    def decide(
        self,
        histories: dict[str, np.ndarray],
        endpoints: list[EndpointSpec],
    ) -> dict[str, BatchConfig] | None:
        """Arbitrate one plan, or ``None`` when history is insufficient."""
        if any(
            histories.get(e.name) is None
            or histories[e.name].size < self.min_history
            for e in endpoints
        ):
            return None
        classes = []
        platforms = {}
        for e in endpoints:
            hist = np.asarray(histories[e.name], dtype=float)
            ts = np.concatenate([[0.0], np.cumsum(hist)])
            classes.append(RequestClass(
                name=e.name, timestamps=ts, slo=e.slo,
                percentile=e.percentile, priority=e.priority,
            ))
            platforms[e.name] = self._planning_platform(
                e.platform if e.platform is not None else ServerlessPlatform()
            )
        config, _result = optimize_multiclass(
            classes,
            platforms[endpoints[0].name],
            memories=self.memories,
            batch_sizes=self.batch_sizes,
            timeouts=self.timeouts,
            platforms=platforms,
        )
        return {e.name: config.batch_config(e.name) for e in endpoints}


# ------------------------------------------------------------------- fleet
@dataclass
class FleetLog:
    """Per-endpoint :class:`ServingLog`\\ s plus fleet-level aggregates."""

    name: str
    logs: dict[str, ServingLog]
    fleet_decisions: int = 0
    max_containers: int | None = None

    def __getitem__(self, endpoint: str) -> ServingLog:
        return self.logs[endpoint]

    @property
    def endpoints(self) -> list[str]:
        return list(self.logs)

    @property
    def n_requests(self) -> int:
        return sum(log.n_requests for log in self.logs.values())

    @property
    def n_served(self) -> int:
        return sum(log.n_served for log in self.logs.values())

    @property
    def n_shed(self) -> int:
        return sum(log.n_shed for log in self.logs.values())

    @property
    def total_cost(self) -> float:
        return float(sum(log.total_cost for log in self.logs.values()))

    @property
    def cost_per_request(self) -> float:
        served = self.n_served
        return self.total_cost / served if served else float("nan")


class FleetEngine:
    """N endpoint engines merged into one deterministic event loop.

    Parameters
    ----------
    endpoints:
        The tenants. Each becomes an independent lane — its own
        :class:`BatchingBuffer`, warm pool, chooser, and telemetry
        namespace ``serving.<name>.*``.
    max_containers:
        The shared fleet-wide container budget (``None`` = unconstrained;
        each lane then runs the plain per-endpoint pool, which is the
        keystone-equivalence configuration).
    scheduler:
        Optional :class:`FleetScheduler` arbitrating configs across
        tenants every ``scheduler_interval_s`` of simulated time. When it
        abstains, lanes fall back to their own choosers.
    scheduler_interval_s:
        Cadence of fleet decision ticks (required with a scheduler).
    brownout:
        Optional :class:`~repro.serving.degrade.BrownoutConfig` (PR 10):
        when the total queued-batch backlog across all lanes exceeds its
        cap, the newest queued batch of the lowest-priority backlogged
        lane is shed until the backlog fits — controlled load shedding
        that starves the cheap tier to keep the premium tier inside SLO.
    failover:
        Optional :class:`~repro.serving.degrade.FailoverConfig` (PR 10):
        after every fleet step, a starved lane (queue at least
        ``min_queue`` deep) drains batches onto idle compatible donors —
        lanes at the same memory tier with empty queues — highest
        priority first. The owner keeps the accounting; the donor hosts
        the container.
    """

    def __init__(
        self,
        endpoints: list[EndpointSpec],
        max_containers: int | None = None,
        scheduler: FleetScheduler | None = None,
        scheduler_interval_s: float | None = None,
        split_seed: int = 0,
        brownout: BrownoutConfig | None = None,
        failover: FailoverConfig | None = None,
    ) -> None:
        if not endpoints:
            raise ValueError("endpoints must be non-empty")
        names = [e.name for e in endpoints]
        if len(set(names)) != len(names):
            raise ValueError(f"endpoint names must be unique, got {names}")
        if max_containers is not None and max_containers < 1:
            raise ValueError(
                f"max_containers must be >= 1 or None, got {max_containers}"
            )
        if scheduler is not None and (
            scheduler_interval_s is None or scheduler_interval_s <= 0
        ):
            raise ValueError(
                "scheduler_interval_s must be > 0 when a scheduler is set"
            )
        self.endpoints = list(endpoints)
        self.max_containers = max_containers
        self.scheduler = scheduler
        self.scheduler_interval_s = scheduler_interval_s
        self.split_seed = split_seed
        self.brownout = brownout
        self.failover = failover

    # ----------------------------------------------------------------- run
    def run(
        self,
        traffic: dict[str, np.ndarray] | np.ndarray,
        name: str = "fleet",
        trace_name: str = "trace",
        histories: dict[str, np.ndarray] | None = None,
        record_trace: bool = False,
    ) -> FleetLog:
        """Serve every endpoint's stream in one merged event loop.

        ``traffic`` is either ``{endpoint: timestamps}`` or a single
        sorted array, which is split across the endpoints by their
        ``share`` weights (:func:`split_by_shares`, seeded with the
        engine's ``split_seed``). ``histories`` optionally seeds each
        lane's observation window, as ``ServingEngine.run(history=...)``
        does.
        """
        if isinstance(traffic, dict):
            unknown = set(traffic) - {e.name for e in self.endpoints}
            if unknown:
                raise ValueError(
                    f"traffic for unknown endpoints: {sorted(unknown)}"
                )
            streams = {
                e.name: np.asarray(traffic.get(e.name, []), dtype=float)
                for e in self.endpoints
            }
        else:
            streams = split_by_shares(traffic, self.endpoints, self.split_seed)

        budget = (
            FleetBudget(self.max_containers)
            if self.max_containers is not None else None
        )
        registry = get_registry()
        lanes = []  # (engine, state, ctx) per endpoint, in spec order
        for spec in self.endpoints:
            eng = _LaneEngine(
                spec.config,
                platform=spec.platform,
                chooser=spec.chooser,
                slo=spec.slo,
                pool=spec.pool,
                decision_interval_s=spec.decision_interval_s,
                min_history=spec.min_history,
                drift=spec.drift,
                prediction=spec.prediction,
                guardrail=spec.guardrail,
                prewarm=spec.prewarm,
                generation=spec.generation,
                outages=spec.outages,
                degrade=spec.degrade,
                metrics_prefix=f"serving.{spec.name}",
            )
            eng.fleet_budget = budget
            # Set before _init_state so the lane allocates its
            # failed_over mask and counter.
            eng._failover_enabled = self.failover is not None
            ts = check_sorted(streams[spec.name], f"traffic[{spec.name!r}]")
            history = histories.get(spec.name) if histories else None
            st = eng._init_state(
                ts, name=f"{name}.{spec.name}", trace_name=trace_name,
                history=history, record_trace=record_trace,
            )
            ctx = _RunContext(
                registry=registry,
                timers=stage_timers(f"{eng.metrics_prefix}.perf"),
            )
            lanes.append((eng, st, ctx))
        if self.failover is not None:
            # Donor releases route through the owner lane's completion
            # handler, which needs every lane's pool by index.
            pools = [st.pool for _eng, st, _ctx in lanes]
            for eng, _st, _ctx in lanes:
                eng._donor_pools = pools

        first_arrivals = [
            float(st.ts[0]) for _, st, _ in lanes if st.n
        ]
        next_tick = (
            min(first_arrivals) + self.scheduler_interval_s
            if self.scheduler is not None and first_arrivals else None
        )
        drive = self._drive_lanes_scan if self._scan_lanes else self._drive_lanes
        fleet_decisions = drive(lanes, budget, next_tick)
        for _eng, _st, ctx in lanes:
            ctx.timers.flush()

        logs = {
            spec.name: eng._finish(st)
            for spec, (eng, st, _ctx) in zip(self.endpoints, lanes)
        }
        return FleetLog(
            name=name, logs=logs, fleet_decisions=fleet_decisions,
            max_containers=self.max_containers,
        )

    # ------------------------------------------------------------ internals
    #: When True, :meth:`run` drives lanes with the original scan-every-lane
    #: loop (:meth:`_drive_lanes_scan`). The serving benchmark flips this on
    #: a subclass to measure the heap-merged loop against its specification.
    _scan_lanes = False

    def _drive_lanes(self, lanes, budget, next_tick) -> int:
        """Heap-merged lane stepping: the fleet's next event in O(log n).

        A lane-key heap holds one entry ``(time, priority, lane, stamp)``
        per lane — the lane's own next-event key plus its index, exactly
        the ranking the scan loop minimized, so the selection (ties
        included: earlier lane first) is identical. Entries are lazily
        invalidated by a per-lane stamp: whenever a lane's key may have
        changed (it was stepped, a cross-lane drain started one of its
        queued batches, or a scheduler tick injected decisions), the stamp
        is bumped and a fresh entry pushed; stale entries are discarded as
        they surface. Bit-identity with :meth:`_drive_lanes_scan` is
        pinned by the fleet equivalence tests.
        """
        fleet_decisions = 0
        degrading = (budget is not None or self.failover is not None
                     or self.brownout is not None)
        stamps = [0] * len(lanes)
        lane_heap: list[tuple[float, int, int, int]] = []

        def rekey(i: int) -> None:
            stamps[i] += 1
            eng, st, _ctx = lanes[i]
            key = eng._next_event_key(st)
            if key is not None:
                heappush(lane_heap, (key[0], key[1], i, stamps[i]))

        for i in range(len(lanes)):
            rekey(i)

        while True:
            head = None
            while lane_heap:
                t, p, i, stamp = lane_heap[0]
                if stamp != stamps[i]:
                    heappop(lane_heap)
                    continue
                head = (t, p, i)
                break
            if next_tick is not None and (
                head is None or (next_tick, _P_DECISION) <= (head[0], head[1])
            ):
                # The fleet tick outranks lane events at the same
                # (time, priority): arbitration lands before any lane's
                # own decision of that instant.
                fleet_decisions += self._scheduler_tick(lanes, next_tick)
                next_tick = (
                    next_tick + self.scheduler_interval_s
                    if any(st.arrival_ptr < st.n for _, st, _ in lanes)
                    else None
                )
                for i in range(len(lanes)):
                    rekey(i)
                continue
            if head is None:
                break
            i = head[2]
            eng, st, ctx = lanes[i]
            eng._step(st, ctx)
            st.events_processed += 1
            if degrading:
                # A completion (or eviction headroom) in one lane can
                # unblock batches queued in another; the lanes' own
                # completion handlers only drain their own queues. The
                # failover and brownout passes run on the same cadence:
                # after every fleet step, on the stepped lane's clock.
                now = float(st.clock)
                changed = (
                    self._drain_queues(lanes, now)
                    if budget is not None else set()
                )
                if self.failover is not None:
                    changed |= self._failover_pass(lanes, now)
                if self.brownout is not None:
                    changed |= self._brownout_pass(lanes, now)
                changed.add(i)
                for j in changed:
                    rekey(j)
            else:
                rekey(i)
        return fleet_decisions

    def _drive_lanes_scan(self, lanes, budget, next_tick) -> int:
        """The original O(lanes)-per-event selection loop, kept verbatim as
        the executable specification for :meth:`_drive_lanes` and as the
        "before" side of the serving benchmark."""
        fleet_decisions = 0
        while True:
            best = None  # ((time, priority, lane), lane_index)
            for i, (eng, st, _ctx) in enumerate(lanes):
                key = eng._next_event_key(st)
                if key is not None:
                    ranked = (key[0], key[1], i)
                    if best is None or ranked < best[0]:
                        best = (ranked, i)
            if next_tick is not None and (
                best is None or (next_tick, _P_DECISION) <= best[0][:2]
            ):
                fleet_decisions += self._scheduler_tick(lanes, next_tick)
                next_tick = (
                    next_tick + self.scheduler_interval_s
                    if any(st.arrival_ptr < st.n for _, st, _ in lanes)
                    else None
                )
                continue
            if best is None:
                break
            eng, st, ctx = lanes[best[1]]
            eng._step(st, ctx)
            st.events_processed += 1
            now = float(st.clock)
            if budget is not None:
                self._drain_queues(lanes, now)
            if self.failover is not None:
                self._failover_pass(lanes, now)
            if self.brownout is not None:
                self._brownout_pass(lanes, now)
        return fleet_decisions

    def _scheduler_tick(self, lanes, now: float) -> int:
        """Run one fleet arbitration; returns 1 if a plan was applied."""
        histories = {
            spec.name: np.diff(np.asarray(st.recent_ts, dtype=float))
            for spec, (_eng, st, _ctx) in zip(self.endpoints, lanes)
        }
        plan = self.scheduler.decide(histories, self.endpoints)
        if plan is None:
            return 0
        registry = get_registry()
        if registry.enabled:
            registry.counter("fleet.scheduler_plans").inc()
        for spec, (eng, st, ctx) in zip(self.endpoints, lanes):
            eng._inject_decision(st, ctx, now, plan[spec.name], "fleet")
        return 1

    @staticmethod
    def _drain_queues(lanes, now: float) -> set[int]:
        """Start queued batches anywhere the shared budget now allows.

        Without this pass a lane whose only pending work is queued
        batches would deadlock: it has no completion events of its own,
        so nothing inside the lane would ever retry the pool. Returns the
        indices of lanes that started at least one batch — their
        next-event key may have changed, so the heap-merged loop re-keys
        exactly those.
        """
        changed: set[int] = set()
        for lane, (eng, st, ctx) in enumerate(lanes):
            while st.queue:
                memory_mb = st.active.memory_mb
                lease = st.pool.acquire(now, memory_mb)
                if lease is None:
                    break
                batch = st.queue.popleft()
                registry = ctx.registry
                if registry.enabled and lease.cold:
                    registry.histogram(
                        f"{eng.metrics_prefix}.cold_delay"
                    ).observe(lease.cold_delay)
                eng._start_batch(
                    st, ctx, batch, memory_mb, lease.cold_delay,
                    lease.cold, lease.container_id, start=now,
                )
                changed.add(lane)
        return changed

    def _failover_pass(self, lanes, now: float) -> set[int]:
        """Drain starved lanes onto idle compatible donor lanes.

        Owners (queue at least ``min_queue`` deep) are served highest
        priority first (ties: lane order); donors are lanes at the same
        active memory tier with an empty queue of their own, tried in
        lane order. The owner keeps all accounting — its latencies, its
        fault draws, its bill — while the donor's pool hosts the
        container (see ``ServingEngine._start_batch_foreign``). Returns
        the owner lanes that dispatched (their event heap changed).
        """
        min_queue = self.failover.min_queue
        changed: set[int] = set()
        owners = sorted(
            (i for i, (_eng, st, _ctx) in enumerate(lanes)
             if len(st.queue) >= min_queue),
            key=lambda i: (-self.endpoints[i].priority, i),
        )
        for o in owners:
            o_eng, o_st, o_ctx = lanes[o]
            memory_mb = o_st.active.memory_mb
            for d, (d_eng, d_st, d_ctx) in enumerate(lanes):
                if d == o or d_st.queue:
                    continue
                if d_st.active.memory_mb != memory_mb:
                    continue
                while o_st.queue:
                    lease = d_st.pool.acquire(now, memory_mb)
                    if lease is None:
                        break
                    batch = o_st.queue.popleft()
                    o_eng._start_batch_foreign(
                        o_st, o_ctx, batch, memory_mb, lease, now, d,
                        d_eng._straggler_factor(d_ctx, lease.container_id),
                    )
                    changed.add(o)
                if not o_st.queue:
                    break
        return changed

    def _brownout_pass(self, lanes, now: float) -> set[int]:
        """Shed the fleet's backlog down to the brownout cap.

        While the total queued-batch count exceeds ``max_total_queued``,
        drop the *newest* queued batch (LIFO — the oldest waiters keep
        their place) from the lowest-priority backlogged lane (ties:
        later lane first). Shedding never changes a lane's event heap, so
        the returned set only matters for bookkeeping symmetry.
        """
        cap = self.brownout.max_total_queued
        total = sum(len(st.queue) for _eng, st, _ctx in lanes)
        changed: set[int] = set()
        while total > cap:
            victim = max(
                (i for i, (_eng, st, _ctx) in enumerate(lanes) if st.queue),
                key=lambda i: (-self.endpoints[i].priority, i),
            )
            eng, st, ctx = lanes[victim]
            batch = st.queue.pop()
            i0 = batch.first_index
            st.shed[i0:i0 + batch.size] = True
            st.counters["brownout_shed"] = (
                st.counters.get("brownout_shed", 0) + batch.size
            )
            registry = ctx.registry
            if registry.enabled:
                prefix = eng.metrics_prefix
                registry.counter(f"{prefix}.degrade.brownout_shed").inc(
                    batch.size
                )
                registry.record_event(ShedEvent(
                    time=now, requests=batch.size,
                    queued_batches=len(st.queue),
                ))
            if st.trace is not None or ctx.journal is not None:
                eng._emit(st, ctx, ("brownout_shed", now, batch.size))
            changed.add(victim)
            total -= 1
        return changed
