"""Validated JSON fleet configuration (``repro serve --fleet fleet.json``).

The fleet CLI is driven by a config file instead of a kwargs explosion:
one JSON document declares the endpoints (name, initial ``(M, B, T)``,
SLO, traffic share, per-endpoint pool/controller knobs) and the
fleet-level settings (shared container budget, scheduler cadence). This
module is the hand-rolled schema for that document — every violation
raises :class:`FleetConfigError` with the *path* of the offending field
(``endpoints[1].slo: must be > 0``), which the CLI converts into an
``exit 2`` error message. Unknown keys are rejected (a typo'd knob must
not silently become a no-op).

Example::

    {
      "max_containers": 6,
      "scheduler": {"interval_s": 5.0},
      "endpoints": [
        {"name": "chat",  "memory_mb": 2048, "batch_size": 8,
         "timeout": 0.05, "slo": 0.15, "share": 0.7},
        {"name": "embed", "memory_mb": 1024, "batch_size": 16,
         "timeout": 0.02, "slo": 0.05, "share": 0.3,
         "chooser": "batch", "decision_interval_s": 10.0}
      ]
    }

:func:`load_fleet_config` parses and validates; the resulting
:class:`FleetConfig` builds a ready :class:`~repro.serving.fleet
.FleetEngine` via :meth:`FleetConfig.build`, with hooks for the CLI to
supply per-endpoint platforms and choosers.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Callable

from repro.batching.config import BatchConfig
from repro.serverless.outages import OutageModel
from repro.serving.config import GenerationConfig, PrewarmConfig
from repro.serving.degrade import (
    BrownoutConfig,
    DegradeConfig,
    FailoverConfig,
    OutageConfigError,
    validate_fleet_degrade,
    validate_outage_config,
)
from repro.serving.fleet import EndpointSpec, FleetEngine, FleetScheduler
from repro.serving.generation import (
    GenerationConfigError,
    validate_generation_config,
)
from repro.serving.pool import WarmPoolConfig
from repro.serving.prewarm import EmpiricalRateForecaster


class FleetConfigError(ValueError):
    """A fleet config file failed validation; the message names the path."""


#: Recognized chooser names (resolved by the caller's ``chooser_factory``).
CHOOSERS = ("none", "batch", "deepbat")

_TOP_KEYS = {"endpoints", "max_containers", "scheduler", "split_seed",
             "degrade"}
_SCHEDULER_KEYS = {"interval_s", "min_history"}
_ENDPOINT_KEYS = {
    "name", "memory_mb", "batch_size", "timeout", "slo", "percentile",
    "share", "chooser", "decision_interval_s", "keep_alive_s",
    "max_containers", "max_queued_batches", "prewarm", "generation",
    "priority", "outages",
}
_PREWARM_KEYS = {
    "interval_s", "horizon_s", "headroom", "max_per_tick", "retire", "window",
}


@dataclass(frozen=True)
class EndpointConfig:
    """One validated endpoint entry of the fleet config file."""

    name: str
    memory_mb: float
    batch_size: int
    timeout: float
    slo: float = 0.1
    percentile: float = 95.0
    share: float | None = None
    chooser: str = "none"
    decision_interval_s: float | None = None
    keep_alive_s: float = math.inf
    max_containers: int | None = None
    max_queued_batches: int | None = None
    #: Built from the endpoint's ``prewarm`` object. JSON cannot name a
    #: fitted arrival model, so file-driven prewarming always uses the
    #: windowed empirical forecaster; programmatic :class:`EndpointSpec`
    #: construction can pass any forecaster.
    prewarm: PrewarmConfig | None = None
    #: Built from the endpoint's ``generation`` object (the schema lives
    #: in :mod:`repro.serving.generation`); makes this endpoint serve the
    #: token-streaming workload instead of single-response requests.
    generation: GenerationConfig | None = None
    #: Brownout/failover tier: lower sheds first, higher fails over first.
    priority: int = 0
    #: Built from the endpoint's ``outages`` object (the schema lives in
    #: :mod:`repro.serving.degrade`): the lane's infrastructure-fault
    #: model plus its per-engine degradation stack.
    outages: OutageModel | None = None
    degrade: DegradeConfig | None = None


@dataclass(frozen=True)
class FleetConfig:
    """A validated fleet document, ready to build a :class:`FleetEngine`."""

    endpoints: tuple[EndpointConfig, ...]
    max_containers: int | None = None
    scheduler_interval_s: float | None = None
    scheduler_min_history: int = 32
    split_seed: int = 0
    brownout: BrownoutConfig | None = None
    failover: FailoverConfig | None = None

    def build(
        self,
        platform_factory: Callable | None = None,
        chooser_factory: Callable | None = None,
    ) -> FleetEngine:
        """Construct the :class:`FleetEngine` this config describes.

        ``platform_factory(endpoint_config)`` supplies each endpoint's
        :class:`ServerlessPlatform` (``None`` = platform defaults);
        ``chooser_factory(endpoint_config, platform)`` resolves the
        ``chooser`` name into a controller (``None`` = no controller,
        whatever the name — the library has no model registry).
        """
        specs = []
        for ep in self.endpoints:
            platform = platform_factory(ep) if platform_factory else None
            chooser = (
                chooser_factory(ep, platform)
                if chooser_factory and ep.chooser != "none" else None
            )
            specs.append(EndpointSpec(
                name=ep.name,
                config=BatchConfig(memory_mb=ep.memory_mb,
                                   batch_size=ep.batch_size,
                                   timeout=ep.timeout),
                slo=ep.slo,
                percentile=ep.percentile,
                platform=platform,
                chooser=chooser,
                decision_interval_s=ep.decision_interval_s,
                share=ep.share,
                pool=WarmPoolConfig(
                    keep_alive_s=ep.keep_alive_s,
                    max_containers=ep.max_containers,
                    max_queued_batches=ep.max_queued_batches,
                ),
                prewarm=ep.prewarm,
                generation=ep.generation,
                priority=ep.priority,
                outages=ep.outages,
                degrade=ep.degrade,
            ))
        scheduler = (
            FleetScheduler(min_history=self.scheduler_min_history)
            if self.scheduler_interval_s is not None else None
        )
        return FleetEngine(
            specs,
            max_containers=self.max_containers,
            scheduler=scheduler,
            scheduler_interval_s=self.scheduler_interval_s,
            split_seed=self.split_seed,
            brownout=self.brownout,
            failover=self.failover,
        )


# ------------------------------------------------------------- validation
def _fail(path: str, message: str) -> None:
    raise FleetConfigError(f"{path}: {message}")


def _check_keys(obj: dict, allowed: set, path: str) -> None:
    unknown = sorted(set(obj) - allowed)
    if unknown:
        _fail(path, f"unknown keys {unknown} (allowed: {sorted(allowed)})")


def _number(obj: dict, key: str, path: str, default=None, *,
            required: bool = False, minimum: float | None = None,
            strict: bool = False, nullable: bool = False):
    if key not in obj:
        if required:
            _fail(f"{path}.{key}", "is required")
        return default
    v = obj[key]
    if v is None and nullable:
        return None
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        _fail(f"{path}.{key}", f"must be a number, got {v!r}")
    v = float(v)
    if not math.isfinite(v):
        _fail(f"{path}.{key}", f"must be finite, got {v!r}")
    if minimum is not None:
        if strict and not v > minimum:
            _fail(f"{path}.{key}", f"must be > {minimum:g}, got {v:g}")
        if not strict and not v >= minimum:
            _fail(f"{path}.{key}", f"must be >= {minimum:g}, got {v:g}")
    return v


def _integer(obj: dict, key: str, path: str, default=None, *,
             required: bool = False, minimum: int | None = None,
             nullable: bool = False):
    if key not in obj:
        if required:
            _fail(f"{path}.{key}", "is required")
        return default
    v = obj[key]
    if v is None and nullable:
        return None
    if isinstance(v, bool) or not isinstance(v, int):
        _fail(f"{path}.{key}", f"must be an integer, got {v!r}")
    if minimum is not None and v < minimum:
        _fail(f"{path}.{key}", f"must be >= {minimum}, got {v}")
    return v


def _prewarm(obj, path: str) -> PrewarmConfig:
    if not isinstance(obj, dict):
        _fail(path, f"must be an object, got {type(obj).__name__}")
    _check_keys(obj, _PREWARM_KEYS, path)
    retire = obj.get("retire", False)
    if not isinstance(retire, bool):
        _fail(f"{path}.retire", f"must be a boolean, got {retire!r}")
    return PrewarmConfig(
        forecaster=EmpiricalRateForecaster(),
        interval_s=_number(obj, "interval_s", path, default=1.0,
                           minimum=0.0, strict=True),
        horizon_s=_number(obj, "horizon_s", path, minimum=0.0, strict=True,
                          nullable=True),
        headroom=_number(obj, "headroom", path, default=1.0,
                         minimum=0.0, strict=True),
        max_per_tick=_integer(obj, "max_per_tick", path, minimum=1,
                              nullable=True),
        retire=retire,
        window=_integer(obj, "window", path, default=256, minimum=1),
    )


def _generation(obj, path: str) -> GenerationConfig:
    # The generation schema lives next to its config; re-label its error
    # so fleet callers see a single exception type with the full path.
    try:
        return validate_generation_config(obj, path)
    except GenerationConfigError as exc:
        raise FleetConfigError(str(exc)) from exc


def _outages(obj, path: str) -> tuple[OutageModel, DegradeConfig | None]:
    # Same re-labeling for the outage schema (repro.serving.degrade).
    try:
        return validate_outage_config(obj, path)
    except OutageConfigError as exc:
        raise FleetConfigError(str(exc)) from exc


def _endpoint(obj, path: str) -> EndpointConfig:
    if not isinstance(obj, dict):
        _fail(path, f"must be an object, got {type(obj).__name__}")
    _check_keys(obj, _ENDPOINT_KEYS, path)
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        _fail(f"{path}.name", "is required and must be a non-empty string")
    if "." in name:
        _fail(f"{path}.name", f"must not contain '.', got {name!r} "
                              "(names namespace telemetry as serving.<name>.*)")
    chooser = obj.get("chooser", "none")
    if chooser not in CHOOSERS:
        _fail(f"{path}.chooser", f"must be one of {list(CHOOSERS)}, "
                                 f"got {chooser!r}")
    share = _number(obj, "share", path, minimum=0.0, strict=True)
    if share is not None and share > 1.0:
        _fail(f"{path}.share", f"must be <= 1, got {share:g}")
    keep_alive = _number(obj, "keep_alive_s", path, default=math.inf,
                         minimum=0.0)
    outages = degrade = None
    if obj.get("outages") is not None:
        outages, degrade = _outages(obj["outages"], f"{path}.outages")
        if not outages.enabled:
            outages = None
    return EndpointConfig(
        name=name,
        memory_mb=_number(obj, "memory_mb", path, required=True,
                          minimum=0.0, strict=True),
        batch_size=_integer(obj, "batch_size", path, required=True, minimum=1),
        timeout=_number(obj, "timeout", path, required=True, minimum=0.0),
        slo=_number(obj, "slo", path, default=0.1, minimum=0.0, strict=True),
        percentile=_number(obj, "percentile", path, default=95.0,
                           minimum=0.0, strict=True),
        share=share,
        chooser=chooser,
        decision_interval_s=_number(obj, "decision_interval_s", path,
                                    minimum=0.0, strict=True, nullable=True),
        keep_alive_s=keep_alive,
        max_containers=_integer(obj, "max_containers", path, minimum=1,
                                nullable=True),
        max_queued_batches=_integer(obj, "max_queued_batches", path,
                                    minimum=0, nullable=True),
        prewarm=(
            _prewarm(obj["prewarm"], f"{path}.prewarm")
            if obj.get("prewarm") is not None else None
        ),
        generation=(
            _generation(obj["generation"], f"{path}.generation")
            if obj.get("generation") is not None else None
        ),
        priority=_integer(obj, "priority", path, default=0),
        outages=outages,
        degrade=degrade,
    )


def validate_fleet_config(doc) -> FleetConfig:
    """Validate a parsed fleet document; raise :class:`FleetConfigError`."""
    if not isinstance(doc, dict):
        _fail("fleet config", f"must be a JSON object, "
                              f"got {type(doc).__name__}")
    _check_keys(doc, _TOP_KEYS, "fleet config")
    raw_endpoints = doc.get("endpoints")
    if not isinstance(raw_endpoints, list) or not raw_endpoints:
        _fail("endpoints", "is required and must be a non-empty array")
    endpoints = tuple(
        _endpoint(ep, f"endpoints[{i}]") for i, ep in enumerate(raw_endpoints)
    )
    names = [ep.name for ep in endpoints]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        _fail("endpoints", f"names must be unique; duplicated: {dupes}")
    percentile_out = [ep.name for ep in endpoints if ep.percentile > 100.0]
    if percentile_out:
        _fail("endpoints", f"percentile must be <= 100 for: {percentile_out}")
    shares = [ep.share for ep in endpoints]
    if any(s is not None for s in shares) and any(s is None for s in shares):
        missing = [ep.name for ep in endpoints if ep.share is None]
        _fail("endpoints", f"either every endpoint has a share or none does; "
                           f"missing on: {missing}")

    scheduler_interval = None
    scheduler_min_history = 32
    if "scheduler" in doc and doc["scheduler"] is not None:
        sched = doc["scheduler"]
        if not isinstance(sched, dict):
            _fail("scheduler", f"must be an object, got {type(sched).__name__}")
        _check_keys(sched, _SCHEDULER_KEYS, "scheduler")
        scheduler_interval = _number(sched, "interval_s", "scheduler",
                                     required=True, minimum=0.0, strict=True)
        scheduler_min_history = _integer(sched, "min_history", "scheduler",
                                         default=32, minimum=1)
    brownout = failover = None
    if doc.get("degrade") is not None:
        try:
            brownout, failover = validate_fleet_degrade(doc["degrade"],
                                                        "degrade")
        except OutageConfigError as exc:
            raise FleetConfigError(str(exc)) from exc
    return FleetConfig(
        endpoints=endpoints,
        max_containers=_integer(doc, "max_containers", "fleet config",
                                minimum=1, nullable=True),
        scheduler_interval_s=scheduler_interval,
        scheduler_min_history=scheduler_min_history,
        split_seed=_integer(doc, "split_seed", "fleet config", default=0,
                            minimum=0),
        brownout=brownout,
        failover=failover,
    )


def load_fleet_config(path: str | os.PathLike) -> FleetConfig:
    """Read and validate a fleet JSON file.

    Raises :class:`FleetConfigError` with an actionable, path-qualified
    message on any problem — unreadable file, invalid JSON, or a schema
    violation.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise FleetConfigError(f"cannot read {os.fspath(path)}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FleetConfigError(
            f"{os.fspath(path)} is not valid JSON: {exc}"
        ) from exc
    return validate_fleet_config(doc)
