"""Dependency-free observability for the serving loop.

Five pieces: :mod:`~repro.telemetry.metrics` (counters, gauges, streaming
histograms, and the :class:`MetricsRegistry` sink), :mod:`~repro.telemetry.
tracing` (nested wall-clock spans), :mod:`~repro.telemetry.timing`
(aggregate per-stage timers for hot event loops), :mod:`~repro.telemetry.
events` (structured decision/dispatch/violation/segment records), and
:mod:`~repro.telemetry.export` (JSONL round-trip plus an ASCII dashboard).

The default registry is a no-op, so the instrumentation wired through the
controllers, simulator, buffer, trainer, and harness costs (near) nothing
unless a real registry is installed with :func:`set_registry` /
:func:`use_registry` — or via ``python -m repro evaluate --telemetry``.
"""

from repro.telemetry.events import (
    CheckpointEvent,
    DecisionEvent,
    DispatchEvent,
    DriftEvent,
    GuardrailEvent,
    ReconfigureEvent,
    RetryEvent,
    SegmentEvent,
    ShedEvent,
    TelemetryEvent,
    ViolationEvent,
    event_from_record,
)
from repro.telemetry.export import read_jsonl, render_dashboard, write_jsonl
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.telemetry.timing import (
    NULL_TIMERS,
    NullStageTimers,
    Stage,
    StageTimers,
    stage_timers,
)
from repro.telemetry.tracing import NULL_SPAN, NullSpan, Span, SpanRecord

__all__ = [
    "Counter",
    "CheckpointEvent",
    "DecisionEvent",
    "DispatchEvent",
    "DriftEvent",
    "GuardrailEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TIMERS",
    "NullRegistry",
    "NullSpan",
    "NullStageTimers",
    "ReconfigureEvent",
    "RetryEvent",
    "SegmentEvent",
    "ShedEvent",
    "Span",
    "SpanRecord",
    "Stage",
    "StageTimers",
    "TelemetryEvent",
    "ViolationEvent",
    "event_from_record",
    "get_registry",
    "read_jsonl",
    "render_dashboard",
    "set_registry",
    "stage_timers",
    "use_registry",
    "write_jsonl",
]
