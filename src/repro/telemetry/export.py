"""JSONL persistence and the ASCII dashboard for telemetry dumps.

A dump is one JSON object per line — counters, gauges, histogram summaries,
spans, and events exactly as :meth:`MetricsRegistry.records` yields them —
so it streams, appends, and greps. :func:`render_dashboard` turns a dump
(or a live registry) back into the fixed-width tables the rest of the
reproduction prints, including the per-segment scorecard (p95 latency,
cost/request, VCR, decision time) the ``repro report`` subcommand shows.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.telemetry.metrics import MetricsRegistry


def _as_records(source: MetricsRegistry | Iterable[dict]) -> list[dict]:
    if isinstance(source, MetricsRegistry):
        return list(source.records())
    return list(source)


def write_jsonl(source: MetricsRegistry | Iterable[dict], path) -> int:
    """Write a registry (or record iterable) as JSONL; returns #records."""
    records = _as_records(source)
    with Path(path).open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, default=_json_default) + "\n")
    return len(records)


def read_jsonl(path) -> list[dict]:
    """Read a JSONL dump back into a list of record dicts."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _json_default(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


# ------------------------------------------------------------------ dashboard
def render_dashboard(
    source: MetricsRegistry | Iterable[dict], title: str = "telemetry dashboard"
) -> str:
    """Render every section of a dump as stacked ASCII tables."""
    from repro.evaluation.reporting import format_table  # avoid import cycle

    records = _as_records(source)
    by_type = defaultdict(list)
    for record in records:
        by_type[record.get("type", "?")].append(record)
    events = by_type.get("event", [])
    by_kind = defaultdict(list)
    for event in events:
        by_kind[event.get("kind", "?")].append(event)

    sections = [title]

    segments = by_kind.get("segment", [])
    if segments:
        rows = [
            [
                e.get("controller", ""),
                e["segment"],
                e["n_requests"],
                f"{e['p95'] * 1e3:.1f}",
                f"{e['cost_per_request'] * 1e6:.4f}",
                f"{e['vcr']:.1f}",
                f"{e['mean_decision_time'] * 1e3:.2f}",
            ]
            for e in sorted(
                segments,
                key=lambda e: (e.get("controller", ""), e["segment"]),
            )
        ]
        rows.append([
            "mean",
            "",
            int(np.mean([e["n_requests"] for e in segments])),
            f"{np.mean([e['p95'] for e in segments]) * 1e3:.1f}",
            f"{np.mean([e['cost_per_request'] for e in segments]) * 1e6:.4f}",
            f"{np.mean([e['vcr'] for e in segments]):.1f}",
            f"{np.mean([e['mean_decision_time'] for e in segments]) * 1e3:.2f}",
        ])
        sections.append(format_table(
            ["controller", "segment", "requests", "p95 ms", "cost $/1M",
             "VCR %", "decision ms"],
            rows,
            title="segments",
        ))

    decisions = by_kind.get("decision", [])
    if decisions:
        per_controller = defaultdict(list)
        for event in decisions:
            per_controller[event.get("controller", "?")].append(event)
        rows = []
        for name, evts in sorted(per_controller.items()):
            times = [e["decision_time"] for e in evts]
            feasible = [e for e in evts if e.get("feasible")]
            configs = defaultdict(int)
            for e in evts:
                configs[(e["memory_mb"], e["batch_size"], e["timeout"])] += 1
            (mem, bsz, tout), _ = max(configs.items(), key=lambda kv: kv[1])
            rows.append([
                name,
                len(evts),
                f"{np.mean(times) * 1e3:.2f}",
                f"{np.max(times) * 1e3:.2f}",
                f"{100.0 * len(feasible) / len(evts):.0f}",
                f"({mem:g} MB, B={bsz}, T={tout:g}s)",
            ])
        sections.append(format_table(
            ["controller", "decisions", "mean ms", "max ms", "feasible %",
             "modal config"],
            rows,
            title="decisions",
        ))

    violations = by_kind.get("violation", [])
    if violations:
        rows = [
            [e["segment"], f"{e['observed_p95'] * 1e3:.1f}", f"{e['slo'] * 1e3:.1f}"]
            for e in violations
        ]
        sections.append(format_table(
            ["segment", "observed p95 ms", "SLO ms"], rows, title="SLO violations"
        ))

    resilience = _resilience_rows(by_type, by_kind)
    if resilience:
        sections.append(format_table(
            ["fault metric", "value"], resilience, title="resilience"
        ))

    serving = _serving_rows(by_type, by_kind)
    if serving:
        sections.append(format_table(
            ["serving metric", "value"], serving, title="serving"
        ))

    fleet = _fleet_rows(by_type)
    if fleet:
        sections.append(format_table(
            ["endpoint", "requests", "batches", "cold", "warm", "queued",
             "shed", "decisions", "reconfigs"],
            fleet,
            title="fleet",
        ))

    prewarm = _prewarm_rows(by_type)
    if prewarm:
        sections.append(format_table(
            ["scope", "ticks", "provisioned", "retired", "prewarm cost $"],
            prewarm,
            title="prewarming",
        ))

    generation = _generation_rows(by_type)
    if generation:
        sections.append(format_table(
            ["scope", "requests", "sessions", "prefills", "decodes",
             "tokens", "shed"],
            generation,
            title="generation",
        ))

    degradation = _degradation_rows(by_type)
    if degradation:
        sections.append(format_table(
            ["scope", "crashes", "requeued", "stragglers", "retries",
             "hedges", "wins", "brownout", "failover"],
            degradation,
            title="degradation",
        ))

    reliability = _reliability_rows(by_type, by_kind)
    if reliability:
        sections.append(format_table(
            ["reliability metric", "value"], reliability, title="reliability"
        ))

    perf = _performance_rows(by_type)
    if perf:
        sections.append(format_table(
            ["pipeline stage", "runs", "items", "total s", "items/s"],
            perf,
            title="performance (simulation core)",
        ))

    serving_perf = _serving_perf_rows(by_type)
    if serving_perf:
        sections.append(format_table(
            ["loop", "stage", "events", "total s", "mean µs"],
            serving_perf,
            title="performance (serving)",
        ))

    spans = by_type.get("span", [])
    if spans:
        agg = defaultdict(list)
        parents = {}
        for span in spans:
            agg[span["name"]].append(span["duration"])
            parents.setdefault(span["name"], span.get("parent") or "")
        rows = [
            [
                name,
                parents[name],
                len(durs),
                f"{np.mean(durs) * 1e3:.3f}",
                f"{np.max(durs) * 1e3:.3f}",
                f"{np.sum(durs):.4f}",
            ]
            for name, durs in sorted(agg.items())
        ]
        sections.append(format_table(
            ["span", "parent", "count", "mean ms", "max ms", "total s"],
            rows,
            title="spans",
        ))

    histograms = by_type.get("histogram", [])
    if histograms:
        rows = [
            [
                h["name"],
                h["count"],
                _g(h.get("mean")),
                _g(h.get("percentiles", {}).get("50")),
                _g(h.get("percentiles", {}).get("95")),
                _g(h.get("max")),
            ]
            for h in sorted(histograms, key=lambda h: h["name"])
        ]
        sections.append(format_table(
            ["histogram", "count", "mean", "p50", "p95", "max"],
            rows,
            title="histograms",
        ))

    counters = by_type.get("counter", [])
    gauges = by_type.get("gauge", [])
    if counters or gauges:
        rows = [[c["name"], "counter", _g(c["value"])] for c in sorted(
            counters, key=lambda c: c["name"])]
        rows += [[g["name"], "gauge", _g(g["value"])] for g in sorted(
            gauges, key=lambda g: g["name"])]
        sections.append(format_table(
            ["metric", "type", "value"], rows, title="scalars"
        ))

    if len(sections) == 1:
        sections.append("(no telemetry records)")
    return "\n\n".join(sections)


def _resilience_rows(by_type: dict, by_kind: dict) -> list[list]:
    """Fault-injection scorecard: retry/failure counters plus degraded-mode
    serving stats. Rows appear only when the fault layer actually ran."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    fault = {
        name: value for name, value in counters.items()
        if name.startswith("fault.")
    }
    if not fault and "retry" not in by_kind:
        return []
    labels = [
        ("fault.attempts", "invocation attempts"),
        ("fault.retries", "invocation retries"),
        ("fault.timeouts", "timed-out batches"),
        ("fault.failed_batches", "failed batches"),
        ("fault.failed_requests", "failed requests"),
        ("fault.throttle_retries", "throttle rejections"),
        ("fault.degraded_decisions", "degraded decisions"),
    ]
    rows = [
        [label, int(fault[name])] for name, label in labels if name in fault
    ]
    retries = by_kind.get("retry", [])
    if retries:
        rows.append(["fault-injected executions", len(retries)])
    segments = by_kind.get("segment", [])
    degraded = sum(e.get("degraded_decisions", 0) for e in segments)
    if degraded and "fault.degraded_decisions" not in fault:
        rows.append(["degraded decisions", int(degraded)])
    return rows


def _serving_rows(by_type: dict, by_kind: dict) -> list[list]:
    """Live-serving scorecard: warm-pool behaviour, admission control, and
    the control plane (reconfigurations, drift triggers, retrains). Rows
    appear only when the serving runtime actually ran."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    serving = {
        name: value for name, value in counters.items()
        # Exactly two dot-parts: the single-endpoint engine. Fleet lanes
        # namespace as serving.<endpoint>.<metric> and get their own
        # section (_fleet_rows) instead of polluting this one.
        if name.startswith("serving.") and name.count(".") == 1
    }
    if not serving:
        return []
    labels = [
        ("serving.requests", "requests"),
        ("serving.batches", "batches executed"),
        ("serving.cold_starts", "cold starts"),
        ("serving.warm_starts", "warm starts"),
        ("serving.queued_batches", "batches queued"),
        ("serving.shed_requests", "shed requests"),
        ("serving.shed_batches", "shed batches"),
        ("serving.decisions", "controller decisions"),
        ("serving.decision_errors", "controller errors"),
        ("serving.reconfigurations", "reconfigurations"),
        ("serving.drift_triggers", "workload-drift triggers"),
        ("serving.prediction_drift_triggers", "prediction-drift triggers"),
        ("serving.retrains", "retrains completed"),
    ]
    rows: list[list] = [
        [label, int(serving[name])] for name, label in labels if name in serving
    ]
    starts = serving.get("serving.cold_starts", 0) + serving.get(
        "serving.warm_starts", 0
    )
    if starts:
        rate = serving.get("serving.cold_starts", 0) / starts
        rows.append(["cold-start rate", f"{100.0 * rate:.1f}%"])
    reconfigures = by_kind.get("reconfigure", [])
    if reconfigures:
        lags = [e["lag"] for e in reconfigures]
        rows.append(["mean reconfigure lag s", f"{np.mean(lags):.3f}"])
    return rows


def _fleet_rows(by_type: dict) -> list[list]:
    """Per-endpoint fleet scorecard from ``serving.<endpoint>.<metric>``
    counters (the fleet engine's telemetry namespacing). One row per
    endpoint; rows appear only when a fleet actually ran."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    per_endpoint: dict[str, dict[str, float]] = defaultdict(dict)
    for name, value in counters.items():
        parts = name.split(".")
        # "prewarm" and "gen" are single-engine namespaces
        # (serving.prewarm.ticks, serving.gen.requests, ...), not
        # endpoints — without the exclusion they would show up here as
        # phantom endpoint rows.
        if (len(parts) == 3 and parts[0] == "serving"
                and parts[1] not in ("prewarm", "gen", "outage", "degrade")):
            per_endpoint[parts[1]][parts[2]] = value
    if not per_endpoint:
        return []
    return [
        [
            endpoint,
            int(metrics.get("requests", 0)),
            int(metrics.get("batches", 0)),
            int(metrics.get("cold_starts", 0)),
            int(metrics.get("warm_starts", 0)),
            int(metrics.get("queued_batches", 0)),
            int(metrics.get("shed_requests", 0)),
            int(metrics.get("decisions", 0)),
            int(metrics.get("reconfigurations", 0)),
        ]
        for endpoint, metrics in sorted(per_endpoint.items())
    ]


def _prewarm_rows(by_type: dict) -> list[list]:
    """Predictive-prewarming scorecard: the provisioning-cost vs
    cold-start-latency trade-off per scope. The single engine emits
    ``serving.prewarm.<metric>``; fleet lanes emit
    ``serving.<endpoint>.prewarm.<metric>``. Rows appear only when a
    prewarming policy actually ticked."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    metrics_known = {"ticks", "provisioned", "retired", "cost"}
    per_scope: dict[str, dict[str, float]] = defaultdict(dict)
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) == 3 and parts[:2] == ["serving", "prewarm"]:
            per_scope["engine"][parts[2]] = value
        elif (len(parts) == 4 and parts[0] == "serving"
              and parts[2] == "prewarm" and parts[3] in metrics_known):
            # The metric whitelist keeps the event-loop stage timers
            # (serving.perf.prewarm.calls/seconds) out of this table.
            per_scope[parts[1]][parts[3]] = value
    return [
        [
            scope,
            int(metrics.get("ticks", 0)),
            int(metrics.get("provisioned", 0)),
            int(metrics.get("retired", 0)),
            f"{metrics.get('cost', 0.0):.6f}",
        ]
        for scope, metrics in sorted(per_scope.items())
    ]


def _generation_rows(by_type: dict) -> list[list]:
    """Token-streaming scorecard per scope from the ``gen.*`` counters.

    The single engine emits ``serving.gen.<metric>``; fleet lanes emit
    ``serving.<endpoint>.gen.<metric>``. Rows appear only when a
    generation workload actually ran."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    metrics_known = {
        "requests", "sessions", "prefill_iterations", "decode_iterations",
        "tokens", "shed",
    }
    per_scope: dict[str, dict[str, float]] = defaultdict(dict)
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) == 3 and parts[:2] == ["serving", "gen"]:
            per_scope["engine"][parts[2]] = value
        elif (len(parts) == 4 and parts[0] == "serving"
              and parts[2] == "gen" and parts[3] in metrics_known):
            per_scope[parts[1]][parts[3]] = value
    return [
        [
            scope,
            int(metrics.get("requests", 0)),
            int(metrics.get("sessions", 0)),
            int(metrics.get("prefill_iterations", 0)),
            int(metrics.get("decode_iterations", 0)),
            int(metrics.get("tokens", 0)),
            int(metrics.get("shed", 0)),
        ]
        for scope, metrics in sorted(per_scope.items())
    ]


def _degradation_rows(by_type: dict) -> list[list]:
    """Infrastructure-fault + graceful-degradation scorecard per scope.

    The single engine emits ``serving.outage.<metric>`` and
    ``serving.degrade.<metric>``; fleet lanes emit
    ``serving.<endpoint>.outage.<metric>`` / ``....degrade.<metric>``.
    Rows appear only when the fault layer or a degradation policy
    actually fired."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    metrics_known = {
        "crashes", "crash_requeued", "straggler_batches", "cold_retries",
        "retry_exhausted", "hedges", "hedge_wins", "hedge_denied",
        "hedge_cost", "brownout_shed", "failover",
    }
    per_scope: dict[str, dict[str, float]] = defaultdict(dict)
    for name, value in counters.items():
        parts = name.split(".")
        if (len(parts) == 3 and parts[0] == "serving"
                and parts[1] in ("outage", "degrade")):
            per_scope["engine"][parts[2]] = value
        elif (len(parts) == 4 and parts[0] == "serving"
              and parts[2] in ("outage", "degrade")
              and parts[3] in metrics_known):
            per_scope[parts[1]][parts[3]] = value
    return [
        [
            scope,
            int(metrics.get("crashes", 0)),
            int(metrics.get("crash_requeued", 0)),
            int(metrics.get("straggler_batches", 0)),
            int(metrics.get("cold_retries", 0)),
            int(metrics.get("hedges", 0)),
            int(metrics.get("hedge_wins", 0)),
            int(metrics.get("brownout_shed", 0)),
            int(metrics.get("failover", 0)),
        ]
        for scope, metrics in sorted(per_scope.items())
    ]


def _reliability_rows(by_type: dict, by_kind: dict) -> list[list]:
    """Crash-safety and guardrail scorecard: checkpoint/restore activity and
    the SLO circuit breaker's history. Rows appear only when either
    subsystem was actually enabled (``guardrail.*``/``checkpoint.*``
    counters or their events)."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    relevant = {
        name: value for name, value in counters.items()
        if name.startswith(("guardrail.", "checkpoint."))
    }
    guard_events = by_kind.get("guardrail", [])
    ckpt_events = by_kind.get("checkpoint", [])
    if not relevant and not guard_events and not ckpt_events:
        return []
    labels = [
        ("checkpoint.snapshots", "snapshots written"),
        ("checkpoint.restores", "restores"),
        ("checkpoint.replayed_events", "journal events replayed"),
        ("guardrail.tripped", "breaker trips"),
        ("guardrail.probe", "half-open probes"),
        ("guardrail.restored", "breaker restores"),
        ("guardrail.suppressed_decisions", "suppressed decisions"),
    ]
    rows: list[list] = [
        [label, int(relevant[name])] for name, label in labels
        if name in relevant
    ]
    trips = [e for e in guard_events if e.get("action") == "tripped"]
    if trips:
        worst = max(e.get("observed_p", 0.0) for e in trips)
        slo = trips[0].get("slo")
        rows.append(["worst tripped percentile ms", f"{worst * 1e3:.1f}"])
        if slo is not None:
            rows.append(["SLO ms", f"{slo * 1e3:.1f}"])
        last = trips[-1]
        rows.append([
            "last fallback config",
            f"({last['memory_mb']:g} MB, B={last['batch_size']}, "
            f"T={last['timeout']:g}s)",
        ])
    if guard_events:
        rows.append(["final breaker state", guard_events[-1].get("state", "?")])
    if ckpt_events:
        last = ckpt_events[-1]
        rows.append([
            "last snapshot",
            f"event {int(last['events_processed'])} "
            f"(journal {int(last['journal_entries'])} entries)",
        ])
    return rows


def _performance_rows(by_type: dict) -> list[list]:
    """Throughput of the fast simulation core (grid sweeps, labeling).

    Built from ``simulator.grid_time``/``dataset.label_time`` histograms and
    their companion counters; rows appear only for stages that actually ran.
    """
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    gauges = {g["name"]: g["value"] for g in by_type.get("gauge", [])}
    hists = {h["name"]: h for h in by_type.get("histogram", [])}
    rows = []

    grid = hists.get("simulator.grid_time")
    if grid and grid.get("count"):
        total = grid["sum"]
        configs = counters.get("simulator.grid_configs", 0)
        rows.append([
            "grid simulation", int(grid["count"]), int(configs),
            f"{total:.3f}", f"{configs / total:.1f}" if total > 0 else "-",
        ])

    label = hists.get("dataset.label_time")
    if label and label.get("count"):
        total = label["sum"]
        labels = counters.get("dataset.labels", 0)
        workers = gauges.get("dataset.workers")
        stage = "dataset labeling"
        if workers and not np.isnan(workers):
            stage += f" (workers={int(workers)})"
        rows.append([
            stage, int(label["count"]), int(labels),
            f"{total:.3f}", f"{labels / total:.1f}" if total > 0 else "-",
        ])
    return rows


def _serving_perf_rows(by_type: dict) -> list[list]:
    """Per-stage event-loop timings from the serving engine's
    :class:`~repro.telemetry.timing.StageTimers` flush: one row per
    ``<loop>.perf.<stage>`` with its ``.seconds``/``.calls`` counter pair
    (``serving.perf.*`` for the single engine, ``serving.<endpoint>.perf.*``
    per fleet lane). Rows appear only when an instrumented run flushed."""
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    stages: dict[tuple[str, str], dict[str, float]] = defaultdict(dict)
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) >= 4 and parts[-3] == "perf" and parts[-1] in (
            "seconds", "calls"
        ):
            stages[(".".join(parts[:-3]), parts[-2])][parts[-1]] = value
    rows = []
    for (loop, stage), vals in sorted(stages.items()):
        calls = vals.get("calls", 0)
        total = vals.get("seconds", 0.0)
        rows.append([
            loop, stage, int(calls), f"{total:.4f}",
            f"{total / calls * 1e6:.2f}" if calls else "-",
        ])
    return rows


def _g(value) -> str:
    if value is None:
        return "-"
    return f"{float(value):.4g}"
