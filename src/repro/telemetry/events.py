"""Structured event records emitted by the serving and evaluation loops.

Events are frozen dataclasses with a class-level ``kind`` discriminator and
a flat ``to_record()``/:func:`event_from_record` wire format, so a JSONL
dump round-trips losslessly:

* :class:`DecisionEvent` — one controller optimization round (who decided,
  the chosen ``(M, B, T)``, how long it took, what it predicted);
* :class:`DispatchEvent` — one batch leaving the online buffer;
* :class:`ViolationEvent` — a served segment whose observed tail latency
  exceeded the SLO;
* :class:`SegmentEvent` — the per-segment scorecard the evaluation harness
  logs (p95, cost/request, VCR, decision time);
* :class:`RetryEvent` — one fault-injected execution's retry summary
  (retries, timeouts, failed batches/requests, throttle rejections);
* :class:`ReconfigureEvent` — the serving runtime applied a new ``(M, B,
  T)`` after its deploy lag;
* :class:`DriftEvent` — a drift detector (workload envelope or surrogate
  prediction error) fired and triggered an out-of-band decision;
* :class:`ShedEvent` — admission control dropped a batch because the
  warm pool and its queue were exhausted;
* :class:`GuardrailEvent` — the SLO circuit breaker changed state
  (tripped to the fallback config, half-open probe, restored);
* :class:`CheckpointEvent` — the serving runtime wrote a crash-safe
  snapshot of its state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import ClassVar


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class; subclasses set ``kind`` and add their payload fields."""

    kind: ClassVar[str] = "event"

    def to_record(self) -> dict:
        record = asdict(self)
        record["type"] = "event"
        record["kind"] = self.kind
        return record


@dataclass(frozen=True)
class DecisionEvent(TelemetryEvent):
    """One optimization round of any controller."""

    kind: ClassVar[str] = "decision"

    controller: str
    memory_mb: float
    batch_size: int
    timeout: float
    decision_time: float
    predicted_cost: float | None = None
    predicted_p95: float | None = None
    feasible: bool | None = None


@dataclass(frozen=True)
class DispatchEvent(TelemetryEvent):
    """One batch dispatched by the online buffer."""

    kind: ClassVar[str] = "dispatch"

    batch_size: int
    dispatch_time: float
    max_wait: float


@dataclass(frozen=True)
class ViolationEvent(TelemetryEvent):
    """A segment whose observed tail latency broke the SLO."""

    kind: ClassVar[str] = "violation"

    segment: int
    observed_p95: float
    slo: float


@dataclass(frozen=True)
class SegmentEvent(TelemetryEvent):
    """Per-segment scorecard from the closed-loop harness."""

    kind: ClassVar[str] = "segment"

    segment: int
    n_requests: int
    p95: float
    cost_per_request: float
    vcr: float
    mean_decision_time: float
    slo: float
    controller: str = ""
    retries: int = 0
    failed_requests: int = 0
    degraded_decisions: int = 0


@dataclass(frozen=True)
class RetryEvent(TelemetryEvent):
    """Retry/failure summary of one fault-injected batch execution."""

    kind: ClassVar[str] = "retry"

    memory_mb: float
    batches: int
    retries: int
    timeouts: int
    failed_batches: int
    failed_requests: int
    throttle_retries: int


@dataclass(frozen=True)
class ReconfigureEvent(TelemetryEvent):
    """The serving runtime switched to a new configuration."""

    kind: ClassVar[str] = "reconfigure"

    time: float
    reason: str
    memory_mb: float
    batch_size: int
    timeout: float
    old_memory_mb: float
    old_batch_size: int
    old_timeout: float
    lag: float


@dataclass(frozen=True)
class DriftEvent(TelemetryEvent):
    """A drift detector fired in the live serving loop."""

    kind: ClassVar[str] = "drift"

    time: float
    detector: str  # "workload" (envelope) or "prediction" (surrogate error)
    score: float


@dataclass(frozen=True)
class ShedEvent(TelemetryEvent):
    """Admission control dropped a dispatched batch (pool exhausted)."""

    kind: ClassVar[str] = "shed"

    time: float
    requests: int
    queued_batches: int


@dataclass(frozen=True)
class GuardrailEvent(TelemetryEvent):
    """The SLO guardrail's circuit breaker changed state."""

    kind: ClassVar[str] = "guardrail"

    time: float
    action: str  # "tripped" | "probe" | "restored"
    state: str  # breaker state after the action
    observed_p: float  # latency percentile of the window that drove it
    slo: float
    memory_mb: float
    batch_size: int
    timeout: float


@dataclass(frozen=True)
class CheckpointEvent(TelemetryEvent):
    """The serving runtime wrote a crash-safe state snapshot."""

    kind: ClassVar[str] = "checkpoint"

    time: float
    events_processed: int
    journal_entries: int


EVENT_TYPES: dict[str, type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (
        DecisionEvent, DispatchEvent, ViolationEvent, SegmentEvent, RetryEvent,
        ReconfigureEvent, DriftEvent, ShedEvent, GuardrailEvent,
        CheckpointEvent,
    )
}


def event_from_record(record: dict) -> TelemetryEvent | dict:
    """Rebuild an event from its wire record.

    Unknown kinds come back as the raw dict so readers stay forward-
    compatible with dumps written by newer code.
    """
    cls = EVENT_TYPES.get(record.get("kind", ""))
    if cls is None:
        return dict(record)
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in record.items() if k in names})
