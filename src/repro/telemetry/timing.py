"""Nestable per-stage wall-clock timers for hot loops (the serving perf layer).

:mod:`repro.telemetry.tracing` records one :class:`SpanRecord` *per span* —
perfect for attributing a single DeepBAT decision, ruinous inside an event
loop that processes hundreds of thousands of events (one record allocation
per event would dominate the loop it measures). This module is the
aggregate counterpart: a :class:`StageTimers` set keeps one accumulator per
named stage (``calls`` + ``total`` seconds, two floats), so timing an event
costs two ``perf_counter()`` reads and two adds regardless of run length.

Stages nest — a stage opened while another is active simply accumulates
into its own bucket (each open is a stack entry, so a stage may even
re-enter itself) — which is enough to split "arrival handling" into
"dispatch" and "drift check" without building a span tree.

The layer is opt-in twice over:

* with telemetry disabled, :func:`stage_timers` returns the shared
  :data:`NULL_TIMERS` singleton whose ``enabled`` flag is ``False`` — hot
  loops are expected to *branch on that flag* and run an uninstrumented
  path, so the disabled cost is one attribute lookup per run, not per
  event (``tests/telemetry/test_timing.py`` pins this: no clock call is
  reachable through this module while telemetry is off);
* with telemetry enabled, accumulators only become metrics at
  :meth:`StageTimers.flush`: one ``<prefix>.<stage>.seconds`` and
  ``<prefix>.<stage>.calls`` counter pair per stage (the serving engine
  flushes ``serving.perf.*`` at the end of a run, rendered by the
  dashboard's "performance (serving)" section).
"""

from __future__ import annotations

from time import perf_counter

from repro.telemetry.metrics import MetricsRegistry, get_registry


class Stage:
    """One named accumulator; use as a (re-entrant) context manager."""

    __slots__ = ("name", "calls", "total", "_starts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total = 0.0
        self._starts: list[float] = []

    def __enter__(self) -> "Stage":
        self._starts.append(perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        self.total += perf_counter() - self._starts.pop()
        self.calls += 1

    @property
    def mean(self) -> float:
        return self.total / self.calls if self.calls else 0.0


class StageTimers:
    """A set of named stage accumulators flushing to one metrics prefix."""

    enabled: bool = True

    def __init__(self, prefix: str, registry: MetricsRegistry | None = None) -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self.prefix = prefix
        self._registry = registry if registry is not None else get_registry()
        self._stages: dict[str, Stage] = {}

    def stage(self, name: str) -> Stage:
        """The accumulator for ``name`` (created on first use).

        The returned object is stable, so hot loops should hoist it once
        (``arrival = timers.stage("arrival")``) and re-enter it per event.
        """
        stage = self._stages.get(name)
        if stage is None:
            stage = self._stages[name] = Stage(name)
        return stage

    def stages(self) -> dict[str, Stage]:
        return dict(self._stages)

    def flush(self) -> None:
        """Drain every accumulator into ``<prefix>.<stage>.{seconds,calls}``
        counters and reset it, so repeated flushes never double-count."""
        registry = self._registry
        if not registry.enabled:
            return
        for name, stage in self._stages.items():
            if not stage.calls:
                continue
            registry.counter(f"{self.prefix}.{name}.seconds").inc(stage.total)
            registry.counter(f"{self.prefix}.{name}.calls").inc(stage.calls)
            stage.calls = 0
            stage.total = 0.0


class _NullStage:
    """Do-nothing stage: ``with`` costs two constant method calls, and —
    pinned by the timing lint test — never touches the clock."""

    __slots__ = ()
    name = "null"
    calls = 0
    total = 0.0
    mean = 0.0

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_STAGE = _NullStage()


class NullStageTimers(StageTimers):
    """Disabled timer set: shared singleton, every stage is the null stage."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - no state at all
        pass

    def stage(self, name: str) -> Stage:  # type: ignore[override]
        return _NULL_STAGE  # type: ignore[return-value]

    def stages(self) -> dict[str, Stage]:
        return {}

    def flush(self) -> None:
        pass


#: The shared disabled instance handed out while telemetry is off.
NULL_TIMERS = NullStageTimers()


def stage_timers(prefix: str) -> StageTimers:
    """A :class:`StageTimers` bound to the active registry, or
    :data:`NULL_TIMERS` when telemetry is disabled."""
    registry = get_registry()
    if not registry.enabled:
        return NULL_TIMERS
    return StageTimers(prefix, registry)
