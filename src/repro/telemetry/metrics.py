"""Counters, gauges, streaming histograms, and the :class:`MetricsRegistry`.

The registry is the single sink every instrumented code path writes to:
counters and gauges for scalar state, reservoir-sampled histograms for
distributions (percentile summaries without unbounded memory), plus the
span and event streams defined in :mod:`repro.telemetry.tracing` and
:mod:`repro.telemetry.events`.

The process-wide default is :data:`NULL_REGISTRY`, whose instruments are
shared do-nothing singletons — instrumentation left in hot paths costs a
dictionary-free attribute lookup when telemetry is off (verified against
the §IV-F decision-time benchmark). Enable collection either globally::

    registry = MetricsRegistry()
    set_registry(registry)

or scoped::

    with use_registry(MetricsRegistry()) as registry:
        run_experiment(...)
    print(render_dashboard(registry.records()))
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.tracing import NULL_SPAN, NullSpan, Span, SpanRecord

#: Percentiles reported in histogram summaries and dashboard rows.
SUMMARY_PERCENTILES: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0)


class Counter:
    """Monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_record(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """Last-write-wins scalar (e.g. the current epoch's training loss)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def to_record(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "value": self.value,
            "updates": self.updates,
        }


class Histogram:
    """Streaming distribution: exact count/sum/min/max, reservoir percentiles.

    Observations beyond ``max_samples`` are reservoir-sampled (algorithm R,
    vectorized) with a deterministic per-histogram RNG, so memory stays
    bounded on arbitrarily long runs while percentile summaries remain an
    unbiased sample of the whole stream.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_cap", "_samples", "_rng")

    def __init__(self, name: str, max_samples: int = 4096, seed: int = 0) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._cap = max_samples
        self._samples: list[float] = []
        self._rng = np.random.default_rng(seed)

    def observe(self, value: float) -> None:
        self.observe_many(np.asarray([value], dtype=float))

    def observe_many(self, values: np.ndarray) -> None:
        v = np.asarray(values, dtype=float).ravel()
        if v.size == 0:
            return
        self.total += float(v.sum())
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))
        seen = self.count
        self.count += int(v.size)
        free = self._cap - len(self._samples)
        if free > 0:
            head = v[:free]
            self._samples.extend(head.tolist())
            v = v[free:]
            seen += head.size
        if v.size:
            # Algorithm R: the i-th observation survives with prob cap/i.
            order = np.arange(seen + 1, seen + 1 + v.size, dtype=float)
            keep = self._rng.random(v.size) < (self._cap / order)
            slots = self._rng.integers(0, self._cap, size=int(keep.sum()))
            for slot, value in zip(slots, v[keep]):
                self._samples[int(slot)] = float(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, p: float) -> float:
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._samples, p))

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "mean": self.mean,
            "percentiles": {
                f"{p:g}": self.percentile(p) for p in SUMMARY_PERCENTILES
            },
        }

    def to_record(self) -> dict:
        record = {"type": "histogram", "name": self.name}
        record.update(self.summary())
        return record


class MetricsRegistry:
    """The live telemetry sink: instruments, spans, and events in one place."""

    enabled: bool = True

    def __init__(self, max_histogram_samples: int = 4096) -> None:
        self._max_histogram_samples = max_histogram_samples
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.spans: list[SpanRecord] = []
        self.events: list[tuple[float, TelemetryEvent]] = []
        self._span_stack: list[str] = []
        self.epoch = time.perf_counter()

    # ---------------------------------------------------------- instruments
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(
                name, max_samples=self._max_histogram_samples
            )
        return inst

    # -------------------------------------------------------- spans & events
    def span(self, name: str) -> Span | NullSpan:
        return Span(self, name)

    def record_event(self, event: TelemetryEvent) -> None:
        self.events.append((time.perf_counter() - self.epoch, event))

    # --------------------------------------------------------------- export
    def records(self) -> Iterator[dict]:
        """Every collected datum as a flat JSON-serializable dict."""
        for counter in self._counters.values():
            yield counter.to_record()
        for gauge in self._gauges.values():
            yield gauge.to_record()
        for hist in self._histograms.values():
            yield hist.to_record()
        for span in self.spans:
            yield span.to_record()
        for offset, event in self.events:
            record = event.to_record()
            record["t"] = offset
            yield record

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()
        self.events.clear()
        self._span_stack.clear()
        self.epoch = time.perf_counter()


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = float("nan")
    updates = 0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    mean = float("nan")

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def percentile(self, p: float) -> float:
        return float("nan")


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """Disabled registry: every instrument is a shared do-nothing singleton."""

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def span(self, name: str) -> NullSpan:
        return NULL_SPAN

    def record_event(self, event: TelemetryEvent) -> None:
        pass


#: The process default: telemetry off, near-zero overhead.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (the no-op default unless enabled)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally; ``None`` restores the no-op default."""
    global _active
    _active = registry if registry is not None else NULL_REGISTRY
    return _active


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Scoped activation: install ``registry``, restore the previous on exit."""
    previous = _active
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
