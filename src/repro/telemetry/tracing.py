"""Nested wall-clock spans (the tracing half of :mod:`repro.telemetry`).

A :class:`Span` is a context manager built on
:class:`repro.utils.timing.Timer` that records its name, parent, start
offset, and duration into the registry that created it. Spans nest: the
registry keeps a stack, so a span opened while another is active records
that span as its parent — enough structure to attribute a DeepBAT decision's
time to window building, the surrogate forward, and the optimizer search.

The disabled path is a shared :data:`NULL_SPAN` singleton whose
``__enter__``/``__exit__`` do nothing, so instrumented hot loops pay only a
couple of attribute lookups when telemetry is off.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro.utils.timing import Timer


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: where time went, and under which parent."""

    name: str
    parent: str | None
    start: float  # seconds since the registry's epoch
    duration: float  # seconds

    def to_record(self) -> dict:
        record = asdict(self)
        record["type"] = "span"
        return record

    @classmethod
    def from_record(cls, record: dict) -> "SpanRecord":
        return cls(
            name=record["name"],
            parent=record.get("parent"),
            start=float(record.get("start", 0.0)),
            duration=float(record.get("duration", 0.0)),
        )


class Span:
    """A live span; use as a context manager (created by the registry)."""

    __slots__ = ("_sink", "name", "_timer", "_start")

    def __init__(self, sink, name: str) -> None:
        self._sink = sink  # the owning MetricsRegistry
        self.name = name
        self._timer = Timer()
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter() - self._sink.epoch
        self._sink._span_stack.append(self.name)
        self._timer.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.__exit__(*exc)
        stack = self._sink._span_stack
        stack.pop()
        self._sink.spans.append(
            SpanRecord(
                name=self.name,
                parent=stack[-1] if stack else None,
                start=self._start,
                duration=self._timer.elapsed,
            )
        )


class NullSpan:
    """Do-nothing span for the disabled registry (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: Shared no-op span returned by :class:`~repro.telemetry.metrics.NullRegistry`.
NULL_SPAN = NullSpan()
