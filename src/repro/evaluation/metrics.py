"""Evaluation metrics: the SLO Violation Count Ratio (Eq. 11), MAPE, and
latency-CDF comparison utilities (Fig. 13)."""

from __future__ import annotations

import numpy as np


def vcr(
    latencies: np.ndarray,
    slo: float,
    sequence_length: int = 256,
    percentile: float = 95.0,
) -> float:
    """SLO Violation Count Ratio (Eq. 11), in percent.

    The measured latencies are chunked into consecutive request sequences
    of ``sequence_length``; a sequence *violates* when its
    ``percentile``-latency exceeds the SLO. VCR is the violating fraction
    ×100 — lower is better.

    A trailing remainder shorter than ``sequence_length`` is judged as its
    own (partial) chunk — the percentile taken over its own length — so
    tail violations are never silently dropped.
    """
    if slo <= 0:
        raise ValueError(f"slo must be > 0, got {slo}")
    if sequence_length < 1:
        raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
    lat = np.asarray(latencies, dtype=float)
    if lat.size == 0:
        return 0.0
    n_full = lat.size // sequence_length
    violations = 0
    n_chunks = 0
    if n_full:
        full = lat[: n_full * sequence_length].reshape(n_full, sequence_length)
        violations += int((np.percentile(full, percentile, axis=1) > slo).sum())
        n_chunks += n_full
    tail = lat[n_full * sequence_length:]
    if tail.size:
        violations += int(np.percentile(tail, percentile) > slo)
        n_chunks += 1
    return float(violations / n_chunks * 100.0)


def mape(predicted: np.ndarray, actual: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error, in percent."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shapes must match: {predicted.shape} vs {actual.shape}"
        )
    denom = np.maximum(np.abs(actual), eps)
    return float(np.mean(np.abs(predicted - actual) / denom) * 100.0)


def empirical_cdf(samples: np.ndarray, grid: np.ndarray | None = None,
                  n_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``samples`` on a grid — the Fig. 13 curves.

    Returns ``(grid, cdf_values)``.
    """
    samples = np.sort(np.asarray(samples, dtype=float))
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    if grid is None:
        grid = np.linspace(samples[0], samples[-1], n_points)
    grid = np.asarray(grid, dtype=float)
    cdf = np.searchsorted(samples, grid, side="right") / samples.size
    return grid, cdf


def cdf_percentile_mape(
    predicted_percentiles: np.ndarray,
    observed_latencies: np.ndarray,
    percentiles: tuple[float, ...],
) -> float:
    """MAPE between predicted percentile values and the observed latency
    distribution's percentiles — the "overall for all percentiles" number
    the paper quotes per trace (2.85 % / 3.11 % / 3.32 % / 3.07 %)."""
    observed = np.percentile(np.asarray(observed_latencies, dtype=float),
                             np.asarray(percentiles))
    return mape(np.asarray(predicted_percentiles, dtype=float), observed)
