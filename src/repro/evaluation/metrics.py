"""Evaluation metrics: the SLO Violation Count Ratio (Eq. 11), MAPE,
latency-CDF comparison utilities (Fig. 13), and the goodput / SLO-attainment
family for token-streaming generation.

**Shed-request (NaN) semantics.** The serving runtime records a shed
request's latency (and TTFT/TPOT) as NaN. Every helper in the goodput
family treats NaN as an SLO **miss**: a shed request arrived, consumed
admission capacity, and was not served within its objective, so it counts
against attainment and goodput — it is never silently dropped. The one
deliberate exception is :func:`nan_percentile`, which *excludes* NaN when
summarizing the latency distribution of the requests that actually ran;
pair it with :func:`slo_attainment` (which charges the shed) rather than
using it alone as a service-quality number.
"""

from __future__ import annotations

import numpy as np


def vcr(
    latencies: np.ndarray,
    slo: float,
    sequence_length: int = 256,
    percentile: float = 95.0,
) -> float:
    """SLO Violation Count Ratio (Eq. 11), in percent.

    The measured latencies are chunked into consecutive request sequences
    of ``sequence_length``; a sequence *violates* when its
    ``percentile``-latency exceeds the SLO. VCR is the violating fraction
    ×100 — lower is better.

    A trailing remainder shorter than ``sequence_length`` is judged as its
    own (partial) chunk — the percentile taken over its own length — so
    tail violations are never silently dropped.
    """
    if slo <= 0:
        raise ValueError(f"slo must be > 0, got {slo}")
    if sequence_length < 1:
        raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
    lat = np.asarray(latencies, dtype=float)
    if lat.size == 0:
        return 0.0
    n_full = lat.size // sequence_length
    violations = 0
    n_chunks = 0
    if n_full:
        full = lat[: n_full * sequence_length].reshape(n_full, sequence_length)
        violations += int((np.percentile(full, percentile, axis=1) > slo).sum())
        n_chunks += n_full
    tail = lat[n_full * sequence_length:]
    if tail.size:
        violations += int(np.percentile(tail, percentile) > slo)
        n_chunks += 1
    return float(violations / n_chunks * 100.0)


def slo_attainment(latencies: np.ndarray, slo: float) -> float:
    """Fraction of requests meeting ``latency <= slo``, in ``[0, 1]``.

    NaN entries (shed requests) compare false against any SLO and so count
    as misses — an all-shed log attains 0.0. An empty log has no requests
    to judge and returns NaN (distinguishable from "every request missed").
    """
    if slo <= 0:
        raise ValueError(f"slo must be > 0, got {slo}")
    lat = np.asarray(latencies, dtype=float)
    if lat.size == 0:
        return float("nan")
    # NaN <= slo is False: shed requests are misses by construction.
    return float(np.count_nonzero(lat <= slo) / lat.size)


def goodput(latencies: np.ndarray, slo: float, duration: float) -> float:
    """Requests per second that met their SLO — the streaming headline.

    Counts ``latency <= slo`` over the wall-clock ``duration``; NaN
    entries (shed requests) count as misses, never as absent, so shedding
    load can only ever *lower* goodput. An empty log yields 0.0 (zero good
    requests per second is a statement, not an error).
    """
    if slo <= 0:
        raise ValueError(f"slo must be > 0, got {slo}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    lat = np.asarray(latencies, dtype=float)
    return float(np.count_nonzero(lat <= slo) / duration)


def generation_goodput(
    ttft: np.ndarray,
    ttft_slo: float,
    duration: float,
    tpot: np.ndarray | None = None,
    tpot_slo: float | None = None,
) -> float:
    """Goodput under token-streaming SLOs: requests/sec whose TTFT met
    ``ttft_slo`` and — when a ``tpot_slo`` is given — whose per-token
    decode pace met it too.

    NaN TTFT (shed, or never scheduled) is a miss. NaN TPOT on a request
    whose TTFT was met is **not** a miss: a one-token request has no
    decode steps, so there is no pace to violate.
    """
    if ttft_slo <= 0:
        raise ValueError(f"ttft_slo must be > 0, got {ttft_slo}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    ttft = np.asarray(ttft, dtype=float)
    good = ttft <= ttft_slo
    if tpot_slo is not None:
        if tpot_slo <= 0:
            raise ValueError(f"tpot_slo must be > 0, got {tpot_slo}")
        if tpot is None:
            raise ValueError("tpot_slo given without tpot values")
        t = np.asarray(tpot, dtype=float)
        # NaN > slo is False: requests without decode steps pass freely.
        good &= ~(t > tpot_slo)
    return float(np.count_nonzero(good) / duration)


def nan_percentile(values: np.ndarray, percentile: float) -> float:
    """Percentile over the finite entries of ``values``.

    Shed requests (NaN) are *excluded* — this summarizes the distribution
    of the requests that actually ran. That exclusion is exactly why a
    percentile alone understates service quality under shedding: report it
    next to :func:`slo_attainment` or :func:`goodput`, which charge the
    shed. All-NaN (or empty) input returns NaN.
    """
    vals = np.asarray(values, dtype=float)
    finite = vals[np.isfinite(vals)]
    if finite.size == 0:
        return float("nan")
    return float(np.percentile(finite, percentile))


def mape(predicted: np.ndarray, actual: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error, in percent."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shapes must match: {predicted.shape} vs {actual.shape}"
        )
    denom = np.maximum(np.abs(actual), eps)
    return float(np.mean(np.abs(predicted - actual) / denom) * 100.0)


def empirical_cdf(samples: np.ndarray, grid: np.ndarray | None = None,
                  n_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``samples`` on a grid — the Fig. 13 curves.

    Returns ``(grid, cdf_values)``.
    """
    samples = np.sort(np.asarray(samples, dtype=float))
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    if grid is None:
        grid = np.linspace(samples[0], samples[-1], n_points)
    grid = np.asarray(grid, dtype=float)
    cdf = np.searchsorted(samples, grid, side="right") / samples.size
    return grid, cdf


def cdf_percentile_mape(
    predicted_percentiles: np.ndarray,
    observed_latencies: np.ndarray,
    percentiles: tuple[float, ...],
) -> float:
    """MAPE between predicted percentile values and the observed latency
    distribution's percentiles — the "overall for all percentiles" number
    the paper quotes per trace (2.85 % / 3.11 % / 3.32 % / 3.07 %)."""
    observed = np.percentile(np.asarray(observed_latencies, dtype=float),
                             np.asarray(percentiles))
    return mape(np.asarray(predicted_percentiles, dtype=float), observed)
