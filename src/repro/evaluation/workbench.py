"""The standard experiment setup shared by benchmarks and examples.

Reproducing the paper's evaluation needs one moderately expensive artifact:
the surrogate trained on the first half of the Azure-like trace (§IV-B
"training is done only once"). The :class:`Workbench` builds that artifact
— plus the fine-tuned OOD variants for the Alibaba-like and MAP-synthetic
traces (§IV-C/D) — and caches everything under ``.cache/deepbat`` so the
benchmark suite trains once and reuses across invocations.

Scale notes (see DESIGN.md): the workbench defaults use sequence length 64
and a 24-segment × 60 s compressed day. The sensitivity bench
(``test_fig15``) sweeps sequence lengths explicitly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.arrival.stats import interarrivals
from repro.arrival.traces import (
    Trace,
    alibaba_like,
    azure_like,
    map_synthetic,
    twitter_like,
)
from repro.batching.config import BatchConfig, config_grid
from repro.core.dataset import generate_dataset
from repro.core.features import FeaturePipeline, TargetSpec
from repro.core.surrogate import DeepBATSurrogate
from repro.core.training import (
    TrainConfig,
    TrainedSurrogate,
    TrainingHistory,
    fine_tune,
    train_surrogate,
)
from repro.serverless.platform import ServerlessPlatform


@dataclass(frozen=True)
class WorkbenchSettings:
    """Everything that identifies one experimental setup (and its cache key)."""

    seq_len: int = 64
    d_model: int = 16
    num_heads: int = 4
    ff_hidden: int = 32
    num_layers: int = 2
    n_train_samples: int = 6000
    epochs: int = 60
    batch_size: int = 24
    patience: int = 12
    n_finetune_samples: int = 900
    finetune_epochs: int = 15
    seed: int = 0
    n_segments: int = 24
    segment_duration: float = 60.0
    train_segments: int = 12  # paper: first 12 hours of Azure for training
    slo: float = 0.1
    memories: tuple[float, ...] = (256.0, 512.0, 1024.0, 1792.0, 3008.0)
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32)
    timeouts: tuple[float, ...] = (0.0, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2)

    def fingerprint(self) -> str:
        payload = json.dumps(asdict(self), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


class Workbench:
    """Lazy, cached builder of traces, grid, platform, and trained models."""

    def __init__(
        self,
        settings: WorkbenchSettings | None = None,
        cache_dir: str | Path | None = None,
        workers: int | None = None,
    ) -> None:
        self.settings = settings if settings is not None else WorkbenchSettings()
        # Labeling parallelism only; results are worker-count-invariant, so
        # this deliberately stays out of the settings fingerprint.
        self.workers = workers
        root = Path(cache_dir) if cache_dir is not None else Path(".cache/deepbat")
        self.cache_dir = root / self.settings.fingerprint()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.platform = ServerlessPlatform()
        self.grid: list[BatchConfig] = config_grid(
            self.settings.memories, self.settings.batch_sizes, self.settings.timeouts
        )
        self.spec = TargetSpec()
        self._traces: dict[str, Trace] = {}
        self._models: dict[str, TrainedSurrogate] = {}

    # --------------------------------------------------------------- traces
    def trace(self, name: str) -> Trace:
        if name not in self._traces:
            gen = {
                "azure": azure_like,
                "twitter": twitter_like,
                "alibaba": alibaba_like,
                "synthetic": map_synthetic,
            }[name]
            self._traces[name] = gen(
                seed={"azure": 0, "twitter": 1, "alibaba": 2, "synthetic": 3}[name],
                n_segments=self.settings.n_segments,
                segment_duration=self.settings.segment_duration,
            )
        return self._traces[name]

    def azure_training_history(self) -> np.ndarray:
        """Inter-arrivals of the Azure trace's first ``train_segments``."""
        trace = self.trace("azure")
        head, _ = trace.split(self.settings.train_segments)
        return interarrivals(head.timestamps)

    # --------------------------------------------------------------- models
    def base_model(self) -> TrainedSurrogate:
        """The Azure-trained surrogate (trained once, cached on disk)."""
        return self._model("base", self._train_base)

    def finetuned_model(self, trace_name: str) -> TrainedSurrogate:
        """Fine-tuned variant for an OOD trace (first segment, §IV-C)."""
        if trace_name not in ("alibaba", "synthetic"):
            raise ValueError(
                f"fine-tuning is defined for the OOD traces, got {trace_name!r}"
            )
        return self._model(f"ft-{trace_name}", lambda: self._finetune(trace_name))

    def _model(self, key: str, builder) -> TrainedSurrogate:
        if key in self._models:
            return self._models[key]
        path = self.cache_dir / f"{key}.npz"
        if path.exists():
            self._models[key] = self._load(path)
        else:
            trained = builder()
            self._save(trained, path)
            self._models[key] = trained
        return self._models[key]

    def _train_base(self) -> TrainedSurrogate:
        s = self.settings
        hist = self.azure_training_history()
        dataset = generate_dataset(
            hist,
            n_samples=s.n_train_samples,
            seq_len=s.seq_len,
            configs=self.grid,
            platform=self.platform,
            spec=self.spec,
            seed=s.seed,
            workers=self.workers,
        )
        model = self._fresh_model()
        return train_surrogate(
            dataset,
            model=model,
            config=TrainConfig(
                epochs=s.epochs,
                batch_size=s.batch_size,
                patience=s.patience,
                slo=s.slo,
                seed=s.seed,
            ),
        )

    def _finetune(self, trace_name: str) -> TrainedSurrogate:
        s = self.settings
        base = self.base_model()
        # Clone so the cached base model is not mutated by fine-tuning.
        clone_model = self._fresh_model()
        clone_model.load_state_dict(base.model.state_dict())
        clone = TrainedSurrogate(
            model=clone_model, pipeline=base.pipeline, history=TrainingHistory()
        )
        first_segment = self.trace(trace_name).segment(0)
        hist = interarrivals(first_segment)
        ood = generate_dataset(
            hist,
            n_samples=s.n_finetune_samples,
            seq_len=s.seq_len,
            configs=self.grid,
            platform=self.platform,
            spec=self.spec,
            seed=s.seed + 17,
            workers=self.workers,
        )
        # Replay: mix in an equal share of original-distribution samples so
        # fine-tuning adapts to the OOD workload without forgetting the
        # broad training distribution (one observed segment is far narrower
        # than the whole trace it must generalize to).
        replay = generate_dataset(
            self.azure_training_history(),
            n_samples=s.n_finetune_samples,
            seq_len=s.seq_len,
            configs=self.grid,
            platform=self.platform,
            spec=self.spec,
            seed=s.seed + 29,
            workers=self.workers,
        )
        return fine_tune(clone, ood.concat(replay), epochs=s.finetune_epochs, lr=3e-4)

    def _fresh_model(self) -> DeepBATSurrogate:
        s = self.settings
        return DeepBATSurrogate(
            seq_len=s.seq_len,
            d_model=s.d_model,
            num_heads=s.num_heads,
            ff_hidden=s.ff_hidden,
            num_layers=s.num_layers,
            n_outputs=self.spec.n_outputs,
            seed=s.seed,
        )

    # ---------------------------------------------------------- persistence
    def _save(self, trained: TrainedSurrogate, path: Path) -> None:
        state = {f"model.{k}": v for k, v in trained.model.state_dict().items()}
        state.update(
            {f"pipeline.{k}": v for k, v in trained.pipeline.state_dict().items()}
        )
        np.savez_compressed(path, **state)

    def _load(self, path: Path) -> TrainedSurrogate:
        with np.load(path) as archive:
            state = {k: archive[k] for k in archive.files}
        model = self._fresh_model()
        model.load_state_dict(
            {k[len("model.") :]: v for k, v in state.items() if k.startswith("model.")}
        )
        pipeline = FeaturePipeline(spec=self.spec)
        pipeline.load_state_dict(
            {k[len("pipeline.") :]: v for k, v in state.items() if k.startswith("pipeline.")}
        )
        return TrainedSurrogate(model=model, pipeline=pipeline, history=TrainingHistory())


_DEFAULT: Workbench | None = None


def get_workbench(
    cache_dir: str | Path | None = None, workers: int | None = None
) -> Workbench:
    """Process-wide default workbench (lazy)."""
    global _DEFAULT
    if _DEFAULT is None or cache_dir is not None:
        _DEFAULT = Workbench(cache_dir=cache_dir, workers=workers)
    return _DEFAULT
