"""Multi-controller comparison orchestration.

Bundles the common evaluation pattern — several controllers replayed over
the same trace and segments, plus the ground-truth oracle — into one call
returning a :class:`ComparisonReport` with aligned per-segment series and a
rendered summary table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arrival.traces import Trace
from repro.batching.config import BatchConfig
from repro.evaluation.harness import (
    DEFAULT_SEQUENCE_LENGTH,
    Chooser,
    ExperimentLog,
    run_experiment,
    run_oracle,
)
from repro.evaluation.reporting import format_table
from repro.serverless.platform import ServerlessPlatform


@dataclass
class ComparisonReport:
    """Aligned results of several controllers over one trace."""

    trace: str
    slo: float
    logs: dict[str, ExperimentLog] = field(default_factory=dict)

    @property
    def names(self) -> list[str]:
        return list(self.logs)

    def summary_rows(self) -> list[list]:
        rows = []
        for name, log in self.logs.items():
            rows.append([
                name,
                f"{log.vcr_series().mean():.2f}",
                f"{np.nanmax(log.vcr_series()):.1f}",
                f"{np.nanmean(log.latency_series(95)) * 1e3:.1f}",
                f"{np.nanmean(log.cost_series()) * 1e6:.4f}",
                f"{log.mean_decision_time * 1e3:.1f}",
            ])
        return rows

    def render(self) -> str:
        return format_table(
            ["controller", "mean VCR %", "max VCR %", "mean p95 ms",
             "cost $/1M", "decision ms"],
            self.summary_rows(),
            title=f"{self.trace}: SLO {self.slo * 1e3:.0f} ms",
        )

    def best_by_cost_meeting_slo(self, vcr_threshold: float = 1.0) -> str | None:
        """The cheapest controller whose mean VCR stays below the threshold."""
        feasible = [
            (np.nanmean(log.cost_series()), name)
            for name, log in self.logs.items()
            if log.vcr_series().mean() <= vcr_threshold
        ]
        if not feasible:
            return None
        return min(feasible)[1]


def compare_controllers(
    trace: Trace,
    controllers: dict[str, tuple[Chooser, int | None]],
    slo: float,
    platform: ServerlessPlatform | None = None,
    segments: range | None = None,
    include_oracle: bool = False,
    oracle_configs: list[BatchConfig] | None = None,
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH,
) -> ComparisonReport:
    """Replay every controller over the same segments.

    ``controllers`` maps a display name to ``(chooser, update_every)``;
    ``update_every=None`` means one decision per segment (BATCH-style).
    With ``include_oracle`` the exhaustive ground-truth optimum is added
    as the reference line (requires ``oracle_configs``). The VCR chunk
    length is forced uniform across controllers (``sequence_length``) so
    the summary table compares like with like.
    """
    platform = platform if platform is not None else ServerlessPlatform()
    report = ComparisonReport(trace=trace.name, slo=slo)
    for name, (chooser, update_every) in controllers.items():
        report.logs[name] = run_experiment(
            trace, chooser, slo=slo, platform=platform,
            segments=segments, update_every=update_every,
            sequence_length=sequence_length, name=name,
        )
    if include_oracle:
        if not oracle_configs:
            raise ValueError("include_oracle requires oracle_configs")
        report.logs["ground-truth"] = run_oracle(
            trace, oracle_configs, slo=slo, platform=platform,
            segments=segments, sequence_length=sequence_length,
        )
    return report
