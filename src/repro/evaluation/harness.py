"""Closed-loop experiment harness.

Replays a trace segment by segment ("hour by hour"): before each segment a
*chooser* (BATCH, DeepBAT, or the ground-truth oracle) picks a
configuration from the workload observed so far, the segment is then served
under that choice in the ground-truth simulator, and per-segment metrics
are logged. DeepBAT can additionally re-optimize *within* a segment (its
fast decisions make that affordable — the adaptivity advantage of §IV-C/D),
while BATCH re-fits only at segment boundaries, exactly as in the paper.

Every chooser returns the unified :class:`repro.core.types.Decision`
surface, and each served segment emits a :class:`SegmentEvent` (plus a
:class:`ViolationEvent` on SLO breaches) through :mod:`repro.telemetry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.arrival.stats import interarrivals
from repro.arrival.traces import Trace
from repro.batching.config import BatchConfig
from repro.batching.simulator import SimulationResult, simulate
from repro.core.types import Decision
from repro.evaluation.metrics import vcr
from repro.serverless.platform import ServerlessPlatform
from repro.telemetry.events import SegmentEvent, ViolationEvent
from repro.telemetry.metrics import get_registry

#: Eq. 11's request-sequence length, used when a chooser does not expose
#: the window length it actually observes.
DEFAULT_SEQUENCE_LENGTH = 256


class Chooser(Protocol):
    """Anything that picks a configuration from an inter-arrival history."""

    def choose(self, interarrival_history: np.ndarray, slo: float) -> Decision:
        """Returns a :class:`repro.core.types.Decision` (or a subclass)."""
        ...


def _resolve_sequence_length(chooser: Chooser, sequence_length: int | None) -> int:
    """The VCR chunk length for a run: explicit > chooser's window > Eq. 11.

    A chooser advertising a nonsensical window (``window_length < 1``) is
    rejected loudly, mirroring the explicit-argument check — it must not
    silently fall back to the Eq. 11 default.
    """
    if sequence_length is not None:
        if sequence_length < 1:
            raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
        return int(sequence_length)
    window = getattr(chooser, "window_length", None)
    if window is None:
        return DEFAULT_SEQUENCE_LENGTH
    window = int(window)
    if window < 1:
        raise ValueError(
            f"chooser window_length must be >= 1, got {window}"
        )
    return window


@dataclass(frozen=True)
class SegmentOutcome:
    """Metrics of one trace segment served under a chooser's decisions.

    The resilience fields are zero on fault-free runs: ``n_retries`` counts
    invocation re-dispatches (failures, timeouts, throttle rejections),
    ``n_failed`` the requests whose batch exhausted every retry, and
    ``degraded_decisions`` the choose() calls answered from the
    controller's last known-good decision.
    """

    segment: int
    configs: tuple[BatchConfig, ...]
    latencies: np.ndarray
    total_cost: float
    n_requests: int
    decision_times: tuple[float, ...]
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH
    n_retries: int = 0
    n_failed: int = 0
    degraded_decisions: int = 0

    def p(self, percentile: float) -> float:
        if self.latencies.size == 0:
            return np.nan
        return float(np.percentile(self.latencies, percentile))

    @property
    def cost_per_request(self) -> float:
        return self.total_cost / self.n_requests if self.n_requests else np.nan

    def vcr(
        self,
        slo: float,
        sequence_length: int | None = None,
        percentile: float = 95.0,
    ) -> float:
        """VCR of this segment; chunked by the run's recorded sequence
        length unless an explicit ``sequence_length`` overrides it."""
        length = self.sequence_length if sequence_length is None else sequence_length
        return vcr(self.latencies, slo, length, percentile)


@dataclass
class ExperimentLog:
    """Per-segment outcomes for one chooser over one trace."""

    name: str
    trace: str
    slo: float
    outcomes: list[SegmentOutcome] = field(default_factory=list)
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH

    def vcr_series(
        self, sequence_length: int | None = None, percentile: float = 95.0
    ) -> np.ndarray:
        length = self.sequence_length if sequence_length is None else sequence_length
        return np.array(
            [o.vcr(self.slo, length, percentile) for o in self.outcomes]
        )

    def cost_series(self) -> np.ndarray:
        return np.array([o.cost_per_request for o in self.outcomes])

    def latency_series(self, percentile: float = 95.0) -> np.ndarray:
        return np.array([o.p(percentile) for o in self.outcomes])

    def all_latencies(self) -> np.ndarray:
        if not self.outcomes:
            return np.empty(0)
        return np.concatenate([o.latencies for o in self.outcomes])

    @property
    def total_cost(self) -> float:
        return float(sum(o.total_cost for o in self.outcomes))

    @property
    def total_retries(self) -> int:
        return sum(o.n_retries for o in self.outcomes)

    @property
    def total_failed(self) -> int:
        return sum(o.n_failed for o in self.outcomes)

    @property
    def total_degraded_decisions(self) -> int:
        return sum(o.degraded_decisions for o in self.outcomes)

    @property
    def mean_decision_time(self) -> float:
        times = [t for o in self.outcomes for t in o.decision_times]
        return float(np.mean(times)) if times else 0.0


def run_segment(
    trace: Trace,
    segment: int,
    chooser: Chooser,
    slo: float,
    platform: ServerlessPlatform,
    update_every: int | None = None,
    history_tail: int = 4096,
    sequence_length: int | None = None,
) -> SegmentOutcome:
    """Serve one segment under the chooser's decisions.

    ``update_every``: re-optimize after this many requests *within* the
    segment (None = one decision per segment, BATCH-style). The history
    handed to the chooser is the previous segment plus the part of the
    current segment already served, truncated to ``history_tail`` samples.
    ``sequence_length``: the VCR chunk length recorded on the outcome;
    defaults to the chooser's observation window (falling back to Eq. 11's
    256 for window-less choosers).
    """
    if segment < 1:
        raise ValueError("segment must be >= 1 (segment 0 has no history)")
    seq_len = _resolve_sequence_length(chooser, sequence_length)
    prev = trace.segment(segment - 1, relative=False)
    current = trace.segment(segment, relative=False)

    if current.size == 0:
        return SegmentOutcome(segment, (), np.empty(0), 0.0, 0, (), seq_len)

    blocks: list[np.ndarray]
    if update_every is None or current.size <= update_every:
        blocks = [current]
    else:
        n_blocks = int(np.ceil(current.size / update_every))
        blocks = np.array_split(current, n_blocks)

    latencies: list[np.ndarray] = []
    cost = 0.0
    configs: list[BatchConfig] = []
    dtimes: list[float] = []
    n_retries = 0
    n_failed = 0
    degraded = 0
    served = np.empty(0)
    for block in blocks:
        history_ts = np.concatenate([prev, served])
        # The last k inter-arrivals only need the last k+1 timestamps;
        # slicing first keeps the per-block work O(history_tail), not
        # O(total served history).
        hist = interarrivals(history_ts[-(history_tail + 1):])
        decision = chooser.choose(hist, slo)
        diagnostics = getattr(decision, "diagnostics", None)
        if diagnostics and diagnostics.get("degraded"):
            degraded += 1
        configs.append(decision.config)
        dtimes.append(float(decision.decision_time))
        result: SimulationResult = simulate(block, decision.config, platform)
        latencies.append(result.latencies)
        cost += result.total_cost
        n_retries += int(result.extra.get("retries", 0))
        n_retries += int(result.extra.get("throttle_retries", 0))
        n_failed += int(result.extra.get("failed_requests", 0))
        served = np.concatenate([served, block])

    outcome = SegmentOutcome(
        segment=segment,
        configs=tuple(configs),
        latencies=np.concatenate(latencies),
        total_cost=cost,
        n_requests=current.size,
        decision_times=tuple(dtimes),
        sequence_length=seq_len,
        n_retries=n_retries,
        n_failed=n_failed,
        degraded_decisions=degraded,
    )
    registry = get_registry()
    if registry.enabled:
        p95 = outcome.p(95.0)
        registry.histogram("harness.segment_p95").observe(p95)
        registry.histogram("harness.segment_cost_per_request").observe(
            outcome.cost_per_request
        )
        registry.histogram("harness.decision_time").observe_many(
            np.asarray(dtimes, dtype=float)
        )
        if n_retries:
            registry.counter("harness.retried_invocations").inc(n_retries)
        if n_failed:
            registry.counter("harness.failed_requests").inc(n_failed)
        registry.record_event(SegmentEvent(
            segment=segment,
            n_requests=outcome.n_requests,
            p95=p95,
            cost_per_request=outcome.cost_per_request,
            vcr=outcome.vcr(slo),
            mean_decision_time=float(np.mean(dtimes)) if dtimes else 0.0,
            slo=slo,
            controller=type(chooser).__name__,
            retries=n_retries,
            failed_requests=n_failed,
            degraded_decisions=degraded,
        ))
        if p95 > slo:
            registry.counter("harness.slo_violations").inc()
            registry.record_event(
                ViolationEvent(segment=segment, observed_p95=p95, slo=slo)
            )
    return outcome


def run_experiment(
    trace: Trace,
    chooser: Chooser,
    slo: float,
    platform: ServerlessPlatform | None = None,
    segments: range | None = None,
    update_every: int | None = None,
    history_tail: int = 4096,
    sequence_length: int | None = None,
    name: str = "chooser",
) -> ExperimentLog:
    """Run a chooser over a range of segments (default: 1 … n−1)."""
    platform = platform if platform is not None else ServerlessPlatform()
    segments = segments if segments is not None else range(1, trace.n_segments)
    seq_len = _resolve_sequence_length(chooser, sequence_length)
    log = ExperimentLog(
        name=name, trace=trace.name, slo=slo, sequence_length=seq_len
    )
    for seg in segments:
        log.outcomes.append(
            run_segment(
                trace, seg, chooser, slo, platform,
                update_every=update_every,
                history_tail=history_tail,
                sequence_length=seq_len,
            )
        )
    return log


@dataclass
class OracleChooser:
    """Ground-truth oracle: exhaustively simulates the *upcoming* workload.

    Used as the "Ground Truth" line of the paper's figures. Because it sees
    the future it is not a real controller — it bounds what any controller
    could achieve. Its decisions report ``decision_time`` 0 for the same
    reason: exhaustive search over the future is not a cost any deployable
    controller would pay.
    """

    configs: list[BatchConfig]
    platform: ServerlessPlatform
    percentile: float = 95.0
    future: np.ndarray | None = None

    def set_future(self, timestamps: np.ndarray) -> None:
        self.future = np.asarray(timestamps, dtype=float)

    def choose(self, interarrival_history: np.ndarray, slo: float) -> Decision:
        from repro.batching.simulator import ground_truth_optimum

        if self.future is None:
            raise RuntimeError("oracle needs set_future() before choose()")
        config, _ = ground_truth_optimum(
            self.future, self.configs, self.platform, slo, self.percentile
        )
        return Decision(config=config)


def run_oracle(
    trace: Trace,
    configs: list[BatchConfig],
    slo: float,
    platform: ServerlessPlatform | None = None,
    segments: range | None = None,
    update_every: int | None = None,
    history_tail: int = 4096,
    sequence_length: int | None = None,
    percentile: float = 95.0,
) -> ExperimentLog:
    """Ground-truth line: per segment, the exhaustive-search optimum.

    Accepts the same ``segments``/``update_every``/``history_tail``/
    ``sequence_length`` knobs as :func:`run_experiment`, so oracle and
    controller runs are configured through one signature.
    """
    platform = platform if platform is not None else ServerlessPlatform()
    segments = segments if segments is not None else range(1, trace.n_segments)
    oracle = OracleChooser(configs, platform, percentile)
    seq_len = _resolve_sequence_length(oracle, sequence_length)
    log = ExperimentLog(
        name="ground-truth", trace=trace.name, slo=slo, sequence_length=seq_len
    )
    for seg in segments:
        oracle.set_future(trace.segment(seg, relative=False))
        log.outcomes.append(
            run_segment(
                trace, seg, oracle, slo, platform,
                update_every=update_every,
                history_tail=history_tail,
                sequence_length=seq_len,
            )
        )
    return log
