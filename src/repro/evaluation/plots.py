"""Terminal plotting: sparklines, bar charts, and histograms.

The paper communicates through figures; these helpers render the same data
as compact Unicode charts in benchmark output and examples, so a terminal
session can eyeball the VCR series, latency CDFs, and rate profiles without
a plotting stack.
"""

from __future__ import annotations

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, lo: float | None = None, hi: float | None = None) -> str:
    """Render a series as a one-line Unicode sparkline.

    ``lo``/``hi`` pin the scale (default: data min/max); NaNs render as
    spaces.
    """
    x = np.asarray(values, dtype=float).ravel()
    if x.size == 0:
        return ""
    finite = x[np.isfinite(x)]
    if finite.size == 0:
        return " " * x.size
    lo = float(finite.min()) if lo is None else lo
    hi = float(finite.max()) if hi is None else hi
    if hi <= lo:
        return _SPARK_LEVELS[0] * x.size
    scaled = (x - lo) / (hi - lo)
    out = []
    for v in scaled:
        if not np.isfinite(v):
            out.append(" ")
        else:
            idx = int(np.clip(v, 0, 1) * (len(_SPARK_LEVELS) - 1))
            out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    labels: list[str],
    values: np.ndarray,
    width: int = 40,
    fmt: str = "{:.3g}",
) -> str:
    """Horizontal bar chart with aligned labels and values."""
    values = np.asarray(values, dtype=float)
    if len(labels) != values.size:
        raise ValueError("labels and values must align")
    if values.size == 0:
        return ""
    vmax = np.nanmax(np.abs(values))
    label_w = max(len(l) for l in labels)
    lines = []
    for label, v in zip(labels, values):
        n = 0 if not np.isfinite(v) or vmax == 0 else int(round(abs(v) / vmax * width))
        lines.append(f"{label.ljust(label_w)} | {'█' * n} {fmt.format(v)}")
    return "\n".join(lines)


def histogram(
    samples: np.ndarray,
    bins: int = 10,
    width: int = 40,
    fmt: str = "{:.3g}",
) -> str:
    """Text histogram of a sample (one bin per line)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(samples, bins=bins)
    labels = [f"[{fmt.format(a)}, {fmt.format(b)})" for a, b in zip(edges[:-1], edges[1:])]
    return bar_chart(labels, counts, width=width, fmt="{:.0f}")
