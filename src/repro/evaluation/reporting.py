"""ASCII reporting of experiment results — the benchmark harness prints the
same rows/series the paper's figures and tables show."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: np.ndarray, fmt: str = "{:.3g}") -> str:
    """One labelled series on a single line (a figure's data points)."""
    vals = " ".join(fmt.format(v) for v in np.asarray(values).ravel())
    return f"{name}: {vals}"


def _fmt(value) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
