"""Evaluation: metrics (VCR Eq. 11), the closed-loop harness, reporting,
and the cached experiment workbench."""

from repro.evaluation.comparison import ComparisonReport, compare_controllers
from repro.evaluation.harness import (
    DEFAULT_SEQUENCE_LENGTH,
    Chooser,
    ExperimentLog,
    OracleChooser,
    SegmentOutcome,
    run_experiment,
    run_oracle,
    run_segment,
)
from repro.evaluation.metrics import (
    cdf_percentile_mape,
    empirical_cdf,
    generation_goodput,
    goodput,
    mape,
    nan_percentile,
    slo_attainment,
    vcr,
)
from repro.evaluation.plots import bar_chart, histogram, sparkline
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.workbench import Workbench, WorkbenchSettings, get_workbench

__all__ = [
    "Chooser",
    "ComparisonReport",
    "DEFAULT_SEQUENCE_LENGTH",
    "ExperimentLog",
    "compare_controllers",
    "OracleChooser",
    "SegmentOutcome",
    "Workbench",
    "WorkbenchSettings",
    "bar_chart",
    "cdf_percentile_mape",
    "empirical_cdf",
    "format_series",
    "format_table",
    "generation_goodput",
    "get_workbench",
    "goodput",
    "histogram",
    "mape",
    "nan_percentile",
    "slo_attainment",
    "sparkline",
    "run_experiment",
    "run_oracle",
    "run_segment",
    "vcr",
]
