"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the full workflow without writing Python:

* ``traces``   — generate/inspect workload traces (npz or csv);
* ``train``    — label windows with the simulator and train a surrogate;
* ``optimize`` — one DeepBAT decision for a trace segment;
* ``evaluate`` — closed-loop DeepBAT-vs-BATCH comparison over segments
  (``--telemetry PATH`` additionally dumps spans/metrics/events as JSONL;
  ``--fault-rate``/``--fault-timeout``/``--retries`` inject seeded
  platform faults and report retries/failures/degraded decisions);
* ``serve``    — live serving loop (:mod:`repro.serving`): warm-pool
  keep-alive, deploy lag, admission control, periodic and drift-triggered
  re-decisions; earlier segments warm up the controller history.
  ``--checkpoint PATH`` makes the run crash-safe (snapshots + event
  journal; ``--restore`` resumes it bit-identically) and ``--guardrail``
  arms the SLO circuit breaker. ``--fleet fleet.json`` switches to
  multi-endpoint fleet serving (:mod:`repro.serving.fleet`): the trace is
  split across the configured endpoints by share, each with its own SLO
  and pool, under an optional shared container budget and cross-tenant
  scheduler. ``--prewarm {empirical,map,oracle}`` arms predictive
  warm-pool prewarming (:mod:`repro.serving.prewarm`): forecast the
  near-future arrival rate and provision containers ahead of demand.
  ``--generation gen.json`` switches the workload to token-streaming
  generation (:mod:`repro.serving.generation` has the schema): each
  request carries sampled prompt/output token counts, batches run
  prefill/decode iterations, and the summary reports goodput under
  TTFT/TPOT SLOs. ``--outages outages.json`` arms the correlated
  infrastructure-fault layer (:mod:`repro.serving.degrade` has the
  schema): outage windows deny cold starts, containers crash mid-batch,
  stragglers stretch service times, and the configured degradation stack
  (cold-start backoff, request hedging) answers;
* ``report``   — render the ASCII telemetry dashboard from such a dump.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import numpy as np

from repro.arrival.io import export_csv, load_trace, save_trace
from repro.arrival.stats import interarrivals
from repro.arrival.traces import STANDARD_TRACES
from repro.baseline.controller import BATCHController
from repro.batching.config import config_grid
from repro.core.controller import DeepBATController
from repro.core.dataset import generate_dataset
from repro.core.training import TrainConfig, load_trained, save_trained, train_surrogate
from repro.evaluation.harness import run_experiment
from repro.evaluation.reporting import format_table
from repro.serverless.faults import FaultModel, RetryPolicy
from repro.serverless.platform import ServerlessPlatform
from repro.telemetry import (
    MetricsRegistry,
    read_jsonl,
    render_dashboard,
    use_registry,
    write_jsonl,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepBAT reproduction: serverless inference batching optimization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tr = sub.add_parser("traces", help="generate or inspect workload traces")
    p_tr.add_argument("action", choices=["generate", "stats"])
    p_tr.add_argument("--kind", choices=sorted(STANDARD_TRACES), default="azure")
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--segments", type=int, default=24)
    p_tr.add_argument("--segment-duration", type=float, default=60.0)
    p_tr.add_argument("--out", help="output path (.npz or .csv)")
    p_tr.add_argument("--path", help="trace to inspect (stats)")

    p_train = sub.add_parser("train", help="train a surrogate on a trace")
    p_train.add_argument("--trace", required=True, help="trace .npz path")
    p_train.add_argument("--train-segments", type=int, default=12)
    p_train.add_argument("--samples", type=int, default=2000)
    p_train.add_argument("--seq-len", type=int, default=64)
    p_train.add_argument("--epochs", type=int, default=40)
    p_train.add_argument("--batch-size", type=int, default=24)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--workers", type=int, default=1,
                         help="label windows with this many processes "
                              "(deterministic: results match --workers 1)")
    p_train.add_argument("--out", required=True, help="model checkpoint path (.npz)")

    p_opt = sub.add_parser("optimize", help="one DeepBAT decision")
    p_opt.add_argument("--model", required=True)
    p_opt.add_argument("--trace", required=True)
    p_opt.add_argument("--segment", type=int, default=1,
                       help="decide for this segment using the previous one")
    p_opt.add_argument("--slo", type=float, default=0.1)

    p_eval = sub.add_parser("evaluate", help="closed-loop comparison")
    p_eval.add_argument("--model", required=True)
    p_eval.add_argument("--trace", required=True)
    p_eval.add_argument("--slo", type=float, default=0.1)
    p_eval.add_argument("--segments", default="1:13", help="segment range a:b")
    p_eval.add_argument("--controllers", default="deepbat,batch")
    p_eval.add_argument("--update-every", type=int, default=512)
    p_eval.add_argument("--telemetry", metavar="PATH",
                        help="collect telemetry and dump it as JSONL here")
    p_eval.add_argument("--fault-rate", type=float, default=0.0,
                        help="per-attempt invocation failure probability "
                             "(0 disables fault injection; default 0)")
    p_eval.add_argument("--fault-timeout", type=float, default=None,
                        help="invocation timeout in seconds; batches whose "
                             "(M, B)-dependent run time exceeds it time out")
    p_eval.add_argument("--retries", type=int, default=3,
                        help="max invocation attempts under faults (>= 1)")
    p_eval.add_argument("--seed", type=int, default=0,
                        help="platform seed for deterministic fault draws")

    p_srv = sub.add_parser("serve", help="live serving loop over a trace")
    p_srv.add_argument("--trace", required=True, help="trace .npz path")
    p_srv.add_argument("--fleet", metavar="PATH",
                       help="fleet mode: serve the multi-endpoint fleet "
                            "described by this JSON config (endpoints split "
                            "the trace by their share weights); see "
                            "repro.serving.fleet_config for the schema")
    p_srv.add_argument("--generation", metavar="PATH",
                       help="token-streaming mode: serve the generation "
                            "workload described by this JSON config "
                            "(dispatcher, TTFT/TPOT SLOs, length model); "
                            "see repro.serving.generation for the schema")
    p_srv.add_argument("--outages", metavar="PATH",
                       help="infrastructure-fault mode: outage windows, "
                            "container crashes, stragglers, and the "
                            "graceful-degradation stack (cold-start "
                            "backoff, hedging) described by this JSON "
                            "config; see repro.serving.degrade for the "
                            "schema")
    p_srv.add_argument("--chooser", choices=["deepbat", "batch", "static"],
                       default="static")
    p_srv.add_argument("--model", help="surrogate checkpoint (deepbat only)")
    p_srv.add_argument("--slo", type=float, default=0.1)
    p_srv.add_argument("--start-segment", type=int, default=1,
                       help="serve from this segment on; earlier segments "
                            "seed the controller history and drift envelope")
    p_srv.add_argument("--memory", type=float, default=2048.0,
                       help="initial (and static-chooser) memory tier MB")
    p_srv.add_argument("--batch-size", type=int, default=8)
    p_srv.add_argument("--timeout", type=float, default=0.05)
    p_srv.add_argument("--keep-alive", type=float, default=600.0,
                       help="container keep-alive window in seconds")
    p_srv.add_argument("--max-containers", type=int, default=None,
                       help="warm-pool size cap (default: unbounded)")
    p_srv.add_argument("--queue-limit", type=int, default=None,
                       help="batches allowed to queue for a container; "
                            "beyond it requests are shed (default: unbounded)")
    p_srv.add_argument("--deploy-delay", type=float, default=2.0,
                       help="seconds before a new (M,B,T) takes effect")
    p_srv.add_argument("--decision-interval", type=float, default=None,
                       help="periodic re-decision interval (default: the "
                            "trace's segment duration)")
    p_srv.add_argument("--drift", action="store_true",
                       help="fit a workload-drift detector on the warmup "
                            "segments and trigger out-of-band decisions")
    p_srv.add_argument("--drift-window", type=int, default=64)
    p_srv.add_argument("--retrain-delay", type=float, default=None,
                       help="schedule a detector refit this long after each "
                            "drift trigger (default: no retraining)")
    p_srv.add_argument("--cold-starts", action="store_true",
                       help="attach the cold-start model (provisioning "
                            "delays on cold containers)")
    p_srv.add_argument("--fault-rate", type=float, default=0.0,
                       help="per-attempt invocation failure probability")
    p_srv.add_argument("--fault-timeout", type=float, default=None,
                       help="invocation timeout in seconds")
    p_srv.add_argument("--retries", type=int, default=3,
                       help="max invocation attempts under faults (>= 1)")
    p_srv.add_argument("--seed", type=int, default=0,
                       help="platform seed for deterministic fault draws")
    p_srv.add_argument("--telemetry", metavar="PATH",
                       help="collect telemetry and dump it as JSONL here")
    p_srv.add_argument("--checkpoint", metavar="PATH",
                       help="crash-safe mode: snapshot the engine state here "
                            "(plus an event journal at PATH.journal)")
    p_srv.add_argument("--checkpoint-every", type=int, default=256,
                       help="events between snapshots (default 256)")
    p_srv.add_argument("--restore", action="store_true",
                       help="resume the run from --checkpoint instead of "
                            "starting fresh (bit-identical continuation)")
    p_srv.add_argument("--guardrail", action="store_true",
                       help="enable the SLO circuit breaker: trip to a safe "
                            "config when observed tail latency breaks the SLO")
    p_srv.add_argument("--guardrail-window", type=int, default=64,
                       help="completed requests per violation window")
    p_srv.add_argument("--guardrail-percentile", type=float, default=95.0,
                       help="latency percentile compared against the SLO")
    p_srv.add_argument("--guardrail-k", type=int, default=3,
                       help="consecutive violating windows that trip")
    p_srv.add_argument("--guardrail-cooldown", type=float, default=30.0,
                       help="seconds open before probing the controller again")
    p_srv.add_argument("--prewarm", choices=["empirical", "map", "oracle"],
                       default=None,
                       help="predictive warm-pool prewarming: forecast the "
                            "near-future arrival rate and provision "
                            "containers ahead of demand (empirical windowed "
                            "rate, a MAP fitted on the warmup segments, or "
                            "the oracle that reads the future trace — the "
                            "upper bound, not a deployable policy)")
    p_srv.add_argument("--prewarm-interval", type=float, default=1.0,
                       help="seconds between prewarming ticks (default 1)")
    p_srv.add_argument("--prewarm-horizon", type=float, default=None,
                       help="forecast horizon in seconds (default: the tick "
                            "interval plus the active tier's cold-start "
                            "delay)")
    p_srv.add_argument("--prewarm-headroom", type=float, default=1.0,
                       help="multiplier on the forecast rate before sizing "
                            "the warm pool (default 1.0)")
    p_srv.add_argument("--prewarm-max", type=int, default=None,
                       help="containers provisioned per tick at most "
                            "(default: unbounded)")
    p_srv.add_argument("--prewarm-window", type=int, default=256,
                       help="recent inter-arrivals fed to the forecaster "
                            "(default 256)")
    p_srv.add_argument("--prewarm-retire", action="store_true",
                       help="also retire idle containers above the target "
                            "(off by default: idle containers bill nothing "
                            "and retiring strips the keep-alive slack)")

    p_rep = sub.add_parser("report", help="render a telemetry dashboard")
    p_rep.add_argument("path", help="JSONL dump written by evaluate --telemetry")
    return parser


def _cmd_traces(args) -> int:
    if args.action == "generate":
        if not args.out:
            print("error: --out is required for generate", file=sys.stderr)
            return 2
        trace = STANDARD_TRACES[args.kind](
            seed=args.seed, n_segments=args.segments,
            segment_duration=args.segment_duration,
        )
        if args.out.endswith(".csv"):
            export_csv(trace, args.out)
        else:
            save_trace(trace, args.out)
        print(f"wrote {trace.timestamps.size} arrivals "
              f"({trace.n_segments} segments) to {args.out}")
        return 0
    # stats
    if not args.path:
        print("error: --path is required for stats", file=sys.stderr)
        return 2
    trace = load_trace(args.path)
    rows = [
        [i, f"{trace.segment_rate(i):.1f}", f"{trace.segment_idc(i):.1f}"]
        for i in range(trace.n_segments)
    ]
    print(format_table(["segment", "rate req/s", "IDC"], rows,
                       title=f"trace {trace.name!r}"))
    return 0


def _cmd_train(args) -> int:
    trace = load_trace(args.trace)
    if not 0 < args.train_segments <= trace.n_segments:
        print("error: --train-segments out of range", file=sys.stderr)
        return 2
    head = (trace.split(args.train_segments)[0]
            if args.train_segments < trace.n_segments else trace)
    history = interarrivals(head.timestamps)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    print(f"labelling {args.samples} windows (seq_len={args.seq_len}, "
          f"workers={args.workers})...")
    dataset = generate_dataset(history, n_samples=args.samples,
                               seq_len=args.seq_len, seed=args.seed,
                               workers=args.workers)
    print(f"training for up to {args.epochs} epochs...")
    trained = train_surrogate(
        dataset,
        config=TrainConfig(epochs=args.epochs, batch_size=args.batch_size,
                           seed=args.seed),
    )
    save_trained(trained, args.out)
    best = trained.history.best_epoch
    print(f"saved {args.out} (best epoch {best}, "
          f"val MAPE {trained.history.val_mape[best]:.1f} %)")
    return 0


def _cmd_optimize(args) -> int:
    trained = load_trained(args.model)
    trace = load_trace(args.trace)
    controller = DeepBATController(trained)
    history = interarrivals(trace.segment(args.segment - 1))
    decision = controller.choose(history, args.slo)
    print(f"segment {args.segment}: {decision.config}")
    print(f"predicted p95 latency: {decision.optimization.predicted_latency * 1e3:.1f} ms")
    print(f"predicted cost       : ${decision.optimization.predicted_cost_per_million:.4f}/1M req")
    print(f"decision time        : {decision.decision_time * 1e3:.0f} ms")
    return 0


def _cmd_evaluate(args) -> int:
    if args.telemetry:
        # Fail before the (expensive) run, not when dumping afterwards.
        try:
            with open(args.telemetry, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write {args.telemetry}: {exc}", file=sys.stderr)
            return 2
    lo, _, hi = args.segments.partition(":")
    segments = range(int(lo), int(hi))
    trained = load_trained(args.model)
    trace = load_trace(args.trace)
    if not 0.0 <= args.fault_rate < 1.0:
        print("error: --fault-rate must be in [0, 1)", file=sys.stderr)
        return 2
    if args.retries < 1:
        print("error: --retries must be >= 1", file=sys.stderr)
        return 2
    faulty = args.fault_rate > 0.0 or args.fault_timeout is not None
    if faulty:
        platform = ServerlessPlatform(
            seed=args.seed,
            faults=FaultModel(failure_rate=args.fault_rate,
                              timeout_s=args.fault_timeout),
            retry_policy=RetryPolicy(max_attempts=args.retries),
        )
    else:
        platform = ServerlessPlatform()
    grid = config_grid()
    registry = MetricsRegistry() if args.telemetry else None
    rows = []
    scope = use_registry(registry) if registry is not None else contextlib.nullcontext()
    with scope:
        for name in args.controllers.split(","):
            name = name.strip().lower()
            if name == "deepbat":
                chooser = DeepBATController(trained, configs=grid)
                log = run_experiment(trace, chooser, slo=args.slo, platform=platform,
                                     segments=segments, update_every=args.update_every,
                                     name="deepbat")
            elif name == "batch":
                chooser = BATCHController(configs=grid, profile=platform.profile,
                                          pricing=platform.pricing)
                log = run_experiment(trace, chooser, slo=args.slo, platform=platform,
                                     segments=segments, name="batch")
            else:
                print(f"error: unknown controller {name!r}", file=sys.stderr)
                return 2
            row = [
                name,
                f"{log.vcr_series().mean():.2f}",
                f"{np.nanmean(log.latency_series(95)) * 1e3:.1f}",
                f"{np.nanmean(log.cost_series()) * 1e6:.4f}",
                f"{log.mean_decision_time * 1e3:.0f}",
            ]
            if faulty:
                row += [log.total_retries, log.total_failed,
                        log.total_degraded_decisions]
            rows.append(row)
    headers = ["controller", "mean VCR %", "mean p95 ms", "cost $/1M",
               "decision ms"]
    if faulty:
        headers += ["retries", "failed", "degraded"]
    print(format_table(
        headers,
        rows,
        title=f"{trace.name}: segments {args.segments}, SLO {args.slo * 1e3:.0f} ms",
    ))
    if registry is not None:
        n = write_jsonl(registry, args.telemetry)
        print(f"wrote {n} telemetry records to {args.telemetry}")
    return 0


def _validate_serve_args(args) -> None:
    """Reject malformed ``repro serve`` inputs before any work happens.

    Raises ``ValueError`` with a message that names the flag and the fix —
    the CLI turns it into an exit-code-2 error line.
    """
    from repro.utils.validation import check_positive

    check_positive(args.slo, "--slo (seconds)")
    check_positive(args.deploy_delay,
                   "--deploy-delay (seconds; 0 means instant reconfiguration)",
                   strict=False)
    check_positive(args.keep_alive,
                   "--keep-alive (seconds; containers need a positive window "
                   "to ever be reused)")
    if args.decision_interval is not None:
        check_positive(args.decision_interval, "--decision-interval (seconds)")
    if args.max_containers is not None and args.max_containers < 1:
        raise ValueError(
            f"--max-containers must be >= 1 (or omitted for unbounded), "
            f"got {args.max_containers}"
        )
    if args.queue_limit is not None and args.queue_limit < 0:
        raise ValueError(
            f"--queue-limit must be >= 0 (0 sheds immediately when the pool "
            f"is exhausted; omit for unbounded queueing), got {args.queue_limit}"
        )
    if args.retrain_delay is not None:
        check_positive(args.retrain_delay, "--retrain-delay", strict=False)
    if not 0.0 <= args.fault_rate < 1.0:
        raise ValueError(f"--fault-rate must be in [0, 1), got {args.fault_rate}")
    if args.retries < 1:
        raise ValueError(f"--retries must be >= 1, got {args.retries}")
    if args.checkpoint_every < 1:
        raise ValueError(
            f"--checkpoint-every must be >= 1 (events between snapshots), "
            f"got {args.checkpoint_every}"
        )
    if args.restore and not args.checkpoint:
        raise ValueError("--restore needs --checkpoint PATH (the snapshot "
                         "to resume from)")
    if args.fleet:
        for flag in ("checkpoint", "restore", "guardrail", "drift", "prewarm",
                     "generation", "outages"):
            if getattr(args, flag):
                raise ValueError(
                    f"--{flag} is not supported with --fleet (per-endpoint "
                    "reliability knobs belong in the fleet config file)"
                )
    if args.generation and (args.fault_rate > 0.0
                            or args.fault_timeout is not None):
        raise ValueError(
            "--generation does not support fault injection "
            "(--fault-rate/--fault-timeout): fault draws are keyed by "
            "request-level batch index"
        )
    if args.generation and args.outages:
        raise ValueError(
            "--outages is not supported with --generation: crash and "
            "straggler draws are keyed by request-level batch index"
        )
    if args.guardrail:
        if args.guardrail_window < 1:
            raise ValueError(f"--guardrail-window must be >= 1, "
                             f"got {args.guardrail_window}")
        if not 0.0 < args.guardrail_percentile <= 100.0:
            raise ValueError(f"--guardrail-percentile must be in (0, 100], "
                             f"got {args.guardrail_percentile}")
        if args.guardrail_k < 1:
            raise ValueError(f"--guardrail-k must be >= 1, "
                             f"got {args.guardrail_k}")
        check_positive(args.guardrail_cooldown, "--guardrail-cooldown "
                       "(seconds the breaker stays open; must be positive)")
    if args.prewarm:
        check_positive(args.prewarm_interval, "--prewarm-interval (seconds)")
        if args.prewarm_horizon is not None:
            check_positive(args.prewarm_horizon, "--prewarm-horizon (seconds)")
        check_positive(args.prewarm_headroom, "--prewarm-headroom")
        if args.prewarm_max is not None and args.prewarm_max < 1:
            raise ValueError(
                f"--prewarm-max must be >= 1 (or omitted for unbounded), "
                f"got {args.prewarm_max}"
            )
        if args.prewarm_window < 1:
            raise ValueError(
                f"--prewarm-window must be >= 1, got {args.prewarm_window}"
            )


def _cmd_serve(args) -> int:
    from repro.batching.config import BatchConfig
    from repro.core.drift import WorkloadDriftDetector
    from repro.serverless.service_profile import ColdStartModel
    from repro.serving import (
        CheckpointError,
        DriftConfig,
        GuardrailConfig,
        ServingEngine,
        WarmPoolConfig,
    )

    try:
        _validate_serve_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.fleet:
        return _cmd_serve_fleet(args)
    if args.telemetry:
        try:
            with open(args.telemetry, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write {args.telemetry}: {exc}", file=sys.stderr)
            return 2
    generation_cfg = None
    if args.generation:
        from repro.serving import GenerationConfigError, load_generation_config

        try:
            generation_cfg = load_generation_config(args.generation)
        except GenerationConfigError as exc:
            print(f"error: invalid generation config: {exc}", file=sys.stderr)
            return 2
    outage_cfg = degrade_cfg = None
    if args.outages:
        from repro.serving import OutageConfigError, load_outage_config

        try:
            outage_cfg, degrade_cfg = load_outage_config(args.outages)
        except OutageConfigError as exc:
            print(f"error: invalid outage config: {exc}", file=sys.stderr)
            return 2
    trace = load_trace(args.trace)
    if not 0 <= args.start_segment < trace.n_segments:
        print("error: --start-segment out of range", file=sys.stderr)
        return 2
    cut = args.start_segment * trace.segment_duration
    at = int(np.searchsorted(trace.timestamps, cut))
    history, serve_ts = trace.timestamps[:at], trace.timestamps[at:]
    if serve_ts.size == 0:
        print("error: nothing to serve after --start-segment", file=sys.stderr)
        return 2

    faulty = args.fault_rate > 0.0 or args.fault_timeout is not None
    platform = ServerlessPlatform(
        seed=args.seed,
        cold_start=ColdStartModel() if args.cold_starts else None,
        faults=(FaultModel(failure_rate=args.fault_rate,
                           timeout_s=args.fault_timeout) if faulty else None),
        retry_policy=RetryPolicy(max_attempts=args.retries),
    )
    config = BatchConfig(memory_mb=args.memory, batch_size=args.batch_size,
                         timeout=args.timeout)
    chooser = None
    if args.chooser == "deepbat":
        if not args.model:
            print("error: --model is required for --chooser deepbat",
                  file=sys.stderr)
            return 2
        chooser = DeepBATController(load_trained(args.model),
                                    configs=config_grid())
    elif args.chooser == "batch":
        chooser = BATCHController(configs=config_grid(),
                                  profile=platform.profile,
                                  pricing=platform.pricing)
    warmup = interarrivals(history)
    if chooser is not None and warmup.size >= 32:
        # Deploy the controller's pick for the warmup traffic, so the run
        # starts from a considered configuration rather than the defaults.
        config = chooser.choose(warmup, args.slo).config
    detector = None
    if args.drift:
        detector = WorkloadDriftDetector()
        try:
            detector.fit(warmup, args.drift_window)
        except ValueError as exc:
            print(f"warning: drift detector disabled ({exc})", file=sys.stderr)
            detector = None
    prewarm_cfg = None
    if args.prewarm:
        from repro.serving import (
            EmpiricalRateForecaster,
            MAPRateForecaster,
            OracleForecaster,
            PrewarmConfig,
        )

        if args.prewarm == "map":
            from repro.arrival.fitting import fit_map

            try:
                process, report = fit_map(warmup)
            except ValueError as exc:
                print(f"warning: MAP prewarming fell back to the empirical "
                      f"forecaster ({exc})", file=sys.stderr)
                forecaster = EmpiricalRateForecaster()
            else:
                print(f"prewarm: fitted {report.kind} MAP on {warmup.size} "
                      f"warmup inter-arrivals")
                forecaster = MAPRateForecaster(process)
        elif args.prewarm == "oracle":
            forecaster = OracleForecaster(timestamps=serve_ts)
        else:
            forecaster = EmpiricalRateForecaster()
        prewarm_cfg = PrewarmConfig(
            forecaster=forecaster,
            interval_s=args.prewarm_interval,
            horizon_s=args.prewarm_horizon,
            headroom=args.prewarm_headroom,
            max_per_tick=args.prewarm_max,
            retire=args.prewarm_retire,
            window=args.prewarm_window,
        )

    engine = ServingEngine(
        config,
        platform=platform,
        chooser=chooser,
        slo=args.slo,
        pool=WarmPoolConfig(keep_alive_s=args.keep_alive,
                            max_containers=args.max_containers,
                            max_queued_batches=args.queue_limit),
        deploy_delay_s=args.deploy_delay,
        decision_interval_s=(
            (args.decision_interval or trace.segment_duration)
            if chooser is not None else None
        ),
        drift=DriftConfig(detector=detector,
                          window=args.drift_window,
                          retrain_delay_s=args.retrain_delay),
        guardrail=(
            GuardrailConfig(window=args.guardrail_window,
                            percentile=args.guardrail_percentile,
                            k=args.guardrail_k,
                            cooldown_s=args.guardrail_cooldown)
            if args.guardrail else None
        ),
        prewarm=prewarm_cfg,
        generation=generation_cfg,
        outages=outage_cfg,
        degrade=degrade_cfg,
    )
    registry = MetricsRegistry() if args.telemetry else None
    scope = use_registry(registry) if registry is not None else contextlib.nullcontext()
    with scope:
        try:
            if args.restore:
                log = engine.restore(args.checkpoint)
            else:
                log = engine.run(serve_ts, name=f"serve-{args.chooser}",
                                 trace_name=trace.name, history=history,
                                 checkpoint_path=args.checkpoint,
                                 checkpoint_every=args.checkpoint_every)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    rows = [
        ["initial config", f"({config.memory_mb:g} MB, B={config.batch_size}, "
                           f"T={config.timeout:g}s)"],
        ["requests", log.n_requests],
        ["served", log.n_served],
        ["shed", f"{log.n_shed} ({100.0 * log.shed_rate:.1f}%)"],
        ["batches", log.batch_sizes.size],
        ["p95 latency ms", f"{log.p(95.0) * 1e3:.1f}"],
        ["VCR %", f"{log.vcr():.1f}"],
        ["cost $/1M req", f"{log.cost_per_request * 1e6:.4f}"],
        ["cold-start rate", f"{100.0 * log.cold_start_rate:.1f}%"],
        ["decisions", f"{len(log.decisions)} "
                      f"({log.degraded_decisions} degraded)"],
        ["reconfigurations", log.reconfigurations],
        ["drift triggers", f"{log.drift_triggers} workload, "
                           f"{log.prediction_drift_triggers} prediction"],
        ["retrains", log.retrains],
    ]
    if faulty:
        rows += [["invocation retries", log.n_retries],
                 ["failed requests", log.n_failed]]
    if args.guardrail:
        rows += [["guardrail trips", log.guardrail_trips],
                 ["guardrail restores", log.guardrail_restores],
                 ["suppressed decisions", log.guardrail_suppressed],
                 ["breaker state", log.guardrail_state]]
    if args.generation:
        ttft_slo = generation_cfg.ttft_slo or args.slo
        rows += [
            ["dispatcher", generation_cfg.dispatcher],
            ["goodput req/s", f"{log.goodput():.2f}"],
            ["TTFT attainment", f"{100.0 * log.ttft_attainment():.1f}% "
                                f"(SLO {ttft_slo * 1e3:.0f} ms)"],
            ["p95 TTFT ms", f"{log.p_ttft(95.0) * 1e3:.1f}"],
            ["p95 TPOT ms", f"{log.p_tpot(95.0) * 1e3:.2f}"],
            ["sessions", log.gen_sessions],
            ["iterations", f"{log.gen_prefill_iterations} prefill, "
                           f"{log.gen_decode_iterations} decode"],
            ["tokens generated", log.gen_tokens],
        ]
    if args.prewarm:
        rows += [
            ["prewarm ticks", log.prewarm_ticks],
            ["prewarmed containers", f"{log.prewarmed_containers} "
                                     f"({log.prewarm_retired} retired)"],
            ["all-in cost $/1M req",
             f"{log.total_cost_with_prewarm / max(log.n_served, 1) * 1e6:.4f}"],
        ]
    if args.outages:
        rows += [
            ["outage windows", len(outage_cfg.windows)],
            ["cold starts denied", log.outage_denied],
            ["container crashes", f"{log.crashed_containers} "
                                  f"({log.crash_requeued} requests requeued)"],
            ["straggler batches", log.straggler_batches],
            ["cold-start retries", f"{log.cold_retries} "
                                   f"({log.cold_retry_exhausted} exhausted)"],
            ["hedges", f"{log.hedges} ({log.hedge_wins} won, "
                       f"{log.hedge_denied} denied)"],
            ["hedge cost $", f"{log.hedge_cost:.6f}"],
        ]
    if args.checkpoint:
        rows += [["checkpoints written", log.checkpoints]]
    print(format_table(
        ["serving metric", "value"],
        rows,
        title=f"{trace.name}: served segments {args.start_segment}:"
              f"{trace.n_segments}, SLO {args.slo * 1e3:.0f} ms "
              f"({args.chooser})",
    ))
    if registry is not None:
        n = write_jsonl(registry, args.telemetry)
        print(f"wrote {n} telemetry records to {args.telemetry}")
    return 0


def _cmd_serve_fleet(args) -> int:
    """``repro serve --fleet fleet.json``: multi-endpoint fleet serving.

    The trace is split across the endpoints by their ``share`` weights;
    warmup segments (before ``--start-segment``) seed each lane's
    controller history. Platform-level flags (``--seed``,
    ``--cold-starts``, ``--fault-rate``/``--fault-timeout``/``--retries``)
    apply to every endpoint; per-endpoint knobs live in the config file.
    """
    from repro.serverless.service_profile import ColdStartModel
    from repro.serving import FleetConfigError, load_fleet_config, split_by_shares

    try:
        fleet_cfg = load_fleet_config(args.fleet)
    except FleetConfigError as exc:
        print(f"error: invalid fleet config: {exc}", file=sys.stderr)
        return 2
    missing = [ep.name for ep in fleet_cfg.endpoints if ep.share is None]
    if missing:
        print(f"error: invalid fleet config: endpoints need a 'share' to "
              f"split --trace traffic; missing on: {missing}", file=sys.stderr)
        return 2
    needs_model = [ep.name for ep in fleet_cfg.endpoints
                   if ep.chooser == "deepbat"]
    if needs_model and not args.model:
        print(f"error: --model is required for deepbat endpoints: "
              f"{needs_model}", file=sys.stderr)
        return 2
    if args.telemetry:
        try:
            with open(args.telemetry, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write {args.telemetry}: {exc}", file=sys.stderr)
            return 2

    trace = load_trace(args.trace)
    if not 0 <= args.start_segment < trace.n_segments:
        print("error: --start-segment out of range", file=sys.stderr)
        return 2
    cut = args.start_segment * trace.segment_duration
    at = int(np.searchsorted(trace.timestamps, cut))
    history, serve_ts = trace.timestamps[:at], trace.timestamps[at:]
    if serve_ts.size == 0:
        print("error: nothing to serve after --start-segment", file=sys.stderr)
        return 2

    faulty = args.fault_rate > 0.0 or args.fault_timeout is not None
    trained = load_trained(args.model) if needs_model else None

    def platform_factory(ep):
        # Distinct seeds decorrelate per-endpoint fault/cold draws while
        # keeping the whole fleet a function of --seed.
        index = [e.name for e in fleet_cfg.endpoints].index(ep.name)
        return ServerlessPlatform(
            seed=args.seed + index,
            cold_start=ColdStartModel() if args.cold_starts else None,
            faults=(FaultModel(failure_rate=args.fault_rate,
                               timeout_s=args.fault_timeout)
                    if faulty else None),
            retry_policy=RetryPolicy(max_attempts=args.retries),
        )

    def chooser_factory(ep, platform):
        if ep.chooser == "deepbat":
            return DeepBATController(trained, configs=config_grid())
        if ep.chooser == "batch":
            return BATCHController(configs=config_grid(),
                                   profile=platform.profile,
                                   pricing=platform.pricing)
        return None

    engine = fleet_cfg.build(platform_factory=platform_factory,
                             chooser_factory=chooser_factory)
    traffic = split_by_shares(serve_ts, engine.endpoints, fleet_cfg.split_seed)
    histories = (
        split_by_shares(history, engine.endpoints, fleet_cfg.split_seed)
        if history.size else None
    )

    registry = MetricsRegistry() if args.telemetry else None
    scope = use_registry(registry) if registry is not None else contextlib.nullcontext()
    with scope:
        log = engine.run(traffic, name=f"fleet-{trace.name}",
                         trace_name=trace.name, histories=histories)

    rows = []
    for ep in fleet_cfg.endpoints:
        ep_log = log[ep.name]
        rows.append([
            ep.name,
            ep_log.n_requests,
            f"{100.0 * ep_log.shed_rate:.1f}%",
            f"{ep_log.p(ep.percentile) * 1e3:.1f}",
            f"{ep.slo * 1e3:.0f}",
            "yes" if ep_log.p(ep.percentile) <= ep.slo else "NO",
            f"{ep_log.cost_per_request * 1e6:.4f}",
            ep_log.reconfigurations,
        ])
    rows.append([
        "fleet", log.n_requests, f"{100.0 * log.n_shed / log.n_requests:.1f}%"
        if log.n_requests else "0.0%", "-", "-", "-",
        f"{log.cost_per_request * 1e6:.4f}", log.fleet_decisions,
    ])
    budget = (f"budget {fleet_cfg.max_containers} containers"
              if fleet_cfg.max_containers is not None else "unbounded budget")
    print(format_table(
        ["endpoint", "requests", "shed", "p-lat ms", "SLO ms", "met",
         "cost $/1M", "reconfigs"],
        rows,
        title=f"{trace.name}: fleet of {len(fleet_cfg.endpoints)} endpoints, "
              f"{budget}, segments {args.start_segment}:{trace.n_segments}",
    ))
    degraded = [ep.name for ep in fleet_cfg.endpoints
                if ep.outages is not None or ep.degrade is not None]
    if degraded or fleet_cfg.brownout or fleet_cfg.failover:
        deg_rows = [
            [ep.name, log[ep.name].outage_denied,
             log[ep.name].crashed_containers, log[ep.name].cold_retries,
             log[ep.name].hedges, log[ep.name].brownout_shed,
             log[ep.name].failover_batches]
            for ep in fleet_cfg.endpoints
        ]
        print(format_table(
            ["endpoint", "denied", "crashes", "retries", "hedges",
             "brownout", "failover"],
            deg_rows,
            title="graceful degradation",
        ))
    if registry is not None:
        n = write_jsonl(registry, args.telemetry)
        print(f"wrote {n} telemetry records to {args.telemetry}")
    return 0


def _cmd_report(args) -> int:
    try:
        records = read_jsonl(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    print(render_dashboard(records, title=f"telemetry dashboard — {args.path}"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return {
            "traces": _cmd_traces,
            "train": _cmd_train,
            "optimize": _cmd_optimize,
            "evaluate": _cmd_evaluate,
            "serve": _cmd_serve,
            "report": _cmd_report,
        }[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
