"""Fault injection for the serverless platform model.

Real Lambda deployments are not the perfect platform the base simulator
assumes: invocations fail transiently, functions time out when the
configured limit is shorter than the (M, B)-dependent run time, and the
account-level concurrency throttle *rejects* (429) rather than queues.
This module models those three fault classes plus the client-side retry
loop that papers over them:

* :class:`FaultModel` — what can go wrong: a per-attempt failure
  probability, a fixed invocation timeout (whether it fires is a function
  of ``(M, B)`` through the service profile, exactly as on Lambda where
  the limit is constant but the duration is not), and throttle rejection
  semantics for the concurrency cap;
* :class:`RetryPolicy` — how the invoker reacts: bounded attempts with
  exponential backoff and multiplicative jitter, every attempt billed;
* :func:`inject_faults` — the vectorized per-batch attempt simulation,
  deterministic given the generator handed in (the platform threads its
  ``spawn_rng`` children through, so sweeps stay order-independent);
* :func:`rejecting_starts` — start times under reject-and-retry
  throttling instead of the base platform's queueing throttle.

Everything here is *pure*: no module state, no hidden RNG. When a
:class:`FaultModel` is disabled (the default-constructed one is) the
platform never calls into this module, so fault-free runs are bit-identical
to a build without it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serverless.pricing import LambdaPricing


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry loop: bounded attempts, exponential backoff.

    ``max_attempts`` counts the first try, so ``max_attempts=1`` disables
    retries entirely. Backoff before retry ``k`` (1-based) is
    ``base_backoff_s * multiplier**(k-1)``, stretched by a multiplicative
    jitter drawn uniformly from ``[1, 1 + jitter]`` — drawn from the
    generator the caller supplies, never from global state.

    ``max_total_delay_s`` optionally budgets the *cumulative* backoff: a
    retry whose jittered backoffs would sum past the budget is not taken
    (the invocation gives up instead), so retrying cannot push a request
    past its deadline. The backoff matrix is still drawn in full — draw
    counts never depend on the budget — and ``None`` (the default) leaves
    every outcome bit-identical to a policy without the field.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.1
    max_total_delay_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0:
            raise ValueError(f"base_backoff_s must be >= 0, got {self.base_backoff_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_total_delay_s is not None and self.max_total_delay_s <= 0:
            raise ValueError(
                f"max_total_delay_s must be > 0 or None, got {self.max_total_delay_s}"
            )

    def backoff(self, retry_index: int, rng: np.random.Generator) -> float:
        """Backoff (seconds) before 0-based retry ``retry_index``."""
        base = self.base_backoff_s * self.multiplier**retry_index
        return base * (1.0 + self.jitter * float(rng.random()))

    def backoff_matrix(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Jittered backoffs, shape ``(max_attempts - 1, n)``.

        Row ``k`` is the backoff before retry ``k`` of each of ``n``
        invocations. The full matrix is always drawn (independently of
        which retries actually happen) so the generator's consumption —
        and hence everything drawn after it — does not depend on fault
        outcomes.
        """
        if self.max_attempts == 1:
            return np.zeros((0, n))
        base = self.base_backoff_s * (
            self.multiplier ** np.arange(self.max_attempts - 1)[:, None]
        )
        return base * (1.0 + self.jitter * rng.random((self.max_attempts - 1, n)))


#: The policy the platform uses when none is configured explicitly.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class FaultModel:
    """What can go wrong with one invocation attempt.

    * ``failure_rate`` — probability that an attempt fails transiently
      (sandbox crash, dropped connection); the failed attempt still runs
      (and bills) its full duration.
    * ``timeout_s`` — the function's configured timeout. An attempt whose
      duration (cold start + service time, both functions of ``(M, B)``)
      exceeds it is killed at ``timeout_s``, billed for ``timeout_s``,
      and fails — deterministically, every attempt, exactly like an
      undersized Lambda.
    * ``throttle_rejection`` — with a platform ``concurrency_limit``,
      model the throttle as Lambda does (reject + client backoff) instead
      of the base model's ideal queue.

    The default-constructed model is *disabled*: the platform skips the
    fault path entirely, keeping fault-free outputs bit-identical.
    """

    failure_rate: float = 0.0
    timeout_s: float | None = None
    throttle_rejection: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")

    @property
    def enabled(self) -> bool:
        return (
            self.failure_rate > 0.0
            or self.timeout_s is not None
            or self.throttle_rejection
        )


@dataclass(frozen=True)
class FaultOutcome:
    """Per-batch result of the attempt loop (arrays aligned per batch)."""

    attempts: np.ndarray  # int, attempts actually made (>= 1)
    failed: np.ndarray  # bool, True when every attempt failed
    timed_out: np.ndarray  # bool, True when attempts hit the timeout
    fault_delays: np.ndarray  # seconds added on top of cold + service
    costs: np.ndarray  # USD, all attempts billed

    @property
    def n_retries(self) -> int:
        return int((self.attempts - 1).sum())


def inject_faults(
    durations: np.ndarray,
    memory_mb: float,
    pricing: LambdaPricing,
    faults: FaultModel,
    retry: RetryPolicy,
    rng: np.random.Generator,
) -> FaultOutcome:
    """Run the retry loop for every batch, vectorized.

    ``durations`` is cold start + service time per batch — the run time of
    one clean attempt. Each attempt independently fails with
    ``failure_rate``; attempts longer than ``timeout_s`` are cut at the
    timeout and fail deterministically. A failed attempt contributes its
    run time plus the policy's backoff to the batch's extra latency and is
    billed like any invocation; after ``max_attempts`` failures the batch
    is *failed* — its requests are served a degraded (error) response at
    give-up time.

    Determinism: exactly ``max_attempts * n`` failure draws and
    ``(max_attempts - 1) * n`` jitter draws are consumed from ``rng``
    regardless of outcomes, so downstream consumers of the same generator
    see a fixed stream.
    """
    d = np.asarray(durations, dtype=float)
    n = d.size
    cap = retry.max_attempts

    # Run time of a single attempt: the clean duration, cut at the timeout.
    if faults.timeout_s is not None:
        timed_out = d > faults.timeout_s
        run = np.minimum(d, faults.timeout_s)
    else:
        timed_out = np.zeros(n, dtype=bool)
        run = d

    # (cap, n) failure table: attempt k of batch i fails transiently or by
    # timeout. Timeouts are deterministic, so a timed-out batch fails every
    # attempt and always exhausts the retry budget.
    fails = (rng.random((cap, n)) < faults.failure_rate) | timed_out[None, :]
    backoffs = retry.backoff_matrix(n, rng)

    succeeded = ~fails
    any_success = succeeded.any(axis=0)
    first_success = np.argmax(succeeded, axis=0)  # 0 when none succeeded
    attempts = np.where(any_success, first_success + 1, cap)
    failed = ~any_success

    if retry.max_total_delay_s is not None:
        # Retry k is affordable only while the cumulative jittered backoff
        # through it fits the budget (monotone, so the count of affordable
        # rows + the free first attempt caps the attempt number). Applied
        # after the draws, so generator consumption is budget-independent.
        allowed = 1 + (
            np.cumsum(backoffs, axis=0) <= retry.max_total_delay_s
        ).sum(axis=0)
        failed = failed | (attempts > allowed)
        attempts = np.minimum(attempts, allowed)

    # Extra latency: each failed prior attempt ran `run` then backed off;
    # the final attempt runs `run` on failure (cut short or crashed) and
    # the clean `d` on success — fold the difference into the delay so
    # completion = start + d + fault_delays holds either way.
    n_prior = attempts - 1
    cum_backoff = np.vstack([np.zeros(n), np.cumsum(backoffs, axis=0)]) if cap > 1 \
        else np.zeros((1, n))
    prior_backoff = cum_backoff[n_prior, np.arange(n)]
    final_run = np.where(failed, run, d)
    fault_delays = n_prior * run + prior_backoff + (final_run - d)

    # Billing: every attempt is a full invocation (request fee included);
    # failed attempts bill their run time, the timeout cut included.
    costs = n_prior * np.asarray(pricing.invocation_cost(memory_mb, run)) + np.asarray(
        pricing.invocation_cost(memory_mb, final_run)
    )
    return FaultOutcome(
        attempts=attempts,
        failed=failed,
        timed_out=timed_out,
        fault_delays=fault_delays,
        costs=np.broadcast_to(costs, (n,)),
    )


def rejecting_starts(
    dispatch_times: np.ndarray,
    busy_times: np.ndarray,
    limit: int,
    retry: RetryPolicy,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Start times when the concurrency throttle rejects instead of queues.

    An invocation finding all ``limit`` slots busy is rejected (Lambda's
    429 — unbilled) and the client retries after the policy's backoff.
    After ``max_attempts - 1`` rejections it falls back to waiting for the
    earliest free slot — the bounded-retry approximation of the SDK's
    eventually-successful retry loop, which keeps every batch served and
    the outcome deterministic.

    Returns ``(starts, rejections)`` with one rejection count per batch.
    ``busy_times`` is how long each invocation occupies its slot (retries
    of *failures* re-use the slot they hold).
    """
    from heapq import heapify, heappop, heappush

    dispatch_times = np.asarray(dispatch_times, dtype=float)
    busy_times = np.asarray(busy_times, dtype=float)
    n = dispatch_times.size
    free = [0.0] * min(limit, n)
    heapify(free)
    starts = np.empty(n)
    rejections = np.zeros(n, dtype=int)
    for i in range(n):
        t = dispatch_times[i]
        r = 0
        while free[0] > t and r < retry.max_attempts - 1:
            t += retry.backoff(r, rng)
            r += 1
        slot = heappop(free)
        start = t if t > slot else slot
        starts[i] = start
        rejections[i] = r
        heappush(free, start + busy_times[i])
    return starts, rejections
