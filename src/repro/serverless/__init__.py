"""Serverless platform substrate: Lambda pricing, deterministic service
profiles, cold starts, and the invocation/billing model."""

from repro.serverless.faults import (
    DEFAULT_RETRY_POLICY,
    FaultModel,
    FaultOutcome,
    RetryPolicy,
    inject_faults,
    rejecting_starts,
)
from repro.serverless.generation import (
    DEFAULT_TOKEN_PROFILE,
    TokenLengthModel,
    TokenServiceProfile,
)
from repro.serverless.platform import (
    BatchExecution,
    InvocationRecord,
    ServerlessPlatform,
)
from repro.serverless.pricing import (
    DEFAULT_BILLING_GRANULARITY,
    DEFAULT_GB_SECOND_PRICE,
    DEFAULT_REQUEST_PRICE,
    LambdaPricing,
    cost_per_million,
)
from repro.serverless.service_profile import (
    DEFAULT_PROFILE,
    MAX_MEMORY_MB,
    MIN_MEMORY_MB,
    VCPU_KNEE_MB,
    ColdStartModel,
    ServiceProfile,
)

__all__ = [
    "DEFAULT_BILLING_GRANULARITY",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_GB_SECOND_PRICE",
    "DEFAULT_PROFILE",
    "DEFAULT_REQUEST_PRICE",
    "DEFAULT_TOKEN_PROFILE",
    "MAX_MEMORY_MB",
    "MIN_MEMORY_MB",
    "VCPU_KNEE_MB",
    "BatchExecution",
    "ColdStartModel",
    "FaultModel",
    "FaultOutcome",
    "InvocationRecord",
    "LambdaPricing",
    "RetryPolicy",
    "ServerlessPlatform",
    "ServiceProfile",
    "TokenLengthModel",
    "TokenServiceProfile",
    "cost_per_million",
    "inject_faults",
    "rejecting_starts",
]
