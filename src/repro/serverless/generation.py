"""Token-level service model for autoregressive (LLM) generation.

The paper's service model is one-request-one-response with a deterministic
``s(M, B)``. The workload that dominates serverless inference today is
autoregressive generation: a compute-bound *prefill* that produces the
first token (time-to-first-token, **TTFT**) followed by a bandwidth-bound
*decode* loop emitting one token per step (time-per-output-token,
**TPOT**), with variable output lengths per request.

:class:`TokenServiceProfile` extends the calibrated
:class:`~repro.serverless.service_profile.ServiceProfile` to that regime:

* ``ttft(M, B)`` **is** the old ``s(M, B)`` — prefill is the same
  compute-bound batch evaluation the paper profiled, so the request-level
  model is exactly the ``output_tokens == 1`` special case and every
  existing calibration carries over unchanged.
* ``tpot(M, B)`` models one decode step across a batch of ``B`` running
  requests. Decode is memory-bandwidth-bound, so it benefits *less* from
  extra memory/CPU than prefill (``decode_memory_dampening`` flattens the
  speedup curve) and batches more gracefully (``decode_exponent`` below
  the prefill ``batch_exponent``).

:class:`TokenLengthModel` samples per-request ``(prompt_tokens,
output_tokens)`` pairs with the same per-sample ``SeedSequence`` spawning
discipline as dataset labeling (:mod:`repro.core.dataset`): request ``i``
gets its own ``SeedSequence(entropy=seed, spawn_key=(i,))``, so the trace
is independent of sampling order and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serverless.service_profile import (
    DEFAULT_PROFILE,
    ServiceProfile,
)

__all__ = [
    "TokenLengthModel",
    "TokenServiceProfile",
    "DEFAULT_TOKEN_PROFILE",
]


@dataclass(frozen=True)
class TokenServiceProfile:
    """Deterministic prefill/decode timing model for one deployed model.

    Parameters
    ----------
    profile:
        The request-level :class:`ServiceProfile` supplying the prefill
        calibration. ``ttft(M, B)`` delegates to its ``service_time``.
    decode_time:
        Per-decode-step coefficient (seconds) at the vCPU knee for a
        single-request batch.
    decode_exponent:
        Sublinearity of decode batch computation. Decode is dominated by
        weight streaming that is shared across the batch, so it batches
        better than prefill (default 0.5 < prefill's 0.7).
    decode_memory_dampening:
        Exponent applied to the prefill speedup curve for decode steps.
        1.0 = decode scales with memory exactly like prefill; 0.0 =
        decode is fully bandwidth-bound and memory buys nothing. The
        default 0.5 keeps decode partially memory-sensitive.
    """

    profile: ServiceProfile = field(default_factory=ServiceProfile)
    decode_time: float = 0.002
    decode_exponent: float = 0.5
    decode_memory_dampening: float = 0.5

    def __post_init__(self) -> None:
        if self.decode_time < 0:
            raise ValueError("decode_time must be non-negative")
        if not 0 < self.decode_exponent <= 1:
            raise ValueError("decode_exponent must be in (0, 1]")
        if not 0 <= self.decode_memory_dampening <= 1:
            raise ValueError("decode_memory_dampening must be in [0, 1]")

    def ttft(
        self, memory_mb: "float | np.ndarray", batch_size: "int | np.ndarray"
    ) -> "float | np.ndarray":
        """Prefill time for a batch of ``B`` prompts — identically the
        request-level ``s(M, B)``, so ``output_tokens == 1`` reproduces
        the old model bit-for-bit."""
        return self.profile.service_time(memory_mb, batch_size)

    def tpot(
        self, memory_mb: "float | np.ndarray", batch_size: "int | np.ndarray"
    ) -> "float | np.ndarray":
        """One decode step for ``B`` concurrently running requests."""
        b = np.asarray(batch_size)
        if np.any(b < 1):
            raise ValueError("batch_size must be >= 1")
        s = np.asarray(self.profile.speedup(memory_mb), dtype=float)
        t = (
            self.decode_time
            * b**self.decode_exponent
            / s**self.decode_memory_dampening
        )
        return float(t) if np.ndim(t) == 0 else t

    def generation_time(
        self,
        memory_mb: "float | np.ndarray",
        batch_size: "int | np.ndarray",
        output_tokens: "int | np.ndarray",
    ) -> "float | np.ndarray":
        """End-to-end service time: prefill plus ``output_tokens - 1``
        decode steps (the first token is produced by the prefill)."""
        out = np.asarray(output_tokens)
        if np.any(out < 1):
            raise ValueError("output_tokens must be >= 1")
        t = self.ttft(memory_mb, batch_size) + (out - 1) * self.tpot(
            memory_mb, batch_size
        )
        return float(t) if np.ndim(t) == 0 else t


@dataclass(frozen=True)
class TokenLengthModel:
    """Seeded per-request ``(prompt_tokens, output_tokens)`` sampler.

    Lengths are geometric (the standard heavy-ish-tailed fit for chat
    output lengths) with means ``prompt_mean`` / ``output_mean``, capped
    at ``prompt_max`` / ``output_max``. ``output_mean = 1.0`` degenerates
    to the request-level workload: every request emits exactly one token.

    Request ``i`` draws from ``SeedSequence(entropy=seed, spawn_key=(i,))``
    — the same discipline as parallel dataset labeling — so the sampled
    trace is a pure function of ``(seed, i)``, independent of iteration
    order and worker count.
    """

    prompt_mean: float = 128.0
    prompt_max: int = 4096
    output_mean: float = 16.0
    output_max: int = 1024

    def __post_init__(self) -> None:
        if self.prompt_mean < 1 or self.output_mean < 1:
            raise ValueError("token length means must be >= 1")
        if self.prompt_max < 1 or self.output_max < 1:
            raise ValueError("token length caps must be >= 1")
        if self.prompt_mean > self.prompt_max:
            raise ValueError("prompt_mean must be <= prompt_max")
        if self.output_mean > self.output_max:
            raise ValueError("output_mean must be <= output_max")

    def sample_one(self, seed: int, index: int) -> "tuple[int, int]":
        """Lengths for request ``index`` — a pure function of (seed, index)."""
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(index,))
        )
        prompt = min(int(rng.geometric(1.0 / self.prompt_mean)), self.prompt_max)
        output = min(int(rng.geometric(1.0 / self.output_mean)), self.output_max)
        return prompt, output

    def sample(self, n: int, seed: int) -> "tuple[np.ndarray, np.ndarray]":
        """Lengths for requests ``0..n-1`` as int64 arrays."""
        prompts = np.empty(n, dtype=np.int64)
        outputs = np.empty(n, dtype=np.int64)
        for i in range(n):
            prompts[i], outputs[i] = self.sample_one(seed, i)
        return prompts, outputs

    def fingerprint(self) -> tuple:
        """Scalar identity for checkpoint compatibility checks."""
        return (self.prompt_mean, self.prompt_max,
                self.output_mean, self.output_max)


#: Token profile wrapping the TED-LIUM-like default calibration.
DEFAULT_TOKEN_PROFILE = TokenServiceProfile(profile=DEFAULT_PROFILE)
