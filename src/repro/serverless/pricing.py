"""AWS-Lambda-style pricing model.

Lambda bills each invocation as (allocated GB) × (billed duration) at a
per-GB-second price, plus a flat per-request fee, with duration rounded up
to a billing granularity (1 ms since Dec 2020). These published constants
drive every cost number in the reproduction; the *per-request* cost of a
batch divides the invocation cost by the batch size — the economic core of
batching (§II, Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: USD per GB-second (AWS Lambda x86 price, us-east-1).
DEFAULT_GB_SECOND_PRICE = 0.0000166667
#: USD per invocation request.
DEFAULT_REQUEST_PRICE = 0.0000002
#: Billing granularity in seconds (1 ms).
DEFAULT_BILLING_GRANULARITY = 0.001


@dataclass(frozen=True)
class LambdaPricing:
    """Pricing constants for a Lambda-like platform."""

    gb_second_price: float = DEFAULT_GB_SECOND_PRICE
    request_price: float = DEFAULT_REQUEST_PRICE
    billing_granularity: float = DEFAULT_BILLING_GRANULARITY

    def __post_init__(self) -> None:
        if self.gb_second_price < 0 or self.request_price < 0:
            raise ValueError("prices must be non-negative")
        if self.billing_granularity <= 0:
            raise ValueError("billing_granularity must be > 0")

    def billed_duration(self, duration: "float | np.ndarray") -> "float | np.ndarray":
        """Round ``duration`` (seconds) up to the billing granularity."""
        g = self.billing_granularity
        return np.ceil(np.asarray(duration) / g) * g

    def invocation_cost(
        self, memory_mb: "float | np.ndarray", duration: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """USD cost of one invocation of ``duration`` seconds at
        ``memory_mb`` MB."""
        memory_mb = np.asarray(memory_mb, dtype=float)
        if np.any(memory_mb <= 0):
            raise ValueError("memory_mb must be > 0")
        gb = memory_mb / 1024.0
        cost = gb * self.billed_duration(duration) * self.gb_second_price + self.request_price
        return float(cost) if np.ndim(cost) == 0 else cost

    def per_request_cost(
        self,
        memory_mb: "float | np.ndarray",
        duration: "float | np.ndarray",
        batch_size: "int | np.ndarray",
    ) -> "float | np.ndarray":
        """USD cost per request when ``batch_size`` requests share one
        invocation."""
        batch_size = np.asarray(batch_size)
        if np.any(batch_size < 1):
            raise ValueError("batch_size must be >= 1")
        cost = self.invocation_cost(memory_mb, duration) / batch_size
        return float(cost) if np.ndim(cost) == 0 else cost


def cost_per_million(per_request_usd: "float | np.ndarray") -> "float | np.ndarray":
    """Convert a per-request USD cost to USD per 1e6 requests — the unit the
    library reports (it keeps surrogate training targets near unity)."""
    return per_request_usd * 1e6
