"""Serverless platform model: function instances and invocation accounting.

Under Lambda-style autoscaling every dispatched batch gets its own
(concurrent) execution environment, so batches never queue behind each
other; the platform's role in the simulation is the deterministic service
time, the billing record, and (optionally) cold starts and a concurrency
cap. :class:`ServerlessPlatform` bundles those pieces behind one interface
used by the ground-truth simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serverless.pricing import LambdaPricing
from repro.serverless.service_profile import ColdStartModel, ServiceProfile
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class InvocationRecord:
    """Billing/latency record of one function invocation (= one batch)."""

    dispatch_time: float
    batch_size: int
    memory_mb: float
    service_time: float
    cold_start: float
    cost: float

    @property
    def completion_time(self) -> float:
        return self.dispatch_time + self.cold_start + self.service_time


@dataclass
class ServerlessPlatform:
    """A Lambda-like platform executing batched inference invocations."""

    profile: ServiceProfile = field(default_factory=ServiceProfile)
    pricing: LambdaPricing = field(default_factory=LambdaPricing)
    cold_start: ColdStartModel | None = None
    concurrency_limit: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.concurrency_limit is not None and self.concurrency_limit < 1:
            raise ValueError("concurrency_limit must be >= 1 or None")
        self._rng = as_rng(self.seed)

    def invoke_batches(
        self,
        dispatch_times: np.ndarray,
        batch_sizes: np.ndarray,
        memory_mb: float,
    ) -> list[InvocationRecord]:
        """Execute a sequence of batch dispatches; returns billing records.

        With a ``concurrency_limit`` set, excess invocations are delayed
        until an execution slot frees up (Lambda's account-level throttle),
        which adds queueing delay on top of the buffer wait.
        """
        dispatch_times = np.asarray(dispatch_times, dtype=float)
        batch_sizes = np.asarray(batch_sizes, dtype=int)
        if dispatch_times.shape != batch_sizes.shape:
            raise ValueError("dispatch_times and batch_sizes must align")
        n = dispatch_times.size
        if n == 0:
            return []

        service = np.asarray(
            self.profile.service_time(memory_mb, batch_sizes), dtype=float
        ).reshape(n)
        if self.cold_start is not None:
            colds = self.cold_start.sample_delays(memory_mb, n, self._rng)
        else:
            colds = np.zeros(n)

        starts = dispatch_times.copy()
        if self.concurrency_limit is not None:
            # Earliest-available-slot assignment over a fixed pool.
            free_at = np.zeros(self.concurrency_limit)
            for i in range(n):
                slot = int(np.argmin(free_at))
                starts[i] = max(dispatch_times[i], free_at[slot])
                free_at[slot] = starts[i] + colds[i] + service[i]

        durations = colds + service
        costs = self.pricing.invocation_cost(memory_mb, durations)
        costs = np.broadcast_to(np.asarray(costs), (n,))
        return [
            InvocationRecord(
                dispatch_time=float(starts[i]),
                batch_size=int(batch_sizes[i]),
                memory_mb=memory_mb,
                service_time=float(service[i]),
                cold_start=float(colds[i]),
                cost=float(costs[i]),
            )
            for i in range(n)
        ]
