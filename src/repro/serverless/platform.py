"""Serverless platform model: function instances and invocation accounting.

Under Lambda-style autoscaling every dispatched batch gets its own
(concurrent) execution environment, so batches never queue behind each
other; the platform's role in the simulation is the deterministic service
time, the billing record, and (optionally) cold starts and a concurrency
cap. :class:`ServerlessPlatform` bundles those pieces behind one interface
used by the ground-truth simulator.

The hot path is :meth:`ServerlessPlatform.execute_batches`, which returns a
struct-of-arrays :class:`BatchExecution` (start/service/cold/cost arrays)
instead of materializing one Python object per invocation; the historical
:meth:`invoke_batches` record-list API is kept as a lazy view over it.
Grid sweeps that share one batch schedule across memory tiers use
:meth:`execute_batches_grid`, which broadcasts the service-time and pricing
math over all tiers at once.

With a :class:`~repro.serverless.faults.FaultModel` attached, both
execution paths additionally run the per-batch retry loop of
:mod:`repro.serverless.faults`: failed and timed-out attempts re-dispatch
under the platform's :class:`~repro.serverless.faults.RetryPolicy`, adding
latency (backoff + wasted runs) and cost (every attempt billed) to the
affected batches. With the fault model absent or disabled — the default —
that code path is never entered and outputs are bit-identical to a
fault-free build (enforced by equivalence tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush

import numpy as np

from repro.serverless.faults import (
    DEFAULT_RETRY_POLICY,
    FaultModel,
    RetryPolicy,
    inject_faults,
    rejecting_starts,
)
from repro.serverless.pricing import LambdaPricing
from repro.serverless.service_profile import ColdStartModel, ServiceProfile
from repro.telemetry.events import RetryEvent
from repro.telemetry.metrics import get_registry
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class InvocationRecord:
    """Billing/latency record of one function invocation (= one batch)."""

    dispatch_time: float
    batch_size: int
    memory_mb: float
    service_time: float
    cold_start: float
    cost: float

    @property
    def completion_time(self) -> float:
        return self.dispatch_time + self.cold_start + self.service_time


@dataclass(frozen=True)
class BatchExecution:
    """Struct-of-arrays outcome of executing one batch schedule.

    All arrays are aligned per batch. ``start_times`` is when each
    invocation actually began — equal to the requested dispatch time unless
    a concurrency cap delayed it. :meth:`records` materializes the legacy
    per-invocation :class:`InvocationRecord` view on demand.

    The fault-layer fields are ``None`` on fault-free executions:
    ``attempts``/``failed``/``fault_delays`` come from the retry loop
    (:mod:`repro.serverless.faults`), ``throttle_retries`` counts throttle
    rejections per batch. ``fault_delays`` is already folded into
    :attr:`completion_times`.
    """

    memory_mb: float
    start_times: np.ndarray
    batch_sizes: np.ndarray
    service_times: np.ndarray
    cold_starts: np.ndarray
    costs: np.ndarray
    attempts: np.ndarray | None = None
    failed: np.ndarray | None = None
    fault_delays: np.ndarray | None = None
    throttle_retries: np.ndarray | None = None

    @property
    def n_batches(self) -> int:
        return self.start_times.size

    @property
    def completion_times(self) -> np.ndarray:
        base = self.start_times + self.cold_starts + self.service_times
        if self.fault_delays is not None:
            base = base + self.fault_delays
        return base

    @property
    def total_cost(self) -> float:
        return float(self.costs.sum())

    # ------------------------------------------------------ fault accounting
    @property
    def n_retries(self) -> int:
        """Invocation retries (failed/timed-out attempts that re-ran)."""
        return int((self.attempts - 1).sum()) if self.attempts is not None else 0

    @property
    def n_throttle_retries(self) -> int:
        return (
            int(self.throttle_retries.sum())
            if self.throttle_retries is not None
            else 0
        )

    @property
    def n_failed_batches(self) -> int:
        return int(self.failed.sum()) if self.failed is not None else 0

    @property
    def n_failed_requests(self) -> int:
        """Requests whose batch exhausted every attempt."""
        if self.failed is None:
            return 0
        return int(self.batch_sizes[self.failed].sum())

    def records(self) -> list[InvocationRecord]:
        """Lazy compatibility view: one :class:`InvocationRecord` per batch."""
        return [
            InvocationRecord(
                dispatch_time=float(self.start_times[i]),
                batch_size=int(self.batch_sizes[i]),
                memory_mb=self.memory_mb,
                service_time=float(self.service_times[i]),
                cold_start=float(self.cold_starts[i]),
                cost=float(self.costs[i]),
            )
            for i in range(self.n_batches)
        ]


def _throttled_starts(
    dispatch_times: np.ndarray, durations: np.ndarray, limit: int
) -> np.ndarray:
    """Earliest-available-slot start times under a fixed concurrency pool.

    A min-heap of slot free-times replaces the naive argmin-over-slots scan:
    O(n log C) instead of O(n·C), with identical results — the start time
    depends only on the *minimum* free time, never on which slot holds it.
    """
    n = dispatch_times.size
    free = [0.0] * min(limit, n)
    heapify(free)
    starts = np.empty(n)
    for i in range(n):
        slot = heappop(free)
        d = dispatch_times[i]
        start = d if d > slot else slot
        starts[i] = start
        heappush(free, start + durations[i])
    return starts


@dataclass
class ServerlessPlatform:
    """A Lambda-like platform executing batched inference invocations.

    ``faults`` attaches the optional fault model; ``retry_policy`` governs
    how failed/rejected invocations re-dispatch. Both are inert unless the
    fault model is enabled.
    """

    profile: ServiceProfile = field(default_factory=ServiceProfile)
    pricing: LambdaPricing = field(default_factory=LambdaPricing)
    cold_start: ColdStartModel | None = None
    concurrency_limit: int | None = None
    seed: int | None = None
    faults: FaultModel | None = None
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY

    def __post_init__(self) -> None:
        if self.concurrency_limit is not None and self.concurrency_limit < 1:
            raise ValueError("concurrency_limit must be >= 1 or None")
        self._rng = as_rng(self.seed)

    @property
    def faults_active(self) -> bool:
        """True when an enabled fault model is attached."""
        return self.faults is not None and self.faults.enabled

    def spawn_rng(self, *key: int) -> np.random.Generator:
        """Deterministic child generator for ``(seed, key)``.

        Independent of the shared ``_rng`` stream's mutable state, so
        call sites that must be order-independent (grid sweeps evaluated in
        any grouping, parallel dataset labeling) derive their cold-start
        randomness from a stable key instead of consumption order.
        """
        entropy = self.seed if self.seed is not None else 0
        return np.random.default_rng(
            np.random.SeedSequence(entropy=entropy, spawn_key=tuple(key))
        )

    def execute_batches(
        self,
        dispatch_times: np.ndarray,
        batch_sizes: np.ndarray,
        memory_mb: float,
        rng: np.random.Generator | None = None,
    ) -> BatchExecution:
        """Execute a batch schedule; returns the struct-of-arrays outcome.

        With a ``concurrency_limit`` set, excess invocations are delayed
        until an execution slot frees up (Lambda's account-level throttle),
        which adds queueing delay on top of the buffer wait. ``rng``
        overrides the platform's shared generator for cold-start sampling
        *and* fault draws (used by deterministic parallel labeling and
        order-independent grid sweeps).

        With an enabled fault model, each batch additionally runs the
        retry loop: transient failures and timeouts re-dispatch under
        :attr:`retry_policy`, re-billing every attempt and delaying
        completion; the slot occupancy seen by the concurrency throttle
        includes those retries.
        """
        dispatch_times = np.asarray(dispatch_times, dtype=float)
        batch_sizes = np.asarray(batch_sizes, dtype=int)
        if dispatch_times.shape != batch_sizes.shape:
            raise ValueError("dispatch_times and batch_sizes must align")
        n = dispatch_times.size
        if n == 0:
            empty = np.empty(0)
            return BatchExecution(
                memory_mb, empty, np.empty(0, int), empty, empty, empty
            )

        service = np.asarray(
            self.profile.service_time(memory_mb, batch_sizes), dtype=float
        ).reshape(n)
        if self.cold_start is not None:
            colds = self.cold_start.sample_delays(
                memory_mb, n, rng if rng is not None else self._rng
            )
        else:
            colds = np.zeros(n)

        durations = colds + service
        if self.faults_active:
            return self._execute_faulty(
                dispatch_times, batch_sizes, memory_mb, service, colds,
                rng if rng is not None else self._rng,
            )
        if self.concurrency_limit is not None:
            starts = _throttled_starts(dispatch_times, durations, self.concurrency_limit)
        else:
            starts = dispatch_times
        costs = self.pricing.invocation_cost(memory_mb, durations)
        costs = np.broadcast_to(np.asarray(costs), (n,))
        return BatchExecution(
            memory_mb=memory_mb,
            start_times=starts,
            batch_sizes=batch_sizes,
            service_times=service,
            cold_starts=colds,
            costs=costs,
        )

    def _execute_faulty(
        self,
        dispatch_times: np.ndarray,
        batch_sizes: np.ndarray,
        memory_mb: float,
        service: np.ndarray,
        colds: np.ndarray,
        rng: np.random.Generator,
    ) -> BatchExecution:
        """The fault-injected execution path (fault model enabled only)."""
        n = dispatch_times.size
        durations = colds + service
        outcome = inject_faults(
            durations, memory_mb, self.pricing, self.faults, self.retry_policy, rng
        )
        # Slot occupancy covers the whole retry loop: wasted runs and
        # backoffs hold the execution environment.
        busy = durations + outcome.fault_delays
        throttle_retries = np.zeros(n, dtype=int)
        if self.concurrency_limit is not None:
            if self.faults.throttle_rejection:
                starts, throttle_retries = rejecting_starts(
                    dispatch_times, busy, self.concurrency_limit,
                    self.retry_policy, rng,
                )
            else:
                starts = _throttled_starts(dispatch_times, busy, self.concurrency_limit)
        else:
            starts = dispatch_times
        execution = BatchExecution(
            memory_mb=memory_mb,
            start_times=starts,
            batch_sizes=batch_sizes,
            service_times=service,
            cold_starts=colds,
            costs=np.asarray(outcome.costs),
            attempts=outcome.attempts,
            failed=outcome.failed,
            fault_delays=outcome.fault_delays,
            throttle_retries=throttle_retries,
        )
        registry = get_registry()
        if registry.enabled:
            self._observe_faults(registry, execution, outcome)
        return execution

    @staticmethod
    def _observe_faults(registry, execution: BatchExecution, outcome) -> None:
        registry.counter("fault.attempts").inc(int(execution.attempts.sum()))
        registry.counter("fault.retries").inc(execution.n_retries)
        registry.counter("fault.timeouts").inc(int(outcome.timed_out.sum()))
        registry.counter("fault.failed_batches").inc(execution.n_failed_batches)
        registry.counter("fault.failed_requests").inc(execution.n_failed_requests)
        registry.counter("fault.throttle_retries").inc(execution.n_throttle_retries)
        if execution.n_retries or execution.n_failed_batches \
                or execution.n_throttle_retries:
            registry.record_event(RetryEvent(
                memory_mb=execution.memory_mb,
                batches=execution.n_batches,
                retries=execution.n_retries,
                timeouts=int(outcome.timed_out.sum()),
                failed_batches=execution.n_failed_batches,
                failed_requests=execution.n_failed_requests,
                throttle_retries=execution.n_throttle_retries,
            ))

    def execute_batches_grid(
        self,
        dispatch_times: np.ndarray,
        batch_sizes: np.ndarray,
        memories: "list[float] | np.ndarray",
        rngs: "list[np.random.Generator] | None" = None,
    ) -> list[BatchExecution]:
        """Execute one shared batch schedule at several memory tiers.

        The schedule (dispatch times and batch sizes) depends only on the
        (B, T) policy, so grid sweeps form it once and evaluate every
        memory tier here: the service-time and pricing math broadcasts over
        an (M, n) matrix in one shot. Per-tier state (cold-start draws, the
        concurrency heap) still runs per memory, matching
        :meth:`execute_batches` exactly. ``rngs`` supplies one cold-start
        generator per tier for order-independent sweeps.
        """
        dispatch_times = np.asarray(dispatch_times, dtype=float)
        batch_sizes = np.asarray(batch_sizes, dtype=int)
        if dispatch_times.shape != batch_sizes.shape:
            raise ValueError("dispatch_times and batch_sizes must align")
        mems = np.asarray(memories, dtype=float)
        if rngs is not None and len(rngs) != mems.size:
            raise ValueError("rngs must align with memories")
        n = dispatch_times.size
        if n == 0:
            empty = np.empty(0)
            return [
                BatchExecution(float(m), empty, np.empty(0, int), empty, empty, empty)
                for m in mems
            ]

        # (M, n): rows are memory tiers, columns are batches.
        service = np.asarray(
            self.profile.service_time(mems[:, None], batch_sizes[None, :]),
            dtype=float,
        ).reshape(mems.size, n)
        if self.cold_start is not None:
            colds = np.stack([
                self.cold_start.sample_delays(
                    float(m),
                    n,
                    (rngs[k] if rngs is not None else self._rng),
                )
                for k, m in enumerate(mems)
            ])
        else:
            colds = np.zeros((mems.size, n))
        if self.faults_active:
            # Fault draws must come from each tier's own generator (right
            # after its cold draws) so grid results match the per-config
            # path and stay independent of grouping order.
            return [
                self._execute_faulty(
                    dispatch_times, batch_sizes, float(m), service[k], colds[k],
                    rngs[k] if rngs is not None else self._rng,
                )
                for k, m in enumerate(mems)
            ]

        durations = colds + service
        costs = np.broadcast_to(
            np.asarray(self.pricing.invocation_cost(mems[:, None], durations)),
            (mems.size, n),
        )

        out = []
        for k, m in enumerate(mems):
            if self.concurrency_limit is not None:
                starts = _throttled_starts(
                    dispatch_times, durations[k], self.concurrency_limit
                )
            else:
                starts = dispatch_times
            out.append(BatchExecution(
                memory_mb=float(m),
                start_times=starts,
                batch_sizes=batch_sizes,
                service_times=service[k],
                cold_starts=colds[k],
                costs=costs[k],
            ))
        return out

    def invoke_batches(
        self,
        dispatch_times: np.ndarray,
        batch_sizes: np.ndarray,
        memory_mb: float,
    ) -> list[InvocationRecord]:
        """Record-list view of :meth:`execute_batches` (compatibility API)."""
        return self.execute_batches(dispatch_times, batch_sizes, memory_mb).records()
