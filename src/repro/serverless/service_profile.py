"""Deterministic inference service-time profile ``s(M, B)``.

The paper profiles TED-LIUM speech-recognition inference on AWS Lambda and
establishes (citing SERF and the BATCH experiments) that service times are
*deterministic* given the memory size ``M`` and the batch size ``B``. We
model that profiled table with the two well-documented Lambda effects:

* **Memory scaling** — Lambda allocates CPU proportionally to memory up to
  the single-vCPU knee (1 vCPU at 1769–1792 MB); beyond the knee extra
  memory adds cores that help only partially (``multicore_efficiency``).
* **Batch parallelism** — batched inference amortizes the fixed invocation
  and model-evaluation overhead; per-batch time grows sublinearly as
  ``t_batch · B^batch_exponent``.

The default constants are calibrated so the Fig. 1-style curves have the
paper's shape: latency falls steeply with M then flattens; per-request cost
falls with B; latency grows with B and T.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Memory (MB) at which Lambda reaches one full vCPU.
VCPU_KNEE_MB = 1792.0
#: Lambda memory bounds (Eq. 10e).
MIN_MEMORY_MB = 128.0
MAX_MEMORY_MB = 10240.0


@dataclass(frozen=True)
class ServiceProfile:
    """Deterministic service-time model for one deployed ML model.

    Parameters
    ----------
    base_time:
        Fixed per-invocation overhead (runtime dispatch, tensor setup) in
        seconds, measured at the reference memory (the vCPU knee).
    batch_time:
        Incremental per-batch work coefficient (seconds) at the knee.
    batch_exponent:
        Sublinearity of batch computation (1 = linear, <1 = parallel gains).
    min_memory_mb:
        Below this the model does not fit (configuration infeasible).
    multicore_efficiency:
        Fraction of post-knee memory that translates into useful speedup.
    memory_sublinearity:
        Exponent of the pre-knee CPU-share speedup. Lambda allocates CPU
        proportionally to memory, but measured inference speedups are
        sublinear (memory-bandwidth and fixed-cost effects), which is what
        makes *cost rise with memory* in the paper's Fig. 1a.
    """

    base_time: float = 0.005
    batch_time: float = 0.003
    batch_exponent: float = 0.7
    min_memory_mb: float = MIN_MEMORY_MB
    multicore_efficiency: float = 0.3
    memory_sublinearity: float = 0.85

    def __post_init__(self) -> None:
        if self.base_time < 0 or self.batch_time < 0:
            raise ValueError("time coefficients must be non-negative")
        if not 0 < self.batch_exponent <= 1:
            raise ValueError("batch_exponent must be in (0, 1]")
        if self.min_memory_mb < MIN_MEMORY_MB:
            raise ValueError(f"min_memory_mb must be >= {MIN_MEMORY_MB}")
        if not 0 <= self.multicore_efficiency <= 1:
            raise ValueError("multicore_efficiency must be in [0, 1]")
        if not 0 < self.memory_sublinearity <= 1:
            raise ValueError("memory_sublinearity must be in (0, 1]")

    def speedup(self, memory_mb: "float | np.ndarray") -> "float | np.ndarray":
        """Compute speedup factor relative to the vCPU knee (1.0 there)."""
        m = np.asarray(memory_mb, dtype=float)
        if np.any(m < MIN_MEMORY_MB) or np.any(m > MAX_MEMORY_MB):
            raise ValueError(
                f"memory must be within [{MIN_MEMORY_MB}, {MAX_MEMORY_MB}] MB"
            )
        below = (np.minimum(m, VCPU_KNEE_MB) / VCPU_KNEE_MB) ** self.memory_sublinearity
        above = np.maximum(m - VCPU_KNEE_MB, 0.0) / VCPU_KNEE_MB
        s = below + self.multicore_efficiency * above
        return float(s) if np.ndim(s) == 0 else s

    def service_time(
        self, memory_mb: "float | np.ndarray", batch_size: "int | np.ndarray"
    ) -> "float | np.ndarray":
        """Deterministic batch service time ``s(M, B)`` in seconds.

        Raises for memory below the model's footprint — such configurations
        are infeasible (OOM on the real platform), matching how the BATCH
        search space excludes them.
        """
        b = np.asarray(batch_size)
        if np.any(b < 1):
            raise ValueError("batch_size must be >= 1")
        m = np.asarray(memory_mb, dtype=float)
        if np.any(m < self.min_memory_mb):
            raise ValueError(
                f"memory {m} MB below model footprint {self.min_memory_mb} MB"
            )
        work = self.base_time + self.batch_time * b**self.batch_exponent
        t = work / self.speedup(m)
        return float(t) if np.ndim(t) == 0 else t

    def per_request_time(
        self, memory_mb: "float | np.ndarray", batch_size: "int | np.ndarray"
    ) -> "float | np.ndarray":
        """Service time amortized per request — the batching win."""
        return self.service_time(memory_mb, batch_size) / np.asarray(batch_size)


@dataclass(frozen=True)
class ColdStartModel:
    """Optional cold-start penalty.

    Real Lambda cold starts add container + model-load time that shrinks
    with memory. Disabled by default (the paper's analysis, like BATCH's,
    assumes warmed functions); the failure-injection benches enable it.
    """

    base_delay: float = 0.25
    memory_scaling: float = 0.5
    cold_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if not 0 <= self.cold_probability <= 1:
            raise ValueError("cold_probability must be in [0, 1]")

    def delay(self, memory_mb: float) -> float:
        """Cold-start delay at ``memory_mb`` (seconds)."""
        return self.base_delay * (VCPU_KNEE_MB / memory_mb) ** self.memory_scaling

    def sample_delays(
        self, memory_mb: float, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-invocation cold-start delays (0 for warm starts)."""
        cold = rng.random(n) < self.cold_probability
        return np.where(cold, self.delay(memory_mb), 0.0)


#: The TED-LIUM-like speech model used throughout the evaluation.
DEFAULT_PROFILE = ServiceProfile()
