"""Correlated infrastructure faults: outages, crashes, stragglers.

PR 3's :class:`~repro.serverless.faults.FaultModel` covers *independent*
per-attempt request faults — each invocation flips its own coin. Real
serverless fleets also fail in correlated, infrastructure-level ways that
no per-request model can express:

* **outage windows** — intervals during which the platform cannot
  provision *new* capacity (a zonal capacity crunch, a control-plane
  incident). Warm containers keep serving; cold starts are denied with
  a capacity-unavailable error until the window closes;
* **container crashes** — a live container dies mid-batch (OOM kill,
  host reclaim). The in-flight requests fail and must re-enter the
  queue; the container leaves the pool immediately;
* **stragglers** — some fraction of freshly provisioned containers run
  slower than the fleet (noisy neighbours, degraded hardware), by a
  fixed per-container slowdown factor drawn once at cold start.

Everything here is *pure and seeded*: window schedules are explicit or
sampled once up front from a caller-owned seed, the straggler draw is a
deterministic function of ``(seed, container_id)``, and crash draws are
taken by the serving engine from its per-batch ``spawn_rng`` children with
fixed draw counts — so runs stay order-independent and checkpoint-safe.
The default-constructed model is disabled and the serving layer treats a
disabled model exactly like an absent one, keeping fault-free runs
bit-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OutageWindow:
    """One closed-open interval ``[start, end)`` of denied provisioning."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"end must be > start, got [{self.start}, {self.end})"
            )

    def fingerprint(self) -> tuple:
        return (float(self.start), float(self.end))


@dataclass(frozen=True)
class CrashHazard:
    """Per-batch probability that the serving container dies mid-batch.

    ``rate`` applies outside outage windows, ``outage_rate`` (defaulting
    to ``rate``) inside them — capacity crunches and elevated crash rates
    tend to arrive together. The hazard is evaluated once per dispatched
    batch at its start time; a crashed batch fails partway through, bills
    its partial run, and its requests re-enter the queue.
    """

    rate: float = 0.0
    outage_rate: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        if self.outage_rate is not None and not 0.0 <= self.outage_rate < 1.0:
            raise ValueError(
                f"outage_rate must be in [0, 1), got {self.outage_rate}"
            )

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0 or bool(self.outage_rate)

    def probability(self, in_outage: bool) -> float:
        """The crash probability applying at a batch start."""
        if in_outage and self.outage_rate is not None:
            return self.outage_rate
        return self.rate

    def fingerprint(self) -> tuple:
        return (self.rate, self.outage_rate)


@dataclass(frozen=True)
class StragglerModel:
    """Per-container slowdown drawn once at cold start.

    With probability ``rate`` a freshly provisioned container is a
    straggler: every batch it serves takes ``slowdown`` times its clean
    service time. The draw is a pure function of the outage model's seed
    and the container id, so it survives checkpoint/restore without any
    state and is independent of dispatch order.
    """

    rate: float = 0.0
    slowdown: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0 and self.slowdown > 1.0

    def fingerprint(self) -> tuple:
        return (self.rate, self.slowdown)


@dataclass(frozen=True)
class OutageModel:
    """The full infrastructure-fault configuration for one serving run.

    ``windows`` must be sorted by start and non-overlapping (validated).
    ``seed`` feeds the straggler draw only — crash draws come from the
    engine's per-batch generators, and windows are fixed schedules.
    """

    windows: tuple[OutageWindow, ...] = ()
    crash: CrashHazard | None = None
    straggler: StragglerModel | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        prev_end = -1.0
        for w in self.windows:
            if w.start < prev_end:
                raise ValueError(
                    "outage windows must be sorted by start and "
                    f"non-overlapping; [{w.start}, {w.end}) follows a "
                    f"window ending at {prev_end}"
                )
            prev_end = w.end

    @property
    def enabled(self) -> bool:
        """Whether any infrastructure fault is configured.

        The serving layer treats a disabled model exactly like ``None``.
        """
        return (
            bool(self.windows)
            or (self.crash is not None and self.crash.enabled)
            or (self.straggler is not None and self.straggler.enabled)
        )

    def active(self, t: float) -> bool:
        """Whether an outage window is open at ``t``."""
        for w in self.windows:
            if w.start <= t < w.end:
                return True
            if t < w.start:
                return False
        return False

    def crash_probability(self, t: float) -> float:
        """Crash probability for a batch starting at ``t`` (0 when off)."""
        if self.crash is None:
            return 0.0
        return self.crash.probability(self.active(t))

    def straggler_factor(self, container_id: int) -> float:
        """Service-time multiplier of one container (1.0 = healthy).

        A pure function of ``(seed, container_id)`` via its own
        ``SeedSequence`` child — no mutable state, so the factor is
        identical whenever and wherever it is evaluated.
        """
        sm = self.straggler
        if sm is None or not sm.enabled:
            return 1.0
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed,
                                   spawn_key=(container_id,))
        )
        return sm.slowdown if float(rng.random()) < sm.rate else 1.0

    def fingerprint(self) -> tuple:
        """Checkpoint identity: restoring under a different outage model
        must be refused, so every behavioural field participates."""
        return (
            "outages",
            tuple(w.fingerprint() for w in self.windows),
            self.crash.fingerprint() if self.crash is not None else None,
            self.straggler.fingerprint() if self.straggler is not None else None,
            self.seed,
        )


def sample_outage_windows(
    seed: int,
    horizon_s: float,
    mean_up_s: float,
    mean_down_s: float,
    t_start: float = 0.0,
) -> tuple[OutageWindow, ...]:
    """Sample an alternating up/down renewal schedule of outage windows.

    The platform alternates exponential up-times (mean ``mean_up_s``,
    starting up at ``t_start``) and exponential down-times (mean
    ``mean_down_s``); down intervals inside ``[t_start, t_start +
    horizon_s)`` become :class:`OutageWindow` s, clipped to the horizon.
    Sampling is a pure function of ``seed`` — the schedule is fixed
    before the run begins, exactly like an explicit window list.
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
    if mean_up_s <= 0 or mean_down_s <= 0:
        raise ValueError("mean_up_s and mean_down_s must be > 0")
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(0xD0, 0x0E))
    )
    end = t_start + horizon_s
    t = t_start
    windows: list[OutageWindow] = []
    while t < end:
        t += float(rng.exponential(mean_up_s))
        if t >= end:
            break
        down = float(rng.exponential(mean_down_s))
        windows.append(OutageWindow(t, min(t + down, end)))
        t += down
    return tuple(windows)
