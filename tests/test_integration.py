"""Cross-module integration tests: the full pipeline end to end, plus
consistency checks between the analytic baseline, the simulator, and the
trained surrogate."""

import numpy as np
import pytest

from repro.arrival import interarrivals, mmpp2_with_burstiness, poisson_map
from repro.arrival.fitting import fit_map
from repro.baseline import BATCHController, BatchAnalyticModel
from repro.batching import BatchConfig, config_grid, ground_truth_optimum, simulate
from repro.core import (
    DeepBATController,
    DeepBATSurrogate,
    TrainConfig,
    generate_dataset,
    train_surrogate,
)
from repro.evaluation import run_experiment, vcr
from repro.serverless import ServerlessPlatform

GRID = config_grid(
    memories=(512.0, 1024.0, 1792.0),
    batch_sizes=(1, 4, 8, 16),
    timeouts=(0.0, 0.02, 0.05, 0.1),
)
PLAT = ServerlessPlatform()
SLO = 0.1


@pytest.fixture(scope="module")
def trained():
    """A small but honest surrogate trained on a stationary workload."""
    hist = np.diff(poisson_map(200.0).sample(duration=120.0, seed=0))
    ds = generate_dataset(hist, n_samples=400, seq_len=32, configs=GRID,
                          platform=PLAT, seed=0)
    model = DeepBATSurrogate(seq_len=32, seed=0)
    return train_surrogate(
        ds, model=model,
        config=TrainConfig(epochs=25, batch_size=32, patience=None, seed=0),
    )


class TestFullPipeline:
    def test_deepbat_decision_meets_slo_on_unseen_hour(self, trained):
        """Train -> choose -> verify by simulation (quickstart semantics)."""
        proc = poisson_map(200.0)
        hist = np.diff(proc.sample(duration=30.0, seed=5))
        future = proc.sample(duration=30.0, seed=6)
        ctrl = DeepBATController(trained, configs=GRID)
        decision = ctrl.choose(hist, SLO)
        sim = simulate(future, decision.config, PLAT)
        # Allow modest surrogate error: the decision shouldn't blow through
        # the SLO by a large factor on a stationary workload.
        assert sim.latency_percentile(95) <= SLO * 1.3

    def test_deepbat_cheaper_than_no_batching(self, trained):
        proc = poisson_map(200.0)
        hist = np.diff(proc.sample(duration=30.0, seed=7))
        future = proc.sample(duration=30.0, seed=8)
        ctrl = DeepBATController(trained, configs=GRID)
        cfg = ctrl.choose(hist, SLO).config
        chosen = simulate(future, cfg, PLAT)
        naive = simulate(future, BatchConfig(1792.0, 1, 0.0), PLAT)
        assert chosen.cost_per_request < naive.cost_per_request

    def test_deepbat_tracks_ground_truth_cost(self, trained):
        """The chosen config's true cost is within a factor of the oracle's."""
        proc = poisson_map(200.0)
        hist = np.diff(proc.sample(duration=30.0, seed=9))
        future = proc.sample(duration=30.0, seed=10)
        ctrl = DeepBATController(trained, configs=GRID)
        cfg = ctrl.choose(hist, SLO).config
        chosen = simulate(future, cfg, PLAT)
        _, oracle = ground_truth_optimum(future, GRID, PLAT, SLO)
        assert chosen.cost_per_request <= 3.0 * oracle.cost_per_request


class TestBaselineConsistency:
    def test_analytic_model_on_fitted_map_matches_source_simulation(self):
        """fit -> analytic predict ~= simulate the original trace."""
        proc = mmpp2_with_burstiness(200.0, 1.5, 1.0, 0.5)
        ts = proc.sample(duration=120.0, seed=3)
        fitted, _ = fit_map(np.diff(ts))
        model = BatchAnalyticModel(fitted, profile=PLAT.profile, pricing=PLAT.pricing)
        cfg = BatchConfig(1024.0, 8, 0.05)
        pred = model.evaluate(cfg)
        sim = simulate(ts, cfg, PLAT)
        assert pred.latency_at(95.0) == pytest.approx(
            sim.latency_percentile(95), rel=0.2
        )
        assert pred.cost_per_request == pytest.approx(sim.cost_per_request, rel=0.2)

    def test_batch_controller_good_on_stationary_bad_history_hurts(self):
        """BATCH's decision from a matching history meets the SLO; the same
        decision made from a much *slower* history underestimates waits and
        violates — the staleness failure mode of §IV-C."""
        fast = poisson_map(400.0)
        slow = poisson_map(40.0)
        future = fast.sample(duration=30.0, seed=11)
        ctrl = BATCHController(configs=GRID, profile=PLAT.profile, pricing=PLAT.pricing)

        good = ctrl.choose(np.diff(fast.sample(duration=30.0, seed=12)), SLO)
        sim_good = simulate(future, good.config, PLAT)
        assert sim_good.latency_percentile(95) <= SLO * 1.2

        stale = ctrl.choose(np.diff(slow.sample(duration=30.0, seed=13)), SLO)
        # Now the *actual* future is slow but BATCH plans for it while the
        # workload turns fast — or vice versa. Evaluate the mismatched case:
        future_slow = slow.sample(duration=30.0, seed=14)
        sim_stale = simulate(future_slow, good.config, PLAT)  # fast-history plan on slow hour
        # The plan tuned for the fast hour relies on quick batch fill; on the
        # slow hour waits stretch toward the timeout.
        assert sim_stale.latency_percentile(95) >= sim_good.latency_percentile(95)


class TestHarnessConsistency:
    def test_vcr_zero_for_oracle_like_controller(self, trained):
        """A controller that picks a clearly safe config never violates."""
        from dataclasses import dataclass

        @dataclass
        class Safe:
            def choose(self, hist, slo):
                @dataclass(frozen=True)
                class _D:
                    config: BatchConfig = BatchConfig(1792.0, 1, 0.0)
                    decision_time: float = 0.0

                return _D()

        from repro.arrival import azure_like

        trace = azure_like(seed=4, n_segments=3, segment_duration=20.0, base_rate=60.0)
        log = run_experiment(trace, Safe(), slo=SLO, platform=PLAT)
        assert log.vcr_series().max() == 0.0

    def test_vcr_consistent_with_direct_computation(self, trained):
        rng = np.random.default_rng(0)
        lat = rng.exponential(0.05, size=2048)
        direct = vcr(lat, SLO, sequence_length=256)
        assert 0.0 <= direct <= 100.0
        chunks = lat[: 8 * 256].reshape(8, 256)
        manual = float((np.percentile(chunks, 95, axis=1) > SLO).mean() * 100)
        assert direct == pytest.approx(manual)
