"""Tests for the MArk-style reactive baseline."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.baseline.reactive import ReactiveController
from repro.batching.config import config_grid
from repro.batching.simulator import simulate
from repro.serverless.platform import ServerlessPlatform

GRID = config_grid(
    memories=(512.0, 1024.0, 1792.0),
    batch_sizes=(1, 4, 8, 16),
    timeouts=(0.0, 0.02, 0.05, 0.1),
)
PLAT = ServerlessPlatform()


@pytest.fixture(scope="module")
def controller():
    return ReactiveController(
        configs=GRID, platform=PLAT, slo=0.1,
        rate_bands=(25.0, 100.0, 400.0), profile_duration=20.0,
    )


class TestConstruction:
    def test_table_covers_all_bands(self, controller):
        table = controller.table()
        assert set(table) == {25.0, 100.0, 400.0}
        assert all(c in GRID for c in table.values())

    def test_invalid_bands(self):
        with pytest.raises(ValueError):
            ReactiveController(configs=GRID, rate_bands=())
        with pytest.raises(ValueError):
            ReactiveController(configs=GRID, rate_bands=(10.0, 5.0))
        with pytest.raises(ValueError):
            ReactiveController(configs=GRID, rate_bands=(0.0, 5.0))


class TestDecisions:
    def test_picks_nearest_band(self, controller):
        hist = np.full(300, 1.0 / 90.0)  # ~90 req/s -> 100 band
        d = controller.choose(hist, slo=0.1)
        assert d.band_rate == 100.0
        assert d.observed_rate == pytest.approx(90.0, rel=0.01)

    def test_fast_decision(self, controller):
        hist = np.full(300, 0.01)
        d = controller.choose(hist, slo=0.1)
        assert d.decision_time < 0.01  # table lookup, sub-10ms

    def test_slo_mismatch_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.choose(np.full(10, 0.01), slo=0.2)

    def test_good_on_stationary_poisson(self, controller):
        """The lookup table is exact for the workloads it profiled."""
        proc = poisson_map(100.0)
        hist = np.diff(proc.sample(duration=20.0, seed=9))
        future = proc.sample(duration=20.0, seed=10)
        d = controller.choose(hist, slo=0.1)
        sim = simulate(future, d.config, PLAT)
        assert sim.latency_percentile(95) <= 0.1 * 1.2

    def test_blind_to_burstiness(self, controller):
        """Same mean rate, very different burstiness -> same config.

        This is the structural weakness of rate-only reactive control."""
        smooth = np.diff(poisson_map(100.0).sample(duration=20.0, seed=11))
        bursty = np.diff(
            mmpp2_with_burstiness(100.0, 3.0, 5.0, 0.15).sample(duration=60.0, seed=11)
        )
        d_smooth = controller.choose(smooth, slo=0.1)
        # Use a tail whose mean rate matches the overall rate.
        d_bursty = controller.choose(bursty, slo=0.1)
        if d_bursty.band_rate == d_smooth.band_rate:
            assert d_bursty.config == d_smooth.config
