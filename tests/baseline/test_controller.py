"""Tests for the BATCH controller (fit + exhaustive analytic search)."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.baseline.controller import BATCHController
from repro.batching.config import BatchConfig, config_grid
from repro.batching.simulator import simulate
from repro.serverless.platform import ServerlessPlatform

GRID = config_grid(
    memories=(512.0, 1024.0, 1792.0),
    batch_sizes=(1, 4, 8, 16),
    timeouts=(0.0, 0.02, 0.05, 0.1),
)
PLAT = ServerlessPlatform()


class TestBATCHController:
    def test_decision_meets_predicted_slo(self):
        ts = poisson_map(200.0).sample(duration=60.0, seed=0)
        ctrl = BATCHController(configs=GRID)
        decision = ctrl.choose(np.diff(ts), slo=0.1)
        assert decision.feasible
        assert decision.prediction.latency_percentiles[0] <= 0.1
        assert decision.config in GRID

    def test_stationary_workload_decision_holds_in_simulation(self):
        """When next hour == last hour, BATCH's config should actually meet
        the SLO in ground truth (the paper's in-distribution result)."""
        proc = poisson_map(200.0)
        hist = proc.sample(duration=60.0, seed=0)
        future = proc.sample(duration=60.0, seed=99)
        ctrl = BATCHController(configs=GRID)
        decision = ctrl.choose(np.diff(hist), slo=0.1)
        sim = simulate(future, decision.config, PLAT)
        assert sim.latency_percentile(95) <= 0.1 * 1.15  # small sim noise band

    def test_picks_cheaper_config_than_no_batching(self):
        proc = poisson_map(300.0)
        hist = np.diff(proc.sample(duration=60.0, seed=1))
        ctrl = BATCHController(configs=GRID)
        decision = ctrl.choose(hist, slo=0.15)
        assert decision.config.batch_size > 1  # batching is economical here

    def test_tight_slo_prefers_fast_configs(self):
        proc = poisson_map(200.0)
        hist = np.diff(proc.sample(duration=60.0, seed=2))
        ctrl = BATCHController(configs=GRID)
        loose = ctrl.choose(hist, slo=0.2)
        tight = ctrl.choose(hist, slo=0.02)
        assert tight.prediction.latency_percentiles[0] <= loose.prediction.latency_percentiles[0]
        assert tight.config.timeout <= loose.config.timeout

    def test_infeasible_slo_falls_back(self):
        proc = poisson_map(100.0)
        hist = np.diff(proc.sample(duration=30.0, seed=3))
        ctrl = BATCHController(configs=GRID)
        decision = ctrl.choose(hist, slo=1e-6)
        assert not decision.feasible
        assert decision.config in GRID

    def test_requires_enough_samples(self):
        ctrl = BATCHController(configs=GRID)
        with pytest.raises(ValueError):
            ctrl.choose(np.array([0.01] * 5), slo=0.1)

    def test_rejects_bad_slo(self):
        ctrl = BATCHController(configs=GRID)
        with pytest.raises(ValueError):
            ctrl.choose(np.full(100, 0.01), slo=0.0)

    def test_records_timing(self):
        hist = np.diff(poisson_map(200.0).sample(duration=30.0, seed=4))
        ctrl = BATCHController(configs=GRID)
        decision = ctrl.choose(hist, slo=0.1)
        assert decision.fit_time >= 0
        assert decision.solve_time > 0
        assert decision.total_time == pytest.approx(
            decision.fit_time + decision.solve_time
        )

    def test_bursty_history_changes_decision(self):
        """A burstier history should push BATCH toward more conservative
        (lower-latency-risk) configurations than a smooth one."""
        smooth = np.diff(poisson_map(200.0).sample(duration=60.0, seed=5))
        bursty = np.diff(
            mmpp2_with_burstiness(200.0, 2.0, 2.0, 0.3).sample(duration=60.0, seed=5)
        )
        ctrl = BATCHController(configs=GRID)
        d_smooth = ctrl.choose(smooth, slo=0.1)
        d_bursty = ctrl.choose(bursty, slo=0.1)
        # Both valid decisions; the bursty fit must acknowledge burstiness.
        assert ctrl.last_map.scv() > 1.5
        assert d_bursty.config in GRID and d_smooth.config in GRID

    def test_empty_config_list_rejected(self):
        with pytest.raises(ValueError):
            BATCHController(configs=[])
