"""Tests for the BATCH analytic model, cross-validated against simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.baseline.analytic import BatchAnalyticModel, weighted_percentiles
from repro.batching.config import BatchConfig
from repro.batching.simulator import simulate
from repro.serverless.platform import ServerlessPlatform

PLAT = ServerlessPlatform()


class TestWeightedPercentiles:
    def test_uniform_weights_match_step_quantiles(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        w = np.ones(4)
        out = weighted_percentiles(v, w, np.array([25.0, 50.0, 100.0]))
        np.testing.assert_allclose(out, [1.0, 2.0, 4.0])

    def test_weights_shift_quantiles(self):
        v = np.array([0.0, 10.0])
        w = np.array([9.0, 1.0])
        assert weighted_percentiles(v, w, np.array([50.0]))[0] == 0.0
        assert weighted_percentiles(v, w, np.array([95.0]))[0] == 10.0

    def test_unsorted_input_ok(self):
        v = np.array([3.0, 1.0, 2.0])
        w = np.ones(3)
        assert weighted_percentiles(v, w, np.array([50.0]))[0] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_percentiles(np.array([1.0]), np.array([1.0, 2.0]), np.array([50.0]))
        with pytest.raises(ValueError):
            weighted_percentiles(np.array([1.0]), np.array([0.0]), np.array([50.0]))
        with pytest.raises(ValueError):
            weighted_percentiles(np.array([1.0]), np.array([-1.0]), np.array([50.0]))


class TestDegenerateConfigs:
    def test_b1_latency_is_pure_service(self):
        model = BatchAnalyticModel(poisson_map(100.0))
        pred = model.evaluate(BatchConfig(1024.0, 1, 0.0))
        svc = PLAT.profile.service_time(1024.0, 1)
        np.testing.assert_allclose(pred.latency_percentiles, svc)
        assert pred.mean_batch_size == 1.0
        assert pred.p_full == 0.0

    def test_timeout_zero_equals_b1(self):
        model = BatchAnalyticModel(poisson_map(100.0))
        a = model.evaluate(BatchConfig(1024.0, 1, 0.0))
        b = model.evaluate(BatchConfig(1024.0, 16, 0.0))
        assert a.cost_per_request == pytest.approx(b.cost_per_request)


class TestAgainstSimulation:
    """The analytic model must track simulated ground truth on its own MAP."""

    @pytest.mark.parametrize(
        "cfg",
        [
            BatchConfig(1024.0, 8, 0.05),
            BatchConfig(512.0, 4, 0.02),
            BatchConfig(1792.0, 16, 0.1),
        ],
    )
    def test_poisson_percentiles_and_cost(self, cfg):
        proc = poisson_map(150.0)
        model = BatchAnalyticModel(proc)
        pred = model.evaluate(cfg)
        sim = simulate(proc.sample(duration=150.0, seed=0), cfg, PLAT)
        assert pred.latency_at(95.0) == pytest.approx(sim.latency_percentile(95), rel=0.05)
        assert pred.cost_per_request == pytest.approx(sim.cost_per_request, rel=0.05)
        assert pred.mean_batch_size == pytest.approx(sim.mean_batch_size, rel=0.05)

    def test_bursty_map_within_tolerance(self):
        proc = mmpp2_with_burstiness(150.0, 1.6, 1.5, 0.45)
        model = BatchAnalyticModel(proc)
        cfg = BatchConfig(1024.0, 16, 0.1)
        pred = model.evaluate(cfg)
        sim = simulate(proc.sample(duration=150.0, seed=1), cfg, PLAT)
        # Cycle-decoupling approximation: allow a looser band.
        assert pred.latency_at(95.0) == pytest.approx(sim.latency_percentile(95), rel=0.12)
        assert pred.cost_per_request == pytest.approx(sim.cost_per_request, rel=0.12)

    def test_p_full_increases_with_rate(self):
        cfg = BatchConfig(1024.0, 8, 0.05)
        slow = BatchAnalyticModel(poisson_map(50.0)).evaluate(cfg)
        fast = BatchAnalyticModel(poisson_map(500.0)).evaluate(cfg)
        assert fast.p_full > slow.p_full

    def test_latency_monotone_in_timeout(self):
        model = BatchAnalyticModel(poisson_map(100.0))
        p_small = model.evaluate(BatchConfig(1024.0, 32, 0.02))
        p_large = model.evaluate(BatchConfig(1024.0, 32, 0.2))
        assert p_large.latency_at(95.0) > p_small.latency_at(95.0)
        assert p_large.cost_per_request < p_small.cost_per_request

    def test_percentile_vector_is_sorted(self):
        model = BatchAnalyticModel(poisson_map(100.0))
        pred = model.evaluate(BatchConfig(1024.0, 8, 0.05))
        assert np.all(np.diff(pred.latency_percentiles) >= 0)

    @given(st.integers(2, 24), st.floats(0.01, 0.2))
    @settings(max_examples=15, deadline=None)
    def test_mass_accounting_properties(self, b, t):
        """Property: p_full in [0,1], mean batch size in [1, B], cost and
        percentiles positive and finite for any (B, T)."""
        model = BatchAnalyticModel(poisson_map(120.0), n_steps=48)
        pred = model.evaluate(BatchConfig(1024.0, b, t))
        assert 0.0 <= pred.p_full <= 1.0
        assert 1.0 <= pred.mean_batch_size <= b + 1e-9
        assert np.isfinite(pred.cost_per_request) and pred.cost_per_request > 0
        assert np.all(np.isfinite(pred.latency_percentiles))
        assert np.all(pred.latency_percentiles > 0)

    def test_invalid_n_steps(self):
        with pytest.raises(ValueError):
            BatchAnalyticModel(poisson_map(1.0), n_steps=2)
