"""Tests for the level-expanded transient machinery."""

import numpy as np
import pytest
from scipy import stats

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2
from repro.baseline.uniformization import (
    expanded_generator,
    time_to_level_cdf,
    transient_kernels,
)


class TestExpandedGenerator:
    def test_block_structure(self):
        m = mmpp2(5.0, 1.0, 0.5, 0.5)
        q = expanded_generator(m, levels=3)
        assert q.shape == (6, 6)
        np.testing.assert_allclose(q[0:2, 0:2], m.d0)
        np.testing.assert_allclose(q[0:2, 2:4], m.d1)
        np.testing.assert_allclose(q[2:4, 0:2], 0.0)
        np.testing.assert_allclose(q[4:6, 4:6], m.d0)

    def test_substochastic(self):
        m = mmpp2(5.0, 1.0, 0.5, 0.5)
        q = expanded_generator(m, levels=2)
        assert np.all(q.sum(axis=1) <= 1e-12)  # leaks to absorption

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            expanded_generator(poisson_map(1.0), 0)


class TestTransientKernels:
    def test_kernel_zero_is_identity(self):
        ker = transient_kernels(poisson_map(2.0), 3, horizon=1.0, n_steps=10)
        np.testing.assert_allclose(ker.kernels[0], np.eye(3))

    def test_survival_decreases(self):
        ker = transient_kernels(poisson_map(2.0), 3, horizon=2.0, n_steps=20)
        surv = ker.survival()
        assert np.all(np.diff(surv, axis=0) <= 1e-12)
        assert np.all(surv >= -1e-12) and np.all(surv <= 1 + 1e-12)

    def test_level_distribution_poisson(self):
        """For a Poisson MAP the level occupancy is a truncated Poisson."""
        rate, t = 3.0, 0.7
        ker = transient_kernels(poisson_map(rate), levels=20, horizon=t, n_steps=50)
        init = np.zeros(20)
        init[0] = 1.0
        lvl = ker.level_distribution(ker.n_steps, init)
        expected = stats.poisson.pmf(np.arange(20), rate * t)
        np.testing.assert_allclose(lvl, expected, atol=1e-6)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            transient_kernels(poisson_map(1.0), 2, horizon=0.0, n_steps=10)
        with pytest.raises(ValueError):
            transient_kernels(poisson_map(1.0), 2, horizon=1.0, n_steps=0)


class TestTimeToLevel:
    def test_poisson_time_to_kth_arrival_is_erlang(self):
        rate, k = 4.0, 3
        grid = np.linspace(0, 3, 30)
        cdf = time_to_level_cdf(poisson_map(rate), k, grid)
        expected = stats.gamma.cdf(grid, a=k, scale=1 / rate)
        np.testing.assert_allclose(cdf, expected, atol=1e-8)

    def test_single_arrival_is_exponential(self):
        rate = 2.5
        grid = np.linspace(0, 2, 10)
        cdf = time_to_level_cdf(poisson_map(rate), 1, grid)
        np.testing.assert_allclose(cdf, 1 - np.exp(-rate * grid), atol=1e-10)

    def test_mmpp_cdf_is_monotone_distribution(self):
        m = mmpp2(10.0, 1.0, 0.5, 0.5)
        grid = np.linspace(0, 5, 40)
        cdf = time_to_level_cdf(m, 4, grid)
        assert cdf[0] == pytest.approx(0.0, abs=1e-12)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_level_cdf(poisson_map(1.0), 0, np.array([1.0]))
        with pytest.raises(ValueError):
            time_to_level_cdf(poisson_map(1.0), 1, np.array([-1.0]))

    def test_mmpp_matches_monte_carlo(self):
        m = mmpp2(20.0, 2.0, 1.0, 1.0)
        k = 5
        samples = []
        for seed in range(400):
            ts = m.sample(n_arrivals=k, seed=seed)
            samples.append(ts[-1])
        samples = np.asarray(samples)
        grid = np.array([np.percentile(samples, 50)])
        # sample() starts from the stationary CTMC phase; match it.
        cdf = time_to_level_cdf(m, k, grid, initial_phase=m.stationary_phase())
        assert cdf[0] == pytest.approx(0.5, abs=0.08)
