"""Tests for RNG plumbing, validation helpers, and the timer."""

import time

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability_vector,
    check_sorted,
)


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        assert as_rng(42).random() == as_rng(42).random()

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_spawn_independent_children(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_deterministic(self):
        a1, a2 = spawn_rngs(7, 2)
        b1, b2 = spawn_rngs(7, 2)
        assert a1.random() == b1.random()
        assert a2.random() == b2.random()

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 3)
        assert len(children) == 3

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_finite(self):
        check_finite(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            check_finite(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]))

    def test_check_positive(self):
        check_positive(1.0)
        check_positive(0.0, strict=False)
        with pytest.raises(ValueError):
            check_positive(0.0)
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)

    def test_check_probability_vector(self):
        check_probability_vector(np.array([0.3, 0.7]))
        with pytest.raises(ValueError):
            check_probability_vector(np.array([0.5, 0.6]))
        with pytest.raises(ValueError):
            check_probability_vector(np.array([[0.5], [0.5]]))
        with pytest.raises(ValueError):
            check_probability_vector(np.array([-0.1, 1.1]))

    def test_check_sorted(self):
        check_sorted(np.array([1.0, 1.0, 2.0]))
        check_sorted(np.array([1.0, 2.0]), strict=True)
        with pytest.raises(ValueError):
            check_sorted(np.array([2.0, 1.0]))
        with pytest.raises(ValueError):
            check_sorted(np.array([1.0, 1.0]), strict=True)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first
