"""Tests for the shared atomic-write helper (nn checkpoints + serving
snapshots both write through it)."""

import os

import pytest

from repro.utils.io import atomic_write


class TestAtomicWrite:
    def test_writes_the_file(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_write(path) as fh:
            fh.write(b"payload")
        assert path.read_bytes() == b"payload"

    def test_text_mode(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path, mode="w") as fh:
            fh.write("line\n")
        assert path.read_text() == "line\n"

    def test_rejects_other_modes(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            with atomic_write(tmp_path / "x", mode="a"):
                pass

    def test_failure_preserves_previous_contents(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write(b"half-written new conten")
                raise RuntimeError("crash mid-write")
        assert path.read_bytes() == b"old"

    def test_no_temp_litter_on_success_or_failure(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_write(path) as fh:
            fh.write(b"ok")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_temp_file_lives_in_the_target_directory(self, tmp_path):
        # os.replace is only atomic within a filesystem; the temp file must
        # be created next to the target, not in the global tmpdir.
        path = tmp_path / "out.bin"
        with atomic_write(path) as fh:
            names = os.listdir(tmp_path)
            assert names and all(n != "out.bin" for n in names)
            fh.write(b"ok")
        assert path.read_bytes() == b"ok"
