"""Tests for counters, gauges, histograms, spans, and the registry."""

import numpy as np
import pytest

from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(2.5)
        assert reg.counter("x").value == 3.5

    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("y")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("loss")
        g.set(1.0)
        g.set(0.5)
        assert g.value == 0.5
        assert g.updates == 2


class TestHistogram:
    def test_percentiles_exact_under_cap(self):
        h = Histogram("h")
        h.observe_many(np.arange(1.0, 1001.0))
        assert h.count == 1000
        assert h.min == 1.0
        assert h.max == 1000.0
        assert h.mean == pytest.approx(500.5)
        assert h.percentile(50) == pytest.approx(np.percentile(np.arange(1.0, 1001.0), 50))
        assert h.percentile(95) == pytest.approx(np.percentile(np.arange(1.0, 1001.0), 95))

    def test_reservoir_bounds_memory_keeps_exact_scalars(self):
        h = Histogram("h", max_samples=100)
        values = np.linspace(0.0, 1.0, 10_000)
        h.observe_many(values)
        assert len(h._samples) == 100
        assert h.count == 10_000
        assert h.total == pytest.approx(values.sum())
        assert h.min == 0.0
        assert h.max == 1.0
        # The reservoir is an unbiased sample of a uniform stream, so the
        # median estimate should land near the true median.
        assert abs(h.percentile(50) - 0.5) < 0.15

    def test_single_observe_and_summary(self):
        h = Histogram("h")
        h.observe(2.0)
        s = h.summary()
        assert s["count"] == 1
        assert s["sum"] == 2.0
        assert s["percentiles"]["95"] == 2.0

    def test_empty_summary_is_nan(self):
        h = Histogram("h")
        assert np.isnan(h.percentile(50))
        assert np.isnan(h.summary()["mean"])

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", max_samples=0)


class TestSpans:
    def test_nesting_records_parent(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        names = {s.name: s for s in reg.spans}
        assert names["outer"].parent is None
        assert names["inner"].parent == "outer"
        assert names["inner"].duration <= names["outer"].duration
        assert reg._span_stack == []

    def test_stack_unwinds_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("broken"):
                raise RuntimeError("boom")
        assert reg._span_stack == []
        assert len(reg.spans) == 1


class TestRegistry:
    def test_default_is_disabled_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_use_registry_scopes_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as active:
            assert active is reg
            assert get_registry() is reg
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_default(self):
        set_registry(MetricsRegistry())
        try:
            assert get_registry().enabled
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY

    def test_null_instruments_are_shared_noops(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")
        null.counter("a").inc()
        assert null.counter("a").value == 0.0
        null.histogram("h").observe_many(np.ones(10))
        assert null.histogram("h").count == 0
        with null.span("s"):
            pass
        assert null.spans == []

    def test_records_and_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(0.5)
        with reg.span("s"):
            pass
        records = list(reg.records())
        assert {r["type"] for r in records} == {
            "counter", "gauge", "histogram", "span"
        }
        reg.clear()
        assert list(reg.records()) == []
