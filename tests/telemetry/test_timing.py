"""Tests for the stage-timer layer (`repro.telemetry.timing`).

Covers the accumulator semantics (nesting, re-entrancy, flush-to-counters),
the disabled path's contract — :func:`stage_timers` hands out the shared
:data:`NULL_TIMERS` and **no clock call is reachable** through the module
while telemetry is off (pinned by poisoning ``perf_counter``) — and the
dashboard's "performance (serving)" section fed by the flushed counters.
"""

import numpy as np
import pytest

from repro.telemetry.export import render_dashboard
from repro.telemetry.metrics import MetricsRegistry, use_registry
from repro.telemetry.timing import (
    NULL_TIMERS,
    NullStageTimers,
    Stage,
    StageTimers,
    stage_timers,
)


class TestStage:
    def test_accumulates_calls_and_total(self):
        stage = Stage("work")
        for _ in range(3):
            with stage:
                pass
        assert stage.calls == 3
        assert stage.total >= 0.0
        assert stage.mean == stage.total / 3

    def test_reentrant_nesting(self):
        # A stage opened while already open keeps both spans (stacked
        # starts), so recursive handlers never corrupt the accumulator.
        stage = Stage("recurse")
        with stage:
            with stage:
                pass
        assert stage.calls == 2
        assert len(stage._starts) == 0

    def test_mean_of_idle_stage_is_zero(self):
        assert Stage("idle").mean == 0.0


class TestStageTimers:
    def test_stage_is_get_or_create(self):
        timers = StageTimers("loop", MetricsRegistry())
        assert timers.stage("a") is timers.stage("a")
        assert timers.stage("a") is not timers.stage("b")

    def test_distinct_stages_accumulate_independently(self):
        timers = StageTimers("loop", MetricsRegistry())
        with timers.stage("arrival"):
            with timers.stage("dispatch"):  # nested: both accumulate
                pass
        assert timers.stage("arrival").calls == 1
        assert timers.stage("dispatch").calls == 1
        assert timers.stage("arrival").total >= timers.stage("dispatch").total

    def test_flush_writes_counters_and_resets(self):
        reg = MetricsRegistry()
        timers = StageTimers("serving.perf", reg)
        with timers.stage("arrival"):
            pass
        timers.flush()
        assert reg.counter("serving.perf.arrival.calls").value == 1
        seconds = reg.counter("serving.perf.arrival.seconds").value
        assert seconds >= 0.0
        # Reset on flush: a second flush adds nothing.
        timers.flush()
        assert reg.counter("serving.perf.arrival.calls").value == 1
        assert reg.counter("serving.perf.arrival.seconds").value == seconds

    def test_flush_skips_idle_stages(self):
        reg = MetricsRegistry()
        timers = StageTimers("p", reg)
        timers.stage("never")
        timers.flush()
        assert "p.never.calls" not in reg._counters

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            StageTimers("", MetricsRegistry())


class TestDisabledPath:
    def test_factory_returns_null_singleton_when_disabled(self):
        # The ambient registry is the disabled no-op default in tests.
        assert stage_timers("serving.perf") is NULL_TIMERS
        assert NULL_TIMERS.enabled is False

    def test_factory_returns_live_timers_when_enabled(self):
        with use_registry(MetricsRegistry()):
            timers = stage_timers("serving.perf")
        assert isinstance(timers, StageTimers)
        assert not isinstance(timers, NullStageTimers)
        assert timers.enabled

    def test_null_timers_never_touch_the_clock(self, monkeypatch):
        import repro.telemetry.timing as timing

        def poisoned():
            raise AssertionError("clock read on the disabled path")

        monkeypatch.setattr(timing, "perf_counter", poisoned)
        timers = stage_timers("serving.perf")
        with timers.stage("arrival"):
            with timers.stage("dispatch"):
                pass
        timers.flush()
        assert timers.stages() == {}

    def test_disabled_serving_run_never_touches_the_clock(self, monkeypatch):
        # The lint this satellite asks for: with telemetry off, a full
        # serving run must complete with a poisoned perf_counter — i.e.
        # no timer call is reachable anywhere in the hot loop.
        import repro.telemetry.timing as timing
        from repro.batching.config import BatchConfig
        from repro.serving import ServingEngine, WarmPoolConfig

        def poisoned():
            raise AssertionError("clock read in an untimed serving run")

        monkeypatch.setattr(timing, "perf_counter", poisoned)
        ts = np.cumsum(
            np.random.default_rng(0).exponential(1 / 200.0, size=1000)
        )
        log = ServingEngine(
            BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05),
            pool=WarmPoolConfig(keep_alive_s=2.0, max_containers=4),
        ).run(ts)
        assert log.n_requests == 1000


class TestDashboardSection:
    def test_serving_run_renders_performance_section(self):
        from repro.batching.config import BatchConfig
        from repro.serving import ServingEngine

        ts = np.cumsum(
            np.random.default_rng(1).exponential(1 / 200.0, size=800)
        )
        reg = MetricsRegistry()
        with use_registry(reg):
            ServingEngine(
                BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
            ).run(ts)
        text = render_dashboard(reg)
        assert "performance (serving)" in text
        assert "arrival" in text
        assert "completion" in text

    def test_no_perf_counters_no_section(self):
        reg = MetricsRegistry()
        reg.counter("serving.requests").inc()
        assert "performance (serving)" not in render_dashboard(reg)
