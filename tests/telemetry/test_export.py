"""Tests for JSONL persistence, event round-trips, and the dashboard."""

import numpy as np
import pytest

from repro.telemetry.events import (
    DecisionEvent,
    DispatchEvent,
    SegmentEvent,
    ViolationEvent,
    event_from_record,
)
from repro.telemetry.export import read_jsonl, render_dashboard, write_jsonl
from repro.telemetry.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests").inc(42)
    reg.gauge("loss").set(0.25)
    reg.histogram("latency").observe_many(np.linspace(0.01, 0.2, 50))
    with reg.span("choose"):
        with reg.span("forward"):
            pass
    reg.record_event(DecisionEvent(
        controller="deepbat", memory_mb=1024.0, batch_size=8, timeout=0.05,
        decision_time=0.002, predicted_cost=1.5, predicted_p95=0.08,
        feasible=True,
    ))
    reg.record_event(DispatchEvent(batch_size=4, dispatch_time=1.0, max_wait=0.01))
    reg.record_event(SegmentEvent(
        segment=1, n_requests=900, p95=0.09, cost_per_request=2e-6,
        vcr=3.0, mean_decision_time=0.002, slo=0.1, controller="DeepBATController",
    ))
    reg.record_event(ViolationEvent(segment=2, observed_p95=0.15, slo=0.1))
    return reg


class TestJsonlRoundTrip:
    def test_write_read_preserves_records(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "dump.jsonl"
        n = write_jsonl(reg, path)
        records = read_jsonl(path)
        assert len(records) == n
        assert records == list(reg.records())

    def test_numpy_scalars_serializable(self, tmp_path):
        records = [{"type": "gauge", "name": "g",
                    "value": np.float64(1.5), "arr": np.arange(3)}]
        path = tmp_path / "np.jsonl"
        write_jsonl(records, path)
        back = read_jsonl(path)
        assert back == [{"type": "gauge", "name": "g", "value": 1.5,
                         "arr": [0, 1, 2]}]

    def test_events_rebuild_from_records(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(reg, path)
        events = [event_from_record(r) for r in read_jsonl(path)
                  if r["type"] == "event"]
        originals = [e for _, e in reg.events]
        assert events == originals

    def test_unknown_kind_passes_through(self):
        raw = {"type": "event", "kind": "from-the-future", "payload": 1}
        assert event_from_record(raw) == raw


class TestDashboard:
    def test_renders_every_section(self):
        text = render_dashboard(populated_registry())
        for section in ("segments", "decisions", "SLO violations", "spans",
                        "histograms", "scalars"):
            assert section in text
        # Per-segment scorecard values survive formatting.
        assert "DeepBATController" in text
        assert "90.0" in text       # p95 in ms
        assert "2.0000" in text     # cost $/1M
        # Nested span shows its parent.
        assert "forward" in text and "choose" in text

    def test_accepts_record_list(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "dump.jsonl"
        write_jsonl(reg, path)
        assert render_dashboard(read_jsonl(path)) == render_dashboard(reg)

    def test_empty_dump(self):
        assert "(no telemetry records)" in render_dashboard([])

    def test_title(self):
        text = render_dashboard([], title="custom title")
        assert text.startswith("custom title")


class TestReliabilitySection:
    def test_renders_guardrail_and_checkpoint_rows(self):
        from repro.telemetry.events import CheckpointEvent, GuardrailEvent

        reg = MetricsRegistry()
        reg.counter("guardrail.tripped").inc(2)
        reg.counter("guardrail.probe").inc(2)
        reg.counter("guardrail.restored").inc()
        reg.counter("guardrail.suppressed_decisions").inc(5)
        reg.counter("checkpoint.snapshots").inc(7)
        reg.counter("checkpoint.restores").inc()
        reg.record_event(GuardrailEvent(
            time=1.0, action="tripped", state="open", observed_p=0.24,
            slo=0.1, memory_mb=2048.0, batch_size=1, timeout=0.0,
        ))
        reg.record_event(GuardrailEvent(
            time=5.0, action="restored", state="closed", observed_p=0.05,
            slo=0.1, memory_mb=2048.0, batch_size=8, timeout=0.05,
        ))
        reg.record_event(CheckpointEvent(
            time=6.0, events_processed=640, journal_entries=900,
        ))
        text = render_dashboard(reg)
        assert "reliability" in text
        assert "breaker trips" in text and "snapshots written" in text
        assert "240.0" in text  # worst tripped percentile in ms
        assert "(2048 MB, B=1, T=0s)" in text  # last fallback config
        assert "final breaker state" in text and "closed" in text
        assert "event 640" in text

    def test_absent_without_reliability_metrics(self):
        assert "reliability" not in render_dashboard(populated_registry())


class TestDegradationSection:
    def test_renders_engine_and_fleet_scopes(self):
        reg = MetricsRegistry()
        # Single-engine namespace: serving.<outage|degrade>.<metric>.
        reg.counter("serving.outage.crashes").inc(4)
        reg.counter("serving.outage.crash_requeued").inc(9)
        reg.counter("serving.outage.straggler_batches").inc(36)
        reg.counter("serving.degrade.cold_retries").inc(106)
        reg.counter("serving.degrade.hedges").inc(14)
        reg.counter("serving.degrade.hedge_wins").inc(5)
        # Fleet-lane namespace: serving.<endpoint>.<outage|degrade>.<metric>.
        reg.counter("serving.gold.degrade.failover").inc(141)
        reg.counter("serving.gold.degrade.brownout_shed").inc(37)
        text = render_dashboard(reg)
        assert "degradation" in text
        assert "engine" in text and "gold" in text
        assert "141" in text and "106" in text

    def test_absent_without_degradation_metrics(self):
        assert "degradation" not in render_dashboard(populated_registry())
        # Plain serving counters don't open the section either.
        reg = MetricsRegistry()
        reg.counter("serving.batches").inc(10)
        assert "degradation" not in render_dashboard(reg)


class TestPerformanceSection:
    def test_renders_simcore_throughput(self):
        reg = MetricsRegistry()
        reg.histogram("simulator.grid_time").observe(0.5)
        reg.counter("simulator.grid_configs").inc(285)
        reg.counter("simulator.grid_sweeps").inc()
        reg.histogram("dataset.label_time").observe(2.0)
        reg.counter("dataset.labels").inc(600)
        reg.gauge("dataset.workers").set(4)
        text = render_dashboard(reg)
        assert "performance (simulation core)" in text
        assert "grid simulation" in text
        assert "570.0" in text  # 285 configs / 0.5 s
        assert "dataset labeling (workers=4)" in text
        assert "300.0" in text  # 600 labels / 2.0 s

    def test_absent_without_perf_metrics(self):
        assert "performance" not in render_dashboard(populated_registry())


class TestResilienceSection:
    def test_renders_fault_counters(self):
        from repro.telemetry.events import RetryEvent

        reg = MetricsRegistry()
        reg.counter("fault.attempts").inc(120)
        reg.counter("fault.retries").inc(20)
        reg.counter("fault.timeouts").inc(3)
        reg.counter("fault.failed_batches").inc(2)
        reg.counter("fault.failed_requests").inc(9)
        reg.counter("fault.degraded_decisions").inc(1)
        reg.record_event(RetryEvent(
            memory_mb=1024.0, batches=100, retries=20, timeouts=3,
            failed_batches=2, failed_requests=9, throttle_retries=0,
        ))
        text = render_dashboard(reg)
        assert "resilience" in text
        assert "invocation attempts" in text
        assert "invocation retries" in text
        assert "timed-out batches" in text
        assert "failed requests" in text
        assert "degraded decisions" in text
        assert "fault-injected executions" in text

    def test_absent_on_fault_free_dumps(self):
        assert "resilience" not in render_dashboard(populated_registry())

    def test_retry_event_round_trips(self, tmp_path):
        from repro.telemetry.events import RetryEvent, event_from_record

        reg = MetricsRegistry()
        event = RetryEvent(memory_mb=512.0, batches=10, retries=4, timeouts=1,
                           failed_batches=1, failed_requests=8,
                           throttle_retries=2)
        reg.record_event(event)
        path = tmp_path / "retry.jsonl"
        write_jsonl(reg, path)
        rebuilt = [event_from_record(r) for r in read_jsonl(path)
                   if r["type"] == "event"]
        assert rebuilt == [event]

    def test_segment_degraded_sum_without_counter(self):
        reg = MetricsRegistry()
        reg.record_event(SegmentEvent(
            segment=1, n_requests=900, p95=0.09, cost_per_request=2e-6,
            vcr=3.0, mean_decision_time=0.002, slo=0.1, controller="deepbat",
            retries=5, failed_requests=2, degraded_decisions=3,
        ))
        reg.counter("fault.attempts").inc(10)  # opens the section
        text = render_dashboard(reg)
        assert "degraded decisions" in text
