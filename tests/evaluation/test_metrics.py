"""Tests for VCR (Eq. 11), MAPE, CDF utilities, and the goodput/SLO
metrics (PR 9) — including the shed/NaN contract: NaN latency or TTFT is
always a *miss*, never an absence, while NaN TPOT (a one-token request
with no decode pace) passes the TPOT SLO freely."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    cdf_percentile_mape,
    empirical_cdf,
    generation_goodput,
    goodput,
    mape,
    nan_percentile,
    slo_attainment,
    vcr,
)


class TestVcr:
    def test_zero_when_all_meet_slo(self):
        lat = np.full(1000, 0.05)
        assert vcr(lat, slo=0.1) == 0.0

    def test_hundred_when_all_violate(self):
        lat = np.full(1000, 0.5)
        assert vcr(lat, slo=0.1) == 100.0

    def test_mixed_chunks(self):
        good = np.full(256, 0.01)
        bad = np.full(256, 0.2)
        lat = np.concatenate([good, bad, good, bad])
        assert vcr(lat, slo=0.1, sequence_length=256) == 50.0

    def test_short_series_single_chunk(self):
        assert vcr(np.full(10, 0.2), slo=0.1, sequence_length=256) == 100.0

    def test_empty_series(self):
        assert vcr(np.empty(0), slo=0.1) == 0.0

    def test_percentile_semantics(self):
        # 10% of requests slow: p95 of the chunk exceeds SLO -> violation.
        lat = np.full(256, 0.01)
        lat[:26] = 0.5
        assert vcr(lat, slo=0.1, sequence_length=256, percentile=95.0) == 100.0
        # ...but only 1% slow: p95 is fine.
        lat = np.full(256, 0.01)
        lat[:2] = 0.5
        assert vcr(lat, slo=0.1, sequence_length=256, percentile=95.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            vcr(np.ones(10), slo=0.0)
        with pytest.raises(ValueError):
            vcr(np.ones(10), slo=0.1, sequence_length=0)

    @given(st.floats(0.01, 1.0), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_bounded_0_100(self, slo, n):
        rng = np.random.default_rng(n)
        lat = rng.exponential(0.1, size=n * 10)
        v = vcr(lat, slo=slo, sequence_length=10)
        assert 0.0 <= v <= 100.0


class TestVcrTailRemainder:
    """Regression: vcr() used to reshape to (n // L, L) and silently drop
    the tail remainder — 511 latencies judged only their first 256."""

    def test_remainder_zero_unchanged(self):
        lat = np.concatenate([np.full(256, 0.01), np.full(256, 0.2)])
        assert vcr(lat, slo=0.1, sequence_length=256) == 50.0

    def test_remainder_one_violating(self):
        # 256 good + 1 slow request: the tail is its own chunk and violates.
        lat = np.concatenate([np.full(256, 0.01), [0.5]])
        assert vcr(lat, slo=0.1, sequence_length=256) == 50.0

    def test_remainder_one_meeting(self):
        lat = np.concatenate([np.full(256, 0.01), [0.02]])
        assert vcr(lat, slo=0.1, sequence_length=256) == 0.0

    def test_remainder_l_minus_1(self):
        # The ISSUE's example: 511 latencies, a fully violating tail of
        # 255 — the old code judged only the first 256 (all good) -> 0 %.
        lat = np.concatenate([np.full(256, 0.01), np.full(255, 0.5)])
        assert vcr(lat, slo=0.1, sequence_length=256) == 50.0

    def test_tail_percentile_over_own_length(self):
        # 20-sample tail with 10% slow: its p95 exceeds the SLO.
        lat = np.concatenate([np.full(256, 0.01),
                              np.full(18, 0.01), np.full(2, 0.5)])
        assert vcr(lat, slo=0.1, sequence_length=256) == 50.0

    def test_all_sizes_judge_every_request_block(self):
        # No silent drops: a violating final request always registers for
        # any series length.
        for n in range(1, 40):
            lat = np.full(n, 0.01)
            lat[-1] = 10.0  # drags every chunk's p95 over the SLO
            assert vcr(lat, slo=0.1, sequence_length=10) > 0.0


class TestSloAttainment:
    def test_basic_fraction(self):
        lat = np.array([0.01, 0.05, 0.2, 0.3])
        assert slo_attainment(lat, slo=0.1) == 0.5

    def test_nan_is_a_miss_not_an_absence(self):
        """The shed contract: dropping requests can never raise attainment."""
        lat = np.array([0.01, np.nan, 0.01, np.nan])
        assert slo_attainment(lat, slo=0.1) == 0.5

    def test_all_shed_attains_zero(self):
        assert slo_attainment(np.full(8, np.nan), slo=0.1) == 0.0

    def test_empty_log_is_nan_not_zero(self):
        # "No requests to judge" must stay distinguishable from "every
        # request missed".
        assert np.isnan(slo_attainment(np.empty(0), slo=0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            slo_attainment(np.ones(3), slo=0.0)


class TestGoodput:
    def test_counts_good_requests_per_second(self):
        lat = np.array([0.01, 0.05, 0.2, 0.3])
        assert goodput(lat, slo=0.1, duration=2.0) == 1.0

    def test_nan_is_a_miss(self):
        lat = np.array([0.01, np.nan, np.nan, np.nan])
        assert goodput(lat, slo=0.1, duration=1.0) == 1.0

    def test_empty_log_is_zero(self):
        # Zero good requests per second is a statement, not an error.
        assert goodput(np.empty(0), slo=0.1, duration=5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            goodput(np.ones(3), slo=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            goodput(np.ones(3), slo=0.1, duration=0.0)


class TestGenerationGoodput:
    def test_ttft_only(self):
        ttft = np.array([0.01, 0.2, 0.03, np.nan])
        assert generation_goodput(ttft, ttft_slo=0.05, duration=2.0) == 1.0

    def test_tpot_slo_filters_slow_decoders(self):
        ttft = np.array([0.01, 0.01, 0.01])
        tpot = np.array([0.001, 0.5, 0.002])
        assert generation_goodput(ttft, ttft_slo=0.05, duration=1.0,
                                  tpot=tpot, tpot_slo=0.01) == 2.0

    def test_nan_tpot_passes_freely(self):
        """One-token requests have no decode pace — NaN TPOT must not be
        charged as a TPOT miss when the TTFT was met."""
        ttft = np.array([0.01, 0.01])
        tpot = np.array([np.nan, 0.5])
        assert generation_goodput(ttft, ttft_slo=0.05, duration=1.0,
                                  tpot=tpot, tpot_slo=0.01) == 1.0

    def test_nan_ttft_is_still_a_miss(self):
        ttft = np.array([np.nan, np.nan])
        tpot = np.array([np.nan, np.nan])
        assert generation_goodput(ttft, ttft_slo=0.05, duration=1.0,
                                  tpot=tpot, tpot_slo=0.01) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            generation_goodput(np.ones(2), ttft_slo=0.0, duration=1.0)
        with pytest.raises(ValueError):
            generation_goodput(np.ones(2), ttft_slo=0.1, duration=0.0)
        with pytest.raises(ValueError):
            generation_goodput(np.ones(2), ttft_slo=0.1, duration=1.0,
                               tpot=np.ones(2), tpot_slo=0.0)
        with pytest.raises(ValueError, match="without tpot values"):
            generation_goodput(np.ones(2), ttft_slo=0.1, duration=1.0,
                               tpot_slo=0.01)


class TestNanPercentile:
    def test_excludes_nan(self):
        vals = np.array([1.0, 2.0, 3.0, np.nan])
        assert nan_percentile(vals, 50.0) == 2.0

    def test_matches_plain_percentile_without_nan(self):
        rng = np.random.default_rng(2)
        vals = rng.exponential(size=500)
        assert nan_percentile(vals, 95.0) == pytest.approx(
            float(np.percentile(vals, 95.0))
        )

    def test_all_nan_and_empty_are_nan(self):
        assert np.isnan(nan_percentile(np.full(4, np.nan), 50.0))
        assert np.isnan(nan_percentile(np.empty(0), 50.0))


class TestMape:
    def test_exact_value(self):
        assert mape(np.array([1.1, 0.9]), np.array([1.0, 1.0])) == pytest.approx(10.0)

    def test_zero_for_perfect(self):
        x = np.array([0.5, 0.2])
        assert mape(x, x) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mape(np.ones(2), np.ones(3))


class TestEmpiricalCdf:
    def test_monotone_from_zero_to_one(self):
        rng = np.random.default_rng(0)
        grid, cdf = empirical_cdf(rng.exponential(size=500))
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_known_values(self):
        grid, cdf = empirical_cdf(np.array([1.0, 2.0, 3.0, 4.0]),
                                  grid=np.array([0.5, 2.5, 5.0]))
        np.testing.assert_allclose(cdf, [0.0, 0.5, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.empty(0))


class TestCdfPercentileMape:
    def test_zero_when_predictions_are_true_percentiles(self):
        rng = np.random.default_rng(1)
        obs = rng.exponential(size=10_000)
        pcts = (50.0, 90.0, 95.0)
        pred = np.percentile(obs, pcts)
        assert cdf_percentile_mape(pred, obs, pcts) == pytest.approx(0.0, abs=1e-9)

    def test_positive_when_biased(self):
        obs = np.linspace(0, 1, 1000)
        pred = np.percentile(obs, [50.0, 95.0]) * 1.2
        assert cdf_percentile_mape(pred, obs, (50.0, 95.0)) == pytest.approx(20.0, rel=0.01)
