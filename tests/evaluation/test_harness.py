"""Tests for the closed-loop harness and the oracle baseline."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.arrival.traces import azure_like
from repro.batching.config import BatchConfig, config_grid
from repro.core.types import Decision
from repro.evaluation.harness import (
    ExperimentLog,
    run_experiment,
    run_oracle,
    run_segment,
)
from repro.serverless.platform import ServerlessPlatform

TRACE = azure_like(seed=0, n_segments=4, segment_duration=20.0, base_rate=80.0)
PLAT = ServerlessPlatform()
GRID = config_grid(memories=(1024.0, 1792.0), batch_sizes=(1, 8), timeouts=(0.0, 0.05))


@dataclass
class FixedChooser:
    """Always returns the same configuration (test double)."""

    config: BatchConfig
    decision_time: float = 0.001
    calls: int = 0

    def choose(self, interarrival_history, slo):
        self.calls += 1
        return Decision(config=self.config, decision_time=self.decision_time)


class TestRunSegment:
    def test_serves_every_request(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        out = run_segment(TRACE, 1, chooser, slo=0.1, platform=PLAT)
        assert out.n_requests == TRACE.segment(1).size
        assert out.latencies.size == out.n_requests
        assert out.total_cost > 0

    def test_single_decision_without_updates(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        out = run_segment(TRACE, 1, chooser, slo=0.1, platform=PLAT)
        assert chooser.calls == 1
        assert len(out.configs) == 1

    def test_update_every_triggers_reoptimization(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        n = TRACE.segment(1).size
        out = run_segment(TRACE, 1, chooser, slo=0.1, platform=PLAT, update_every=n // 4)
        assert chooser.calls >= 4
        assert len(out.configs) == chooser.calls
        assert out.latencies.size == n

    def test_segment_zero_rejected(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        with pytest.raises(ValueError):
            run_segment(TRACE, 0, chooser, slo=0.1, platform=PLAT)

    def test_percentile_and_vcr_accessors(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        out = run_segment(TRACE, 1, chooser, slo=0.1, platform=PLAT)
        assert out.p(50) <= out.p(95)
        assert 0.0 <= out.vcr(0.1) <= 100.0
        assert out.cost_per_request > 0


class TestRunExperiment:
    def test_logs_all_segments(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        log = run_experiment(TRACE, chooser, slo=0.1, platform=PLAT, name="fixed")
        assert len(log.outcomes) == TRACE.n_segments - 1
        assert log.vcr_series().shape == (3,)
        assert log.cost_series().shape == (3,)
        assert log.latency_series().shape == (3,)
        assert log.all_latencies().size == sum(o.n_requests for o in log.outcomes)
        assert log.mean_decision_time == pytest.approx(0.001)

    def test_segment_range(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        log = run_experiment(TRACE, chooser, slo=0.1, platform=PLAT, segments=range(2, 4))
        assert [o.segment for o in log.outcomes] == [2, 3]


class TestResolveSequenceLength:
    """Regression: ``window_length = 0`` used to be falsy and silently fell
    back to the Eq. 11 default instead of being rejected."""

    def test_explicit_argument_wins(self):
        from repro.evaluation.harness import _resolve_sequence_length

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        chooser.window_length = 64
        assert _resolve_sequence_length(chooser, 32) == 32

    def test_chooser_window_used(self):
        from repro.evaluation.harness import _resolve_sequence_length

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        chooser.window_length = 64
        assert _resolve_sequence_length(chooser, None) == 64

    def test_no_window_falls_back_to_default(self):
        from repro.evaluation.harness import (
            DEFAULT_SEQUENCE_LENGTH,
            _resolve_sequence_length,
        )

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        assert _resolve_sequence_length(chooser, None) == DEFAULT_SEQUENCE_LENGTH

    def test_zero_window_rejected(self):
        from repro.evaluation.harness import _resolve_sequence_length

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        chooser.window_length = 0
        with pytest.raises(ValueError, match="window_length"):
            _resolve_sequence_length(chooser, None)

    def test_negative_window_rejected(self):
        from repro.evaluation.harness import _resolve_sequence_length

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        chooser.window_length = -5
        with pytest.raises(ValueError, match="window_length"):
            _resolve_sequence_length(chooser, None)

    def test_zero_explicit_rejected(self):
        from repro.evaluation.harness import _resolve_sequence_length

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        with pytest.raises(ValueError, match="sequence_length"):
            _resolve_sequence_length(chooser, 0)

    def test_run_segment_surfaces_zero_window(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        chooser.window_length = 0
        with pytest.raises(ValueError, match="window_length"):
            run_segment(TRACE, 1, chooser, slo=0.1, platform=PLAT)


@pytest.mark.faults
class TestSegmentResilience:
    """run_segment records retries / failed requests / degraded decisions."""

    def test_fault_free_run_records_zeros(self):
        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        out = run_segment(TRACE, 1, chooser, slo=0.1, platform=PLAT)
        assert out.n_retries == 0
        assert out.n_failed == 0
        assert out.degraded_decisions == 0

    def test_faulty_platform_records_retries(self):
        from repro.serverless.faults import FaultModel

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        plat = ServerlessPlatform(seed=0, faults=FaultModel(failure_rate=0.3))
        out = run_segment(TRACE, 1, chooser, slo=0.1, platform=plat)
        assert out.n_retries > 0
        assert out.n_failed >= 0

    def test_degraded_decisions_counted(self):
        @dataclass
        class DegradedChooser:
            config: BatchConfig
            calls: int = 0

            def choose(self, interarrival_history, slo):
                self.calls += 1
                diagnostics = (
                    {"degraded": True, "reason": "test"}
                    if self.calls > 1 else None
                )
                return Decision(config=self.config, decision_time=0.0,
                                diagnostics=diagnostics)

        chooser = DegradedChooser(BatchConfig(1024.0, 8, 0.05))
        n = TRACE.segment(1).size
        out = run_segment(TRACE, 1, chooser, slo=0.1, platform=PLAT,
                          update_every=n // 4)
        assert chooser.calls >= 4
        assert out.degraded_decisions == chooser.calls - 1

    def test_experiment_log_totals(self):
        from repro.serverless.faults import FaultModel

        chooser = FixedChooser(BatchConfig(1024.0, 8, 0.05))
        plat = ServerlessPlatform(seed=0, faults=FaultModel(failure_rate=0.3))
        log = run_experiment(TRACE, chooser, slo=0.1, platform=plat)
        assert log.total_retries == sum(o.n_retries for o in log.outcomes)
        assert log.total_failed == sum(o.n_failed for o in log.outcomes)
        assert log.total_degraded_decisions == 0
        assert log.total_retries > 0


class TestOracle:
    def test_oracle_meets_slo_when_feasible(self):
        log = run_oracle(TRACE, GRID, slo=0.1, platform=PLAT)
        # The oracle optimizes on the exact future; its p95 per segment
        # should be at or below the SLO (up to batch-boundary effects).
        for out in log.outcomes:
            assert out.p(95) <= 0.1 * 1.05

    def test_oracle_cheaper_than_no_batching(self):
        log = run_oracle(TRACE, GRID, slo=0.1, platform=PLAT)
        no_batch = FixedChooser(BatchConfig(1792.0, 1, 0.0))
        base = run_experiment(TRACE, no_batch, slo=0.1, platform=PLAT)
        assert log.total_cost < base.total_cost

    def test_oracle_requires_future(self):
        from repro.evaluation.harness import OracleChooser

        oracle = OracleChooser(GRID, PLAT)
        with pytest.raises(RuntimeError):
            oracle.choose(np.array([0.01]), slo=0.1)
