"""Tests for the multi-controller comparison orchestration."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.arrival.traces import azure_like
from repro.batching.config import BatchConfig, config_grid
from repro.evaluation.comparison import compare_controllers
from repro.serverless.platform import ServerlessPlatform

TRACE = azure_like(seed=5, n_segments=4, segment_duration=15.0, base_rate=80.0)
PLAT = ServerlessPlatform()
GRID = config_grid(memories=(1024.0, 1792.0), batch_sizes=(1, 8), timeouts=(0.0, 0.05))


@dataclass
class Fixed:
    config: BatchConfig

    def choose(self, hist, slo):
        fixed = self

        @dataclass(frozen=True)
        class _D:
            config: BatchConfig = fixed.config
            decision_time: float = 0.001

        return _D()


class TestCompareControllers:
    def test_report_covers_all_controllers(self):
        report = compare_controllers(
            TRACE,
            {
                "safe": (Fixed(BatchConfig(1792.0, 1, 0.0)), None),
                "cheap": (Fixed(BatchConfig(1024.0, 8, 0.05)), None),
            },
            slo=0.1, platform=PLAT,
        )
        assert set(report.names) == {"safe", "cheap"}
        rendered = report.render()
        assert "mean VCR %" in rendered and "safe" in rendered

    def test_oracle_included(self):
        report = compare_controllers(
            TRACE,
            {"safe": (Fixed(BatchConfig(1792.0, 1, 0.0)), None)},
            slo=0.1, platform=PLAT,
            include_oracle=True, oracle_configs=GRID,
        )
        assert "ground-truth" in report.names
        # Oracle must be at least as cheap as the no-batching controller.
        gt_cost = np.nanmean(report.logs["ground-truth"].cost_series())
        safe_cost = np.nanmean(report.logs["safe"].cost_series())
        assert gt_cost <= safe_cost

    def test_oracle_requires_configs(self):
        with pytest.raises(ValueError):
            compare_controllers(
                TRACE, {"x": (Fixed(BatchConfig(1024.0, 1, 0.0)), None)},
                slo=0.1, platform=PLAT, include_oracle=True,
            )

    def test_best_by_cost_meeting_slo(self):
        report = compare_controllers(
            TRACE,
            {
                "safe": (Fixed(BatchConfig(1792.0, 1, 0.0)), None),
                "risky": (Fixed(BatchConfig(1024.0, 8, 0.2)), None),
            },
            slo=0.1, platform=PLAT,
        )
        best = report.best_by_cost_meeting_slo(vcr_threshold=1.0)
        assert best in ("safe", "risky", None)
        # With an absurd threshold everything qualifies -> cheapest wins.
        anything = report.best_by_cost_meeting_slo(vcr_threshold=101.0)
        costs = {n: np.nanmean(l.cost_series()) for n, l in report.logs.items()}
        assert anything == min(costs, key=costs.get)
