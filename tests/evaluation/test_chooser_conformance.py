"""Conformance tests: every shipped chooser honours the Decision API.

Parametrized over all four choosers (DeepBAT, BATCH, reactive, oracle):
each must return a (subclass of) :class:`repro.core.types.Decision` from
``choose(history, slo)`` with a non-negative ``decision_time``, and must
round-trip through :func:`run_segment` without any per-chooser special
cases in the harness.
"""

import dataclasses

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.arrival.stats import interarrivals
from repro.arrival.traces import azure_like
from repro.baseline.controller import BATCHController
from repro.baseline.reactive import ReactiveController
from repro.batching.config import config_grid
from repro.core.controller import DeepBATController
from repro.core.dataset import generate_dataset
from repro.core.surrogate import DeepBATSurrogate
from repro.core.training import TrainConfig, train_surrogate
from repro.core.types import Decision
from repro.evaluation.harness import OracleChooser, run_segment
from repro.serverless.platform import ServerlessPlatform

SLO = 0.1
TRACE = azure_like(seed=0, n_segments=3, segment_duration=20.0, base_rate=80.0)
PLAT = ServerlessPlatform()
GRID = config_grid(memories=(1024.0, 1792.0), batch_sizes=(1, 8), timeouts=(0.0, 0.05))
CHOOSERS = ["deepbat", "batch", "reactive", "oracle"]


@pytest.fixture(scope="module")
def trained_tiny():
    hist = np.diff(poisson_map(200.0).sample(duration=60.0, seed=0))
    ds = generate_dataset(hist, n_samples=80, seq_len=16, configs=GRID, seed=0)
    model = DeepBATSurrogate(seq_len=16, d_model=8, num_heads=2, ff_hidden=16,
                             num_layers=1, seed=0)
    return train_surrogate(ds, model=model,
                           config=TrainConfig(epochs=6, patience=None, seed=0))


@pytest.fixture(scope="module")
def choosers(trained_tiny):
    oracle = OracleChooser(GRID, PLAT, percentile=95.0)
    oracle.set_future(TRACE.segment(1, relative=False))
    return {
        "deepbat": DeepBATController(trained_tiny, configs=GRID),
        "batch": BATCHController(configs=GRID, profile=PLAT.profile,
                                 pricing=PLAT.pricing),
        "reactive": ReactiveController(configs=GRID, platform=PLAT, slo=SLO,
                                       rate_bands=(50.0, 100.0),
                                       profile_duration=5.0),
        "oracle": oracle,
    }


@pytest.mark.parametrize("name", CHOOSERS)
class TestChooserConformance:
    def test_choose_returns_decision(self, choosers, name):
        chooser = choosers[name]
        hist = interarrivals(TRACE.segment(0, relative=False))
        decision = chooser.choose(hist, SLO)
        assert isinstance(decision, Decision)
        assert decision.config in GRID
        assert isinstance(decision.decision_time, float)
        assert decision.decision_time >= 0.0

    def test_decision_is_frozen(self, choosers, name):
        chooser = choosers[name]
        hist = interarrivals(TRACE.segment(0, relative=False))
        decision = chooser.choose(hist, SLO)
        with pytest.raises(dataclasses.FrozenInstanceError):
            decision.decision_time = 0.0

    def test_round_trips_through_run_segment(self, choosers, name):
        chooser = choosers[name]
        out = run_segment(TRACE, 1, chooser, slo=SLO, platform=PLAT)
        assert out.n_requests == TRACE.segment(1).size
        assert out.latencies.size == out.n_requests
        assert len(out.decision_times) == 1
        assert out.decision_times[0] >= 0.0
        assert out.configs[0] in GRID


def test_oracle_requires_future():
    oracle = OracleChooser(GRID, PLAT)
    with pytest.raises(RuntimeError):
        oracle.choose(np.array([0.01]), SLO)
