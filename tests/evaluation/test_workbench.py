"""Tests for the cached experiment workbench (tiny settings, tmp cache)."""

import numpy as np
import pytest

from repro.evaluation.workbench import Workbench, WorkbenchSettings

TINY = WorkbenchSettings(
    seq_len=16,
    n_train_samples=60,
    epochs=2,
    batch_size=16,
    patience=2,
    n_finetune_samples=40,
    finetune_epochs=1,
    n_segments=3,
    segment_duration=10.0,
    train_segments=2,
    memories=(512.0, 1792.0),
    batch_sizes=(1, 8),
    timeouts=(0.0, 0.05),
)


@pytest.fixture()
def bench(tmp_path):
    return Workbench(settings=TINY, cache_dir=tmp_path)


class TestWorkbench:
    def test_traces_cached_in_memory(self, bench):
        a = bench.trace("azure")
        assert bench.trace("azure") is a
        assert a.n_segments == 3

    def test_grid_respects_settings(self, bench):
        mems = {c.memory_mb for c in bench.grid}
        assert mems == {512.0, 1792.0}

    def test_base_model_trains_and_caches_to_disk(self, bench, tmp_path):
        model = bench.base_model()
        files = list(bench.cache_dir.glob("base.npz"))
        assert len(files) == 1
        # A new workbench over the same cache loads rather than retrains.
        other = Workbench(settings=TINY, cache_dir=tmp_path)
        loaded = other.base_model()
        seq = np.abs(np.random.default_rng(0).normal(size=(2, 16))) + 0.01
        feats = np.array([[512.0, 8, 0.05]] * 2)
        np.testing.assert_allclose(
            model.predict(seq, feats), loaded.predict(seq, feats), atol=1e-12
        )

    def test_finetuned_model_distinct_from_base(self, bench):
        base = bench.base_model()
        tuned = bench.finetuned_model("alibaba")
        seq = np.abs(np.random.default_rng(1).normal(size=(2, 16))) + 0.01
        feats = np.array([[512.0, 8, 0.05]] * 2)
        assert not np.allclose(base.predict(seq, feats), tuned.predict(seq, feats))
        # Fine-tuning must not mutate the cached base model.
        again = bench.base_model()
        np.testing.assert_allclose(
            base.predict(seq, feats), again.predict(seq, feats)
        )

    def test_finetune_only_for_ood_traces(self, bench):
        with pytest.raises(ValueError):
            bench.finetuned_model("azure")

    def test_fingerprint_distinguishes_settings(self):
        a = WorkbenchSettings()
        b = WorkbenchSettings(seq_len=128)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == WorkbenchSettings().fingerprint()

    def test_training_history_split(self, bench):
        hist = bench.azure_training_history()
        assert hist.size > 50
        assert np.all(hist >= 0)
