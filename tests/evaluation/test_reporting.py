"""Tests for the ASCII reporting helpers."""

import numpy as np

from repro.evaluation.reporting import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4
        # All rows share the same width.
        assert len(set(len(l) for l in lines)) <= 2

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789], [1.2e-7], [321654.9]])
        assert "1.235" in out
        assert "1.200e-07" in out
        assert "3.217e+05" in out or "321655" in out

    def test_mixed_types(self):
        out = format_table(["a", "b"], [["text", 3], [None, 0.5]])
        assert "text" in out and "None" in out


class TestFormatSeries:
    def test_label_and_values(self):
        out = format_series("rates", np.array([1.0, 2.5, 3.0]))
        assert out.startswith("rates: ")
        assert "2.5" in out

    def test_custom_format(self):
        out = format_series("x", np.array([1.23456]), fmt="{:.1f}")
        assert out == "x: 1.2"

    def test_2d_flattened(self):
        out = format_series("m", np.ones((2, 2)), fmt="{:.0f}")
        assert out == "m: 1 1 1 1"
