"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.evaluation.plots import bar_chart, histogram, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline(np.arange(10))) == 10

    def test_monotone_levels(self):
        s = sparkline(np.array([0.0, 0.5, 1.0]))
        assert s[0] < s[1] < s[2]

    def test_constant_series(self):
        assert sparkline(np.ones(5)) == "▁" * 5

    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_nan_renders_space(self):
        s = sparkline(np.array([0.0, np.nan, 1.0]))
        assert s[1] == " "

    def test_pinned_scale(self):
        s = sparkline(np.array([5.0]), lo=0.0, hi=10.0)
        assert s == "▄" or s == "▅"  # mid-scale


class TestBarChart:
    def test_rows_and_alignment(self):
        out = bar_chart(["a", "bb"], np.array([1.0, 2.0]))
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        # Larger value -> longer bar.
        assert lines[1].count("█") > lines[0].count("█")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([1.0, 2.0]))

    def test_zero_values(self):
        out = bar_chart(["x"], np.array([0.0]))
        assert "█" not in out


class TestHistogram:
    def test_bin_count(self):
        out = histogram(np.random.default_rng(0).normal(size=500), bins=7)
        assert len(out.splitlines()) == 7

    def test_counts_sum(self):
        samples = np.arange(100.0)
        out = histogram(samples, bins=4)
        totals = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(totals) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram(np.array([]))
        with pytest.raises(ValueError):
            histogram(np.ones(3), bins=0)
