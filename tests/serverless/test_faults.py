"""Unit tests of the fault-injection layer (`repro.serverless.faults`)."""

import numpy as np
import pytest

from repro.serverless.faults import (
    DEFAULT_RETRY_POLICY,
    FaultModel,
    RetryPolicy,
    inject_faults,
    rejecting_starts,
)
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.pricing import LambdaPricing
from repro.telemetry.metrics import MetricsRegistry, use_registry

pytestmark = pytest.mark.faults

PRICING = LambdaPricing()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.1,
                             multiplier=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff(0, rng) == pytest.approx(0.1)
        assert policy.backoff(1, rng) == pytest.approx(0.2)
        assert policy.backoff(2, rng) == pytest.approx(0.4)

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(max_attempts=5, base_backoff_s=0.1,
                             multiplier=1.0, jitter=0.5)
        a = policy.backoff_matrix(100, np.random.default_rng(7))
        b = policy.backoff_matrix(100, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
        assert np.all(a >= 0.1 - 1e-12) and np.all(a <= 0.15 + 1e-12)

    def test_single_attempt_has_no_backoffs(self):
        m = RetryPolicy(max_attempts=1).backoff_matrix(8, np.random.default_rng(0))
        assert m.shape == (0, 8)


class TestBackoffBounds:
    """PR 5 satellite: per-attempt jitter envelopes and fixed draw counts."""

    def test_each_attempt_stays_inside_its_envelope(self):
        # Retry k's delay must land in [base*mult^k, base*mult^k*(1+jitter)]
        # — per attempt index, not just globally.
        policy = RetryPolicy(max_attempts=5, base_backoff_s=0.05,
                             multiplier=2.0, jitter=0.1)
        m = policy.backoff_matrix(500, np.random.default_rng(3))
        assert m.shape == (4, 500)
        for k in range(4):
            lo = 0.05 * 2.0**k
            hi = lo * 1.1
            assert np.all(m[k] >= lo - 1e-15)
            assert np.all(m[k] <= hi + 1e-15)

    def test_scalar_backoff_respects_the_same_envelope(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.1,
                             multiplier=3.0, jitter=0.25)
        rng = np.random.default_rng(11)
        for k in range(3):
            lo = 0.1 * 3.0**k
            for _ in range(200):
                delay = policy.backoff(k, rng)
                assert lo - 1e-15 <= delay <= lo * 1.25 + 1e-15

    def test_draw_count_is_fixed_when_retries_exhaust(self):
        # backoff_matrix must consume exactly (max_attempts-1)*n uniforms
        # regardless of which retries actually happen, so everything drawn
        # after it is independent of fault outcomes.
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.05)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        policy.backoff_matrix(17, rng_a)
        rng_b.random((policy.max_attempts - 1, 17))
        np.testing.assert_array_equal(rng_a.random(8), rng_b.random(8))

    def test_zero_jitter_is_exactly_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.05,
                             multiplier=2.0, jitter=0.0)
        m = policy.backoff_matrix(3, np.random.default_rng(0))
        np.testing.assert_array_equal(
            m, np.array([[0.05] * 3, [0.1] * 3, [0.2] * 3]))


class TestFaultModel:
    def test_default_is_disabled(self):
        assert not FaultModel().enabled

    def test_any_knob_enables(self):
        assert FaultModel(failure_rate=0.1).enabled
        assert FaultModel(timeout_s=1.0).enabled
        assert FaultModel(throttle_rejection=True).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultModel(failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(timeout_s=0.0)


class TestInjectFaults:
    def test_no_faults_no_changes(self):
        d = np.array([0.1, 0.2, 0.3])
        out = inject_faults(d, 1024.0, PRICING, FaultModel(failure_rate=0.0),
                            DEFAULT_RETRY_POLICY, np.random.default_rng(0))
        np.testing.assert_array_equal(out.attempts, [1, 1, 1])
        assert not out.failed.any()
        np.testing.assert_allclose(out.fault_delays, 0.0)
        np.testing.assert_allclose(
            out.costs, PRICING.invocation_cost(1024.0, d)
        )

    def test_deterministic_given_seed(self):
        d = np.full(200, 0.1)
        model = FaultModel(failure_rate=0.3)
        a = inject_faults(d, 1024.0, PRICING, model, DEFAULT_RETRY_POLICY,
                          np.random.default_rng(3))
        b = inject_faults(d, 1024.0, PRICING, model, DEFAULT_RETRY_POLICY,
                          np.random.default_rng(3))
        np.testing.assert_array_equal(a.attempts, b.attempts)
        np.testing.assert_array_equal(a.failed, b.failed)
        np.testing.assert_array_equal(a.fault_delays, b.fault_delays)
        np.testing.assert_array_equal(a.costs, b.costs)

    def test_retries_add_latency_and_cost(self):
        d = np.full(500, 0.1)
        model = FaultModel(failure_rate=0.4)
        out = inject_faults(d, 1024.0, PRICING, model, DEFAULT_RETRY_POLICY,
                            np.random.default_rng(1))
        retried = out.attempts > 1
        assert retried.any()
        clean_cost = float(np.asarray(PRICING.invocation_cost(1024.0, 0.1)))
        # Every retried batch paid at least one extra run + one backoff.
        assert np.all(out.fault_delays[retried] >= 0.1 + 0.05 - 1e-12)
        assert np.all(out.costs[retried] >= 2 * clean_cost - 1e-15)
        # Clean batches are untouched.
        np.testing.assert_allclose(out.fault_delays[~retried], 0.0)
        np.testing.assert_allclose(out.costs[~retried], clean_cost)

    def test_timeout_is_deterministic_in_duration(self):
        # Durations 0.05 and 0.3 against a 0.1 s limit: only the long one
        # times out — every attempt, so it exhausts retries and fails.
        d = np.array([0.05, 0.3])
        model = FaultModel(timeout_s=0.1)
        retry = RetryPolicy(max_attempts=3, base_backoff_s=0.01, jitter=0.0)
        out = inject_faults(d, 1024.0, PRICING, model, retry,
                            np.random.default_rng(0))
        np.testing.assert_array_equal(out.timed_out, [False, True])
        np.testing.assert_array_equal(out.attempts, [1, 3])
        np.testing.assert_array_equal(out.failed, [False, True])
        # Timed-out attempts run (and bill) the 0.1 s cut, not the full 0.3.
        # extra = 3 runs of 0.1 + backoffs (0.01 + 0.02) - clean 0.3.
        assert out.fault_delays[1] == pytest.approx(0.03)
        cut = float(np.asarray(PRICING.invocation_cost(1024.0, 0.1)))
        assert out.costs[1] == pytest.approx(3 * cut)

    def test_failed_batches_exhaust_attempts(self):
        d = np.full(2000, 0.1)
        model = FaultModel(failure_rate=0.5)
        out = inject_faults(d, 1024.0, PRICING, model,
                            RetryPolicy(max_attempts=2),
                            np.random.default_rng(5))
        assert out.failed.any()
        np.testing.assert_array_equal(out.attempts[out.failed], 2)
        # ~25% of batches fail both attempts at rate 0.5.
        assert 0.15 < out.failed.mean() < 0.35

    def test_rng_consumption_is_outcome_independent(self):
        """The fault layer draws a fixed number of samples, so downstream
        consumers of the same generator see the same stream regardless of
        fault outcomes."""
        d = np.full(50, 0.1)
        for rate in (0.01, 0.9):
            rng = np.random.default_rng(9)
            inject_faults(d, 1024.0, PRICING, FaultModel(failure_rate=rate),
                          DEFAULT_RETRY_POLICY, rng)
            after = rng.random()
            rng2 = np.random.default_rng(9)
            rng2.random((3, 50))  # failure table
            rng2.random((2, 50))  # jitter matrix
            assert after == rng2.random()


class TestRetryBudget:
    """PR 10 satellite: ``RetryPolicy.max_total_delay_s`` budgets the
    cumulative backoff without touching generator consumption."""

    def test_validation(self):
        with pytest.raises(ValueError, match="max_total_delay_s"):
            RetryPolicy(max_total_delay_s=0.0)
        with pytest.raises(ValueError, match="max_total_delay_s"):
            RetryPolicy(max_total_delay_s=-1.0)
        RetryPolicy(max_total_delay_s=None)  # unset stays legal

    def test_unset_budget_is_bit_identical_to_the_legacy_policy(self):
        d = np.full(300, 0.1)
        model = FaultModel(failure_rate=0.4)
        legacy = RetryPolicy(max_attempts=4, base_backoff_s=0.05)
        explicit = RetryPolicy(max_attempts=4, base_backoff_s=0.05,
                               max_total_delay_s=None)
        a = inject_faults(d, 1024.0, PRICING, model, legacy,
                          np.random.default_rng(2))
        b = inject_faults(d, 1024.0, PRICING, model, explicit,
                          np.random.default_rng(2))
        np.testing.assert_array_equal(a.attempts, b.attempts)
        np.testing.assert_array_equal(a.failed, b.failed)
        np.testing.assert_array_equal(a.fault_delays, b.fault_delays)
        np.testing.assert_array_equal(a.costs, b.costs)

    def test_a_roomy_budget_changes_nothing(self):
        d = np.full(300, 0.1)
        model = FaultModel(failure_rate=0.4)
        base = RetryPolicy(max_attempts=4, base_backoff_s=0.05)
        roomy = RetryPolicy(max_attempts=4, base_backoff_s=0.05,
                            max_total_delay_s=1e9)
        a = inject_faults(d, 1024.0, PRICING, model, base,
                          np.random.default_rng(2))
        b = inject_faults(d, 1024.0, PRICING, model, roomy,
                          np.random.default_rng(2))
        np.testing.assert_array_equal(a.attempts, b.attempts)
        np.testing.assert_array_equal(a.failed, b.failed)

    def test_tight_budget_caps_attempts_and_fails_the_rest(self):
        # jitter=0 makes the schedule exact: backoffs 0.1, 0.2, 0.4.
        # A 0.15 s budget affords only the first retry, so every batch is
        # capped at two attempts; needing a third is a failure.
        d = np.full(2000, 0.01)
        model = FaultModel(failure_rate=0.6)
        tight = RetryPolicy(max_attempts=4, base_backoff_s=0.1,
                            jitter=0.0, max_total_delay_s=0.15)
        free = RetryPolicy(max_attempts=4, base_backoff_s=0.1, jitter=0.0)
        a = inject_faults(d, 1024.0, PRICING, model, tight,
                          np.random.default_rng(7))
        b = inject_faults(d, 1024.0, PRICING, model, free,
                          np.random.default_rng(7))
        assert a.attempts.max() == 2
        np.testing.assert_array_equal(a.failed, b.attempts > 2)
        # Batches the budget never touched are identical to the free run.
        short = b.attempts <= 2
        np.testing.assert_array_equal(a.attempts[short], b.attempts[short])
        np.testing.assert_array_equal(a.fault_delays[short],
                                      b.fault_delays[short])

    def test_budget_does_not_change_rng_consumption(self):
        d = np.full(50, 0.1)
        model = FaultModel(failure_rate=0.5)
        for budget in (None, 0.01, 1e9):
            rng = np.random.default_rng(9)
            inject_faults(d, 1024.0, PRICING, model,
                          RetryPolicy(max_attempts=3, base_backoff_s=0.05,
                                      max_total_delay_s=budget), rng)
            after = rng.random()
            rng2 = np.random.default_rng(9)
            rng2.random((3, 50))  # failure table
            rng2.random((2, 50))  # jitter matrix
            assert after == rng2.random()


class TestRejectingStarts:
    def test_no_contention_no_rejections(self):
        starts, rejections = rejecting_starts(
            np.array([0.0, 10.0]), np.array([1.0, 1.0]), 2,
            DEFAULT_RETRY_POLICY, np.random.default_rng(0),
        )
        np.testing.assert_array_equal(starts, [0.0, 10.0])
        np.testing.assert_array_equal(rejections, 0)

    def test_contention_rejects_then_backs_off(self):
        retry = RetryPolicy(max_attempts=3, base_backoff_s=0.5,
                            multiplier=2.0, jitter=0.0)
        # One slot busy until t=10; the second invocation at t=0 is
        # rejected twice (0.5 + 1.0 backoff) then queues until 10.
        starts, rejections = rejecting_starts(
            np.array([0.0, 0.0]), np.array([10.0, 1.0]), 1, retry,
            np.random.default_rng(0),
        )
        assert starts[0] == 0.0
        assert rejections[1] == 2
        assert starts[1] == pytest.approx(10.0)

    def test_backoff_can_clear_the_throttle(self):
        retry = RetryPolicy(max_attempts=3, base_backoff_s=0.5,
                            multiplier=2.0, jitter=0.0)
        # Slot frees at 0.4: the first backoff (0.5) already clears it, so
        # the invocation starts at its own retry time, not the queue time.
        starts, rejections = rejecting_starts(
            np.array([0.0, 0.0]), np.array([0.4, 1.0]), 1, retry,
            np.random.default_rng(0),
        )
        assert rejections[1] == 1
        assert starts[1] == pytest.approx(0.5)


class TestPlatformFaultPath:
    def test_disabled_model_is_bit_identical(self):
        """An attached-but-disabled FaultModel must not change anything."""
        dispatch = np.linspace(0.0, 1.0, 50)
        sizes = np.full(50, 4)
        base = ServerlessPlatform(seed=0)
        guarded = ServerlessPlatform(seed=0, faults=FaultModel(),
                                     retry_policy=RetryPolicy(max_attempts=5))
        a = base.execute_batches(dispatch, sizes, 1024.0)
        b = guarded.execute_batches(dispatch, sizes, 1024.0)
        np.testing.assert_array_equal(a.start_times, b.start_times)
        np.testing.assert_array_equal(a.costs, b.costs)
        np.testing.assert_array_equal(a.completion_times, b.completion_times)
        assert b.attempts is None and b.failed is None

    def test_faulty_execution_accounts_everything(self):
        plat = ServerlessPlatform(seed=0, faults=FaultModel(failure_rate=0.3))
        dispatch = np.linspace(0.0, 1.0, 200)
        sizes = np.full(200, 4)
        ex = plat.execute_batches(dispatch, sizes, 1024.0)
        assert ex.attempts is not None
        assert ex.n_retries > 0
        assert np.all(ex.fault_delays >= 0.0)
        clean = ServerlessPlatform(seed=0).execute_batches(dispatch, sizes, 1024.0)
        assert ex.total_cost > clean.total_cost
        assert np.all(ex.completion_times >= clean.completion_times - 1e-12)
        assert ex.n_failed_requests == int(ex.batch_sizes[ex.failed].sum())

    def test_faulty_execution_deterministic_across_runs(self):
        def run():
            plat = ServerlessPlatform(
                seed=42, faults=FaultModel(failure_rate=0.2, timeout_s=0.5)
            )
            return plat.execute_batches(
                np.linspace(0, 1, 100), np.full(100, 8), 512.0
            )

        a, b = run(), run()
        np.testing.assert_array_equal(a.attempts, b.attempts)
        np.testing.assert_array_equal(a.costs, b.costs)
        np.testing.assert_array_equal(a.completion_times, b.completion_times)

    def test_grid_matches_per_config_execution(self):
        """Fault draws come from per-tier generators, so the grid path must
        reproduce the single-config path exactly."""
        plat = ServerlessPlatform(seed=7, faults=FaultModel(failure_rate=0.25))
        dispatch = np.linspace(0.0, 2.0, 80)
        sizes = np.full(80, 4)
        mems = [512.0, 1024.0, 2048.0]
        rngs = [plat.spawn_rng(i) for i in range(len(mems))]
        grid = plat.execute_batches_grid(dispatch, sizes, mems, rngs=rngs)
        for k, m in enumerate(mems):
            single = plat.execute_batches(
                dispatch, sizes, m, rng=plat.spawn_rng(k)
            )
            np.testing.assert_array_equal(grid[k].attempts, single.attempts)
            np.testing.assert_array_equal(grid[k].costs, single.costs)
            np.testing.assert_array_equal(
                grid[k].completion_times, single.completion_times
            )

    def test_throttle_rejection_mode(self):
        plat = ServerlessPlatform(
            seed=0,
            concurrency_limit=2,
            faults=FaultModel(throttle_rejection=True),
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.02),
        )
        # A burst of simultaneous dispatches overwhelms 2 slots.
        dispatch = np.zeros(10)
        sizes = np.full(10, 4)
        ex = plat.execute_batches(dispatch, sizes, 1024.0)
        assert ex.throttle_retries is not None
        assert ex.n_throttle_retries > 0
        # Rejected-then-retried invocations start strictly later.
        assert np.any(ex.start_times > 0.0)

    def test_fault_telemetry(self):
        plat = ServerlessPlatform(seed=0, faults=FaultModel(failure_rate=0.3))
        with use_registry(MetricsRegistry()) as reg:
            plat.execute_batches(np.linspace(0, 1, 100), np.full(100, 4), 1024.0)
        assert reg.counter("fault.attempts").value >= 100
        assert reg.counter("fault.retries").value > 0
        kinds = [e.kind for _, e in reg.events]
        assert "retry" in kinds

    def test_no_fault_telemetry_when_disabled(self):
        plat = ServerlessPlatform(seed=0)
        with use_registry(MetricsRegistry()) as reg:
            plat.execute_batches(np.linspace(0, 1, 50), np.full(50, 4), 1024.0)
        assert reg.counter("fault.attempts").value == 0
        assert not any(e.kind == "retry" for _, e in reg.events)
