"""No-fault bit-identity and fixed-seed fault determinism (tier-1).

The contract of this PR: with ``FaultModel`` disabled (the default), every
output of the simulator, the grid sweep, and the evaluation harness is
bit-identical to a platform with no fault layer at all; with a fixed seed,
fault injection is deterministic across runs and across worker counts.
"""

import numpy as np
import pytest

from repro.arrival.traces import STANDARD_TRACES
from repro.arrival.stats import interarrivals
from repro.batching.config import BatchConfig
from repro.batching.simulator import simulate, simulate_grid
from repro.core.dataset import generate_dataset
from repro.core.features import TargetSpec
from repro.evaluation.harness import run_experiment
from repro.serverless import ColdStartModel
from repro.serverless.faults import FaultModel, RetryPolicy
from repro.serverless.platform import ServerlessPlatform


def _trace():
    return STANDARD_TRACES["azure"](seed=3, n_segments=4, segment_duration=20.0)


def _timestamps(n=300, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(0.01, size=n))


class _FixedChooser:
    """Minimal chooser: always the same config (keeps the harness paths hot
    without model training)."""

    def __init__(self, config):
        self.config = config

    def choose(self, history, slo):
        from repro.core.types import Decision

        return Decision(config=self.config, decision_time=0.0)


def _platform_pair(**kwargs):
    """(no fault layer, disabled fault layer) platforms with equal seeds."""
    plain = ServerlessPlatform(seed=11, **kwargs)
    guarded = ServerlessPlatform(
        seed=11, faults=FaultModel(), retry_policy=RetryPolicy(max_attempts=7),
        **kwargs,
    )
    return plain, guarded


class TestNoFaultBitIdentity:
    def test_simulate(self):
        ts = _timestamps()
        config = BatchConfig(memory_mb=1024.0, batch_size=8, timeout=0.05)
        for kwargs in ({}, {"cold_start": ColdStartModel()}):
            plain, guarded = _platform_pair(**kwargs)
            a = simulate(ts, config, plain)
            b = simulate(ts, config, guarded)
            np.testing.assert_array_equal(a.latencies, b.latencies)
            np.testing.assert_array_equal(a.batch_costs, b.batch_costs)
            np.testing.assert_array_equal(a.dispatch_times, b.dispatch_times)
            assert a.total_cost == b.total_cost

    def test_simulate_grid(self):
        ts = _timestamps()
        configs = [
            BatchConfig(memory_mb=m, batch_size=b, timeout=0.05)
            for m in (512.0, 1024.0) for b in (4, 8)
        ]
        for kwargs in ({}, {"cold_start": ColdStartModel()}):
            plain, guarded = _platform_pair(**kwargs)
            for a, b in zip(
                simulate_grid(ts, configs, plain),
                simulate_grid(ts, configs, guarded),
            ):
                np.testing.assert_array_equal(a.latencies, b.latencies)
                np.testing.assert_array_equal(a.batch_costs, b.batch_costs)

    def test_run_experiment(self):
        trace = _trace()
        chooser = _FixedChooser(
            BatchConfig(memory_mb=1024.0, batch_size=8, timeout=0.05)
        )
        plain, guarded = _platform_pair()
        log_a = run_experiment(trace, chooser, slo=0.1, platform=plain)
        log_b = run_experiment(trace, chooser, slo=0.1, platform=guarded)
        np.testing.assert_array_equal(log_a.vcr_series(), log_b.vcr_series())
        np.testing.assert_array_equal(log_a.cost_series(), log_b.cost_series())
        np.testing.assert_array_equal(
            log_a.latency_series(95), log_b.latency_series(95)
        )
        assert all(o.n_retries == 0 and o.n_failed == 0
                   for o in log_b.outcomes)


@pytest.mark.faults
class TestFaultDeterminism:
    def _faulty_platform(self):
        return ServerlessPlatform(
            seed=5,
            cold_start=ColdStartModel(),
            faults=FaultModel(failure_rate=0.15, timeout_s=2.0),
        )

    def test_simulate_deterministic_across_runs(self):
        ts = _timestamps()
        config = BatchConfig(memory_mb=1024.0, batch_size=8, timeout=0.05)
        a = simulate(ts, config, self._faulty_platform())
        b = simulate(ts, config, self._faulty_platform())
        np.testing.assert_array_equal(a.latencies, b.latencies)
        np.testing.assert_array_equal(a.batch_costs, b.batch_costs)
        assert a.extra["retries"] == b.extra["retries"]
        np.testing.assert_array_equal(
            a.extra["request_failed"], b.extra["request_failed"]
        )

    def test_grid_matches_per_config_simulate(self):
        """Grouped grid execution reproduces per-config simulate exactly;
        each config draws from its own index-keyed generator, so grouping
        by (B, T) tiers cannot perturb another config's faults."""
        ts = _timestamps()
        configs = [
            BatchConfig(memory_mb=m, batch_size=b, timeout=0.05)
            for m in (512.0, 1024.0, 2048.0) for b in (4, 8)
        ]
        platform = self._faulty_platform()
        grid = simulate_grid(ts, configs, platform)
        for i, config in enumerate(configs):
            single = simulate(ts, config, platform, rng=platform.spawn_rng(i))
            np.testing.assert_array_equal(grid[i].latencies, single.latencies)
            np.testing.assert_array_equal(
                grid[i].batch_costs, single.batch_costs
            )
        assert any(r.extra.get("retries", 0) > 0 for r in grid)

    def test_harness_deterministic_across_runs(self):
        trace = _trace()
        chooser = _FixedChooser(
            BatchConfig(memory_mb=1024.0, batch_size=8, timeout=0.05)
        )
        logs = [
            run_experiment(trace, chooser, slo=0.1,
                           platform=self._faulty_platform())
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            logs[0].vcr_series(), logs[1].vcr_series()
        )
        np.testing.assert_array_equal(
            logs[0].cost_series(), logs[1].cost_series()
        )
        assert logs[0].total_retries == logs[1].total_retries
        assert logs[0].total_failed == logs[1].total_failed
        assert logs[0].total_retries > 0

    def test_labeling_independent_of_worker_count(self):
        history = interarrivals(_trace().timestamps)
        kwargs = dict(
            n_samples=8, seq_len=32,
            platform=self._faulty_platform(),
            spec=TargetSpec(), seed=9,
        )
        serial = generate_dataset(history, workers=1, **kwargs)
        parallel = generate_dataset(history, workers=3, **kwargs)
        np.testing.assert_array_equal(serial.targets, parallel.targets)
        np.testing.assert_array_equal(serial.sequences, parallel.sequences)
