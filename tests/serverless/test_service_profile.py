"""Tests for the deterministic service-time profile and cold starts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serverless.service_profile import (
    MAX_MEMORY_MB,
    VCPU_KNEE_MB,
    ColdStartModel,
    ServiceProfile,
)


class TestSpeedup:
    def test_unity_at_knee(self):
        assert ServiceProfile().speedup(VCPU_KNEE_MB) == pytest.approx(1.0)

    def test_sublinear_below_knee(self):
        p = ServiceProfile()
        # CPU share halves, but measured speedup falls less than linearly
        # (memory_sublinearity); with exponent 1.0 it is exactly linear.
        assert p.speedup(VCPU_KNEE_MB / 2) == pytest.approx(0.5**p.memory_sublinearity)
        linear = ServiceProfile(memory_sublinearity=1.0)
        assert linear.speedup(VCPU_KNEE_MB / 2) == pytest.approx(0.5)

    def test_cost_rises_with_memory(self):
        """Fig. 1a cost shape: with sublinear speedup, paying for more
        memory is a net cost increase even below the knee."""
        from repro.serverless.pricing import LambdaPricing

        p, pricing = ServiceProfile(), LambdaPricing()
        mems = np.array([256.0, 512.0, 1024.0, 1792.0, 3008.0])
        cost = pricing.per_request_cost(mems, p.service_time(mems, 8), 8)
        assert np.all(np.diff(cost) > 0)

    def test_diminishing_above_knee(self):
        p = ServiceProfile(multicore_efficiency=0.3)
        s = p.speedup(2 * VCPU_KNEE_MB)
        assert 1.0 < s < 2.0

    def test_memory_bounds_enforced(self):
        p = ServiceProfile()
        with pytest.raises(ValueError):
            p.speedup(64.0)
        with pytest.raises(ValueError):
            p.speedup(MAX_MEMORY_MB + 1)


class TestServiceTime:
    def test_monotone_decreasing_in_memory(self):
        """Fig. 1a shape: more memory -> lower latency."""
        p = ServiceProfile()
        mems = np.array([256.0, 512.0, 1024.0, 1792.0, 3008.0])
        times = p.service_time(mems, 8)
        assert np.all(np.diff(times) < 0)

    def test_monotone_increasing_in_batch(self):
        p = ServiceProfile()
        times = p.service_time(1024.0, np.array([1, 2, 4, 8, 16]))
        assert np.all(np.diff(times) > 0)

    def test_per_request_time_decreases_with_batch(self):
        """The batching parallelism win: amortized time falls with B."""
        p = ServiceProfile()
        per = p.per_request_time(1024.0, np.array([1, 2, 4, 8, 16, 32]))
        assert np.all(np.diff(per) < 0)

    def test_sublinear_batch_growth(self):
        p = ServiceProfile()
        t1 = p.service_time(1792.0, 1)
        t16 = p.service_time(1792.0, 16)
        assert t16 < 16 * t1

    def test_rejects_memory_below_footprint(self):
        p = ServiceProfile(min_memory_mb=512.0)
        with pytest.raises(ValueError):
            p.service_time(256.0, 1)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            ServiceProfile().service_time(1024.0, 0)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            ServiceProfile(base_time=-1.0)
        with pytest.raises(ValueError):
            ServiceProfile(batch_exponent=1.5)
        with pytest.raises(ValueError):
            ServiceProfile(multicore_efficiency=2.0)

    @given(
        st.floats(128.0, 10240.0),
        st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_service_time_positive_and_deterministic(self, mem, b):
        p = ServiceProfile()
        t = p.service_time(mem, b)
        assert t > 0
        assert t == p.service_time(mem, b)  # deterministic (§IV-A)


class TestColdStart:
    def test_delay_decreases_with_memory(self):
        c = ColdStartModel(base_delay=0.25)
        assert c.delay(3008.0) < c.delay(256.0)

    def test_zero_probability_gives_no_delays(self):
        c = ColdStartModel(cold_probability=0.0)
        d = c.sample_delays(1024.0, 100, np.random.default_rng(0))
        np.testing.assert_allclose(d, 0.0)

    def test_probability_respected(self):
        c = ColdStartModel(cold_probability=0.3)
        d = c.sample_delays(1024.0, 10_000, np.random.default_rng(0))
        assert (d > 0).mean() == pytest.approx(0.3, abs=0.03)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ColdStartModel(base_delay=-1.0)
        with pytest.raises(ValueError):
            ColdStartModel(cold_probability=1.5)
