"""Tests for the Lambda pricing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serverless.pricing import LambdaPricing, cost_per_million


class TestBilledDuration:
    def test_rounds_up_to_millisecond(self):
        p = LambdaPricing()
        assert p.billed_duration(0.0101) == pytest.approx(0.011)
        assert p.billed_duration(0.010) == pytest.approx(0.010)

    def test_vectorized(self):
        p = LambdaPricing()
        np.testing.assert_allclose(
            p.billed_duration(np.array([0.0001, 0.0015])), [0.001, 0.002]
        )


class TestInvocationCost:
    def test_matches_hand_computation(self):
        p = LambdaPricing()
        # 1 GB for exactly 100 ms + request fee
        expected = 1.0 * 0.1 * p.gb_second_price + p.request_price
        assert p.invocation_cost(1024.0, 0.1) == pytest.approx(expected)

    def test_linear_in_memory(self):
        p = LambdaPricing()
        c1 = p.invocation_cost(512.0, 0.1) - p.request_price
        c2 = p.invocation_cost(1024.0, 0.1) - p.request_price
        assert c2 == pytest.approx(2 * c1)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            LambdaPricing().invocation_cost(0.0, 0.1)

    def test_invalid_constants(self):
        with pytest.raises(ValueError):
            LambdaPricing(gb_second_price=-1.0)
        with pytest.raises(ValueError):
            LambdaPricing(billing_granularity=0.0)


class TestPerRequestCost:
    def test_batching_divides_cost(self):
        p = LambdaPricing()
        single = p.per_request_cost(1024.0, 0.05, 1)
        batched = p.per_request_cost(1024.0, 0.05, 10)
        assert batched == pytest.approx(single / 10)

    def test_rejects_batch_below_one(self):
        with pytest.raises(ValueError):
            LambdaPricing().per_request_cost(1024.0, 0.05, 0)

    @given(st.floats(0.001, 1.0), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_per_request_cost_decreases_with_batch(self, duration, b):
        """Property: per-request cost is non-increasing in batch size for a
        fixed duration (the core batching economics of Fig. 1b)."""
        p = LambdaPricing()
        assert p.per_request_cost(1024.0, duration, b + 1) <= p.per_request_cost(
            1024.0, duration, b
        )


def test_cost_per_million_scaling():
    assert cost_per_million(2.5e-7) == pytest.approx(0.25)
