"""Tests for the serverless platform invocation model."""

import numpy as np
import pytest

from repro.serverless.platform import ServerlessPlatform
from repro.serverless.pricing import LambdaPricing
from repro.serverless.service_profile import ColdStartModel, ServiceProfile


class TestInvokeBatches:
    def test_records_align_with_inputs(self):
        plat = ServerlessPlatform()
        recs = plat.invoke_batches(np.array([0.0, 1.0]), np.array([4, 8]), 1024.0)
        assert len(recs) == 2
        assert recs[0].batch_size == 4 and recs[1].batch_size == 8
        assert recs[0].dispatch_time == 0.0

    def test_completion_time(self):
        plat = ServerlessPlatform()
        rec = plat.invoke_batches(np.array([2.0]), np.array([1]), 1792.0)[0]
        expected = plat.profile.service_time(1792.0, 1)
        assert rec.completion_time == pytest.approx(2.0 + expected)

    def test_cost_matches_pricing(self):
        plat = ServerlessPlatform()
        rec = plat.invoke_batches(np.array([0.0]), np.array([2]), 1024.0)[0]
        expected = plat.pricing.invocation_cost(1024.0, rec.service_time)
        assert rec.cost == pytest.approx(expected)

    def test_empty_input(self):
        assert ServerlessPlatform().invoke_batches(np.array([]), np.array([]), 1024.0) == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ServerlessPlatform().invoke_batches(np.array([0.0]), np.array([1, 2]), 1024.0)


class TestColdStarts:
    def test_cold_start_adds_latency_and_cost(self):
        warm = ServerlessPlatform()
        cold = ServerlessPlatform(
            cold_start=ColdStartModel(cold_probability=1.0, base_delay=0.5), seed=0
        )
        rw = warm.invoke_batches(np.array([0.0]), np.array([1]), 1024.0)[0]
        rc = cold.invoke_batches(np.array([0.0]), np.array([1]), 1024.0)[0]
        assert rc.completion_time > rw.completion_time
        assert rc.cost > rw.cost
        assert rc.cold_start > 0


class TestConcurrencyLimit:
    def test_unlimited_runs_in_parallel(self):
        plat = ServerlessPlatform()
        recs = plat.invoke_batches(np.zeros(5), np.full(5, 1), 1024.0)
        assert all(r.dispatch_time == 0.0 for r in recs)

    def test_limit_serializes_excess(self):
        plat = ServerlessPlatform(concurrency_limit=1)
        recs = plat.invoke_batches(np.zeros(3), np.full(3, 1), 1024.0)
        starts = [r.dispatch_time for r in recs]
        svc = plat.profile.service_time(1024.0, 1)
        np.testing.assert_allclose(starts, [0.0, svc, 2 * svc], rtol=1e-9)

    def test_limit_two_interleaves(self):
        plat = ServerlessPlatform(concurrency_limit=2)
        recs = plat.invoke_batches(np.zeros(4), np.full(4, 1), 1024.0)
        starts = sorted(r.dispatch_time for r in recs)
        svc = plat.profile.service_time(1024.0, 1)
        np.testing.assert_allclose(starts, [0.0, 0.0, svc, svc], rtol=1e-9)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            ServerlessPlatform(concurrency_limit=0)

    def test_custom_profile_and_pricing(self):
        plat = ServerlessPlatform(
            profile=ServiceProfile(base_time=0.1, batch_time=0.0),
            pricing=LambdaPricing(request_price=0.0),
        )
        rec = plat.invoke_batches(np.array([0.0]), np.array([1]), 1792.0)[0]
        assert rec.service_time == pytest.approx(0.1)
        assert rec.cost == pytest.approx(1.75 * 0.1 * plat.pricing.gb_second_price)
