"""Tests for the serverless platform invocation model."""

import numpy as np
import pytest

from repro.serverless.platform import ServerlessPlatform
from repro.serverless.pricing import LambdaPricing
from repro.serverless.service_profile import ColdStartModel, ServiceProfile


class TestInvokeBatches:
    def test_records_align_with_inputs(self):
        plat = ServerlessPlatform()
        recs = plat.invoke_batches(np.array([0.0, 1.0]), np.array([4, 8]), 1024.0)
        assert len(recs) == 2
        assert recs[0].batch_size == 4 and recs[1].batch_size == 8
        assert recs[0].dispatch_time == 0.0

    def test_completion_time(self):
        plat = ServerlessPlatform()
        rec = plat.invoke_batches(np.array([2.0]), np.array([1]), 1792.0)[0]
        expected = plat.profile.service_time(1792.0, 1)
        assert rec.completion_time == pytest.approx(2.0 + expected)

    def test_cost_matches_pricing(self):
        plat = ServerlessPlatform()
        rec = plat.invoke_batches(np.array([0.0]), np.array([2]), 1024.0)[0]
        expected = plat.pricing.invocation_cost(1024.0, rec.service_time)
        assert rec.cost == pytest.approx(expected)

    def test_empty_input(self):
        assert ServerlessPlatform().invoke_batches(np.array([]), np.array([]), 1024.0) == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ServerlessPlatform().invoke_batches(np.array([0.0]), np.array([1, 2]), 1024.0)


class TestColdStarts:
    def test_cold_start_adds_latency_and_cost(self):
        warm = ServerlessPlatform()
        cold = ServerlessPlatform(
            cold_start=ColdStartModel(cold_probability=1.0, base_delay=0.5), seed=0
        )
        rw = warm.invoke_batches(np.array([0.0]), np.array([1]), 1024.0)[0]
        rc = cold.invoke_batches(np.array([0.0]), np.array([1]), 1024.0)[0]
        assert rc.completion_time > rw.completion_time
        assert rc.cost > rw.cost
        assert rc.cold_start > 0


class TestConcurrencyLimit:
    def test_unlimited_runs_in_parallel(self):
        plat = ServerlessPlatform()
        recs = plat.invoke_batches(np.zeros(5), np.full(5, 1), 1024.0)
        assert all(r.dispatch_time == 0.0 for r in recs)

    def test_limit_serializes_excess(self):
        plat = ServerlessPlatform(concurrency_limit=1)
        recs = plat.invoke_batches(np.zeros(3), np.full(3, 1), 1024.0)
        starts = [r.dispatch_time for r in recs]
        svc = plat.profile.service_time(1024.0, 1)
        np.testing.assert_allclose(starts, [0.0, svc, 2 * svc], rtol=1e-9)

    def test_limit_two_interleaves(self):
        plat = ServerlessPlatform(concurrency_limit=2)
        recs = plat.invoke_batches(np.zeros(4), np.full(4, 1), 1024.0)
        starts = sorted(r.dispatch_time for r in recs)
        svc = plat.profile.service_time(1024.0, 1)
        np.testing.assert_allclose(starts, [0.0, 0.0, svc, svc], rtol=1e-9)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            ServerlessPlatform(concurrency_limit=0)

    def test_custom_profile_and_pricing(self):
        plat = ServerlessPlatform(
            profile=ServiceProfile(base_time=0.1, batch_time=0.0),
            pricing=LambdaPricing(request_price=0.0),
        )
        rec = plat.invoke_batches(np.array([0.0]), np.array([1]), 1792.0)[0]
        assert rec.service_time == pytest.approx(0.1)
        assert rec.cost == pytest.approx(1.75 * 0.1 * plat.pricing.gb_second_price)


class TestBatchExecution:
    """The struct-of-arrays fast path and its lazy record view."""

    def test_records_view_matches_invoke_batches(self):
        plat = ServerlessPlatform(
            cold_start=ColdStartModel(cold_probability=0.5), seed=3
        )
        disp = np.array([0.0, 0.5, 0.5, 2.0])
        sizes = np.array([1, 4, 8, 2])
        ex = plat.execute_batches(disp, sizes, 1024.0, rng=plat.spawn_rng(0))
        recs = plat.execute_batches(disp, sizes, 1024.0, rng=plat.spawn_rng(0)).records()
        assert len(recs) == ex.n_batches == 4
        for i, r in enumerate(recs):
            assert r.dispatch_time == ex.start_times[i]
            assert r.batch_size == ex.batch_sizes[i]
            assert r.memory_mb == ex.memory_mb
            assert r.service_time == ex.service_times[i]
            assert r.cold_start == ex.cold_starts[i]
            assert r.cost == ex.costs[i]
            assert r.completion_time == pytest.approx(ex.completion_times[i])
        assert ex.total_cost == pytest.approx(sum(r.cost for r in recs))

    def test_empty_execution(self):
        ex = ServerlessPlatform().execute_batches(np.array([]), np.array([]), 512.0)
        assert ex.n_batches == 0
        assert ex.total_cost == 0.0
        assert ex.records() == []

    def test_heap_matches_naive_argmin_schedule(self):
        """The O(n log C) heap must reproduce the reference O(n·C)
        earliest-available-slot scan exactly."""
        rng = np.random.default_rng(7)
        disp = np.sort(rng.uniform(0, 2.0, 60))
        sizes = rng.integers(1, 9, size=60)
        for limit in (1, 2, 5, 60, 200):
            plat = ServerlessPlatform(concurrency_limit=limit)
            service = np.asarray(
                plat.profile.service_time(1024.0, sizes), dtype=float
            )
            free_at = np.zeros(limit)
            expected = np.empty(60)
            for i in range(60):
                slot = int(np.argmin(free_at))
                expected[i] = max(disp[i], free_at[slot])
                free_at[slot] = expected[i] + service[i]
            ex = plat.execute_batches(disp, sizes, 1024.0)
            np.testing.assert_array_equal(ex.start_times, expected)

    def test_grid_execution_matches_per_memory(self):
        plat = ServerlessPlatform(concurrency_limit=3)
        disp = np.sort(np.random.default_rng(1).uniform(0, 1.0, 40))
        sizes = np.random.default_rng(2).integers(1, 17, size=40)
        memories = [256.0, 1024.0, 3008.0]
        grid = plat.execute_batches_grid(disp, sizes, memories)
        for m, ex in zip(memories, grid):
            ref = plat.execute_batches(disp, sizes, m)
            assert ex.memory_mb == m
            np.testing.assert_array_equal(ex.start_times, ref.start_times)
            np.testing.assert_array_equal(ex.service_times, ref.service_times)
            np.testing.assert_array_equal(ex.costs, ref.costs)

    def test_grid_execution_with_per_tier_rngs(self):
        plat = ServerlessPlatform(
            cold_start=ColdStartModel(cold_probability=0.4), seed=11
        )
        disp = np.linspace(0, 1, 30)
        sizes = np.full(30, 4)
        memories = [512.0, 1792.0]
        rngs = [plat.spawn_rng(k) for k in range(2)]
        grid = plat.execute_batches_grid(disp, sizes, memories, rngs=rngs)
        for k, (m, ex) in enumerate(zip(memories, grid)):
            ref = plat.execute_batches(disp, sizes, m, rng=plat.spawn_rng(k))
            np.testing.assert_array_equal(ex.cold_starts, ref.cold_starts)
            np.testing.assert_array_equal(ex.costs, ref.costs)

    def test_grid_execution_validation(self):
        plat = ServerlessPlatform()
        with pytest.raises(ValueError):
            plat.execute_batches_grid(np.array([0.0]), np.array([1, 2]), [512.0])
        with pytest.raises(ValueError):
            plat.execute_batches_grid(
                np.array([0.0]), np.array([1]), [512.0], rngs=[]
            )

    def test_spawn_rng_deterministic_and_keyed(self):
        plat = ServerlessPlatform(seed=5)
        a, b = plat.spawn_rng(3), plat.spawn_rng(3)
        assert a.integers(0, 2**31) == b.integers(0, 2**31)
        assert plat.spawn_rng(3).integers(0, 2**31) != plat.spawn_rng(4).integers(0, 2**31)
