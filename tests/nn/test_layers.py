"""Tests for Module infrastructure and the basic layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    Dropout,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.tensor import Tensor
from tests.nn.gradcheck import assert_grad_matches

RNG = np.random.default_rng(42)


class TestModuleInfrastructure:
    def test_named_parameters_recursive(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(3, 2, seed=0)
                self.blocks = [Linear(2, 2, seed=1), Linear(2, 2, seed=2)]

        names = [n for n, _ in Net().named_parameters()]
        assert "fc.weight" in names and "fc.bias" in names
        assert "blocks.0.weight" in names and "blocks.1.bias" in names

    def test_train_eval_propagates(self):
        net = Sequential(Linear(3, 3, seed=0), Dropout(0.5, seed=0))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_state_dict_roundtrip(self):
        net1 = Linear(4, 3, seed=0)
        net2 = Linear(4, 3, seed=99)
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net1.weight.data, net2.weight.data)

    def test_load_state_dict_rejects_mismatch(self):
        net = Linear(4, 3, seed=0)
        with pytest.raises(KeyError):
            net.load_state_dict({"weight": np.zeros((4, 3))})  # missing bias
        state = net.state_dict()
        state["weight"] = np.zeros((5, 3))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad_and_num_parameters(self):
        net = Linear(4, 3, seed=0)
        y = net(Tensor(RNG.normal(size=(2, 4))))
        y.sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None
        assert net.num_parameters() == 4 * 3 + 3


class TestLinear:
    def test_forward_matches_numpy(self):
        lin = Linear(4, 3, seed=0)
        x = RNG.normal(size=(5, 4))
        np.testing.assert_allclose(
            lin(Tensor(x)).data, x @ lin.weight.data + lin.bias.data
        )

    def test_no_bias(self):
        lin = Linear(4, 3, bias=False, seed=0)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_gradcheck_weight(self):
        x = RNG.normal(size=(2, 4))

        def build(t):
            lin = Linear(4, 3, seed=0)
            lin.weight.data = t.data  # share storage won't track; rebuild manually
            return Tensor(x) @ t + lin.bias

        assert_grad_matches(build, RNG.normal(size=(4, 3)))

    def test_3d_input(self):
        lin = Linear(4, 3, seed=0)
        out = lin(Tensor(RNG.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 3)


class TestLayerNorm:
    def test_output_normalized(self):
        ln = LayerNorm(8)
        out = ln(Tensor(RNG.normal(loc=5.0, scale=3.0, size=(4, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gradcheck(self):
        def build(t):
            return LayerNorm(5)(t)

        assert_grad_matches(build, RNG.normal(size=(3, 5)), rtol=1e-3, atol=1e-5)

    def test_learnable_scale_shift(self):
        ln = LayerNorm(4)
        ln.gamma.data = np.full(4, 2.0)
        ln.beta.data = np.full(4, 7.0)
        out = ln(Tensor(RNG.normal(size=(2, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.full(2, 7.0), atol=1e-6)


class TestDropout:
    def test_eval_identity(self):
        d = Dropout(0.5, seed=0)
        d.eval()
        x = Tensor(RNG.normal(size=(10,)))
        np.testing.assert_allclose(d(x).data, x.data)

    def test_train_zeros_some(self):
        d = Dropout(0.5, seed=0)
        out = d(Tensor(np.ones(1000))).data
        assert (out == 0).sum() > 300
        assert abs(out.mean() - 1.0) < 0.15

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestSequentialAndFeedForward:
    def test_sequential_chains(self):
        net = Sequential(Linear(4, 8, seed=0), ReLU(), Linear(8, 2, seed=1))
        out = net(Tensor(RNG.normal(size=(3, 4))))
        assert out.shape == (3, 2)
        assert len(net.parameters()) == 4

    def test_feedforward_shapes_and_grad(self):
        ff = FeedForward(4, 16, 2, seed=0)
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        out = ff(x)
        assert out.shape == (3, 2)
        out.sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in ff.parameters())

    def test_feedforward_default_out_features(self):
        ff = FeedForward(4, 16, seed=0)
        assert ff(Tensor(RNG.normal(size=(3, 4)))).shape == (3, 4)
