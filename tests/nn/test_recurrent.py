"""Tests for the LSTM/GRU layers."""

import numpy as np
import pytest

from repro.nn.optim import Adam
from repro.nn.recurrent import GRU, LSTM
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(21)


@pytest.mark.parametrize("cls", [LSTM, GRU])
class TestRecurrentLayers:
    def test_output_shape(self, cls):
        layer = cls(4, 8, seed=0)
        out = layer(Tensor(RNG.normal(size=(3, 5, 4))))
        assert out.shape == (3, 5, 8)

    def test_input_validation(self, cls):
        layer = cls(4, 8, seed=0)
        with pytest.raises(ValueError):
            layer(Tensor(RNG.normal(size=(3, 4))))
        with pytest.raises(ValueError):
            cls(0, 8)

    def test_deterministic_given_seed(self, cls):
        x = RNG.normal(size=(2, 4, 3))
        a = cls(3, 6, seed=7)(Tensor(x)).data
        b = cls(3, 6, seed=7)(Tensor(x)).data
        np.testing.assert_allclose(a, b)

    def test_gradients_reach_all_parameters(self, cls):
        layer = cls(3, 5, seed=0)
        x = Tensor(RNG.normal(size=(2, 6, 3)), requires_grad=True)
        layer(x).sum().backward()
        for name, p in layer.named_parameters():
            assert p.grad is not None, name
        assert x.grad is not None

    def test_state_depends_on_history(self, cls):
        """The last hidden state must differ when early inputs differ —
        information propagates through time."""
        layer = cls(2, 4, seed=0)
        x1 = np.zeros((1, 5, 2))
        x2 = x1.copy()
        x2[0, 0, :] = 5.0  # perturb only the FIRST step
        h1 = layer(Tensor(x1)).data[:, -1]
        h2 = layer(Tensor(x2)).data[:, -1]
        assert not np.allclose(h1, h2)

    def test_can_learn_running_mean(self, cls):
        """Train the recurrent layer + head to output the sequence mean."""
        from repro.nn.layers import Linear

        layer = cls(1, 8, seed=0)
        head = Linear(8, 1, seed=1)
        x = RNG.normal(size=(16, 6, 1))
        target = Tensor(x.mean(axis=1))
        opt = Adam(layer.parameters() + head.parameters(), lr=1e-2)
        first = None
        for _ in range(80):
            out = head(layer(Tensor(x))[:, -1, :])
            diff = out - target
            loss = (diff * diff).mean()
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.3 * first


class TestLSTMSpecifics:
    def test_forget_bias_initialized_positive(self):
        lstm = LSTM(3, 4, seed=0)
        d = lstm.hidden_dim
        np.testing.assert_allclose(lstm.w_x.bias.data[d : 2 * d], 1.0)

    def test_hidden_bounded_by_tanh(self):
        lstm = LSTM(2, 4, seed=0)
        out = lstm(Tensor(RNG.normal(scale=10.0, size=(2, 8, 2)))).data
        assert np.all(np.abs(out) <= 1.0 + 1e-9)
