"""Tests for optimizers, gradient clipping, and LR schedulers."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def step_once(opt, p):
    loss = (Tensor(p.data * 0) + p * p).sum()  # loss = p^2
    opt.zero_grad()
    loss.backward()
    opt.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-3

    def test_momentum_faster_than_plain(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = SGD([p1], lr=0.01)
        mom = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            step_once(plain, p1)
            step_once(mom, p2)
        assert abs(p2.data[0]) < abs(p1.data[0])

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # zero gradient: only decay acts
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        before = p.data.copy()
        opt.step()  # no grad accumulated
        np.testing.assert_allclose(p.data, before)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-2

    def test_first_step_size_close_to_lr(self):
        # With bias correction the first Adam step is ~lr regardless of grad scale.
        for scale in (1e-3, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.1)
            p.grad = np.array([scale])
            opt.step()
            assert abs(abs(p.data[0]) - 0.1) < 1e-6

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.999))

    def test_fits_linear_regression(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 3))
        true_w = np.array([1.0, -2.0, 0.5])
        y = X @ true_w
        w = Parameter(np.zeros(3))
        opt = Adam([w], lr=0.05)
        for _ in range(400):
            pred = Tensor(X) @ w
            diff = pred - Tensor(y)
            loss = (diff * diff).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, true_w, atol=0.05)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedulers:
    def test_step_lr(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        p = quadratic_param()
        opt = Adam([p], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decreasing(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        prev = opt.lr
        for _ in range(20):
            sched.step()
            assert opt.lr <= prev + 1e-12
            prev = opt.lr

    def test_invalid_args(self):
        opt = SGD([quadratic_param()], lr=0.1)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)
