"""Tests for fused/composite functional ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.nn.gradcheck import assert_grad_matches

RNG = np.random.default_rng(7)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        s = F.softmax(x).data
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4))
        assert np.all(s >= 0)

    def test_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        s = F.softmax(x).data
        np.testing.assert_allclose(s, [[0.5, 0.5, 0.0]], atol=1e-12)

    def test_gradient(self):
        w = RNG.normal(size=(3, 5))
        assert_grad_matches(lambda t: F.softmax(t) * Tensor(w), RNG.normal(size=(3, 5)))

    def test_gradient_other_axis(self):
        w = RNG.normal(size=(3, 5))
        assert_grad_matches(lambda t: F.softmax(t, axis=0) * Tensor(w), RNG.normal(size=(3, 5)))

    @given(arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 6)),
                  elements=st.floats(-50, 50)))
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, x):
        s1 = F.softmax(Tensor(x)).data
        s2 = F.softmax(Tensor(x + 123.0)).data
        np.testing.assert_allclose(s1, s2, atol=1e-10)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_gradient(self):
        w = RNG.normal(size=(2, 4))
        assert_grad_matches(lambda t: F.log_softmax(t) * Tensor(w), RNG.normal(size=(2, 4)))


class TestConcatStack:
    def test_concat_values_and_gradient(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 5)), requires_grad=True)
        out = F.concat([a, b], axis=1)
        assert out.shape == (2, 8)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 5), 2.0))

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            F.concat([])

    def test_concat_gradcheck(self):
        other = RNG.normal(size=(2, 3))
        assert_grad_matches(
            lambda t: F.concat([t, Tensor(other)], axis=1) ** 2, RNG.normal(size=(2, 4))
        )

    def test_stack(self):
        a = Tensor(np.ones((3,)), requires_grad=True)
        b = Tensor(np.zeros((3,)), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestMaskingOps:
    def test_where_selects_and_blocks_grad(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = F.where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_masked_fill(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -1e9)
        np.testing.assert_allclose(out.data, [[-1e9, 0.0], [0.0, -1e9]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0 - mask)


class TestHuber:
    def test_quadratic_then_linear(self):
        x = Tensor(np.array([0.5, 2.0]))
        out = F.huber(x, delta=1.0).data
        np.testing.assert_allclose(out, [0.125, 1.5])

    def test_gradient_both_regimes(self):
        assert_grad_matches(lambda t: F.huber(t, delta=1.0), np.array([0.3, -0.4, 2.5, -3.0]))

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            F.huber(Tensor([1.0]), delta=0.0)

    @given(st.floats(-10, 10), st.floats(0.1, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_huber_below_squared_and_nonneg(self, v, delta):
        h = float(F.huber(Tensor([v]), delta=delta).data[0])
        assert h >= 0
        assert h <= 0.5 * v * v + 1e-12


class TestDropoutMask:
    def test_p_zero_is_identity(self):
        m = F.dropout_mask((100,), 0.0, np.random.default_rng(0))
        np.testing.assert_allclose(m, np.ones(100))

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        m = F.dropout_mask((100_000,), 0.3, rng)
        assert abs(m.mean() - 1.0) < 0.02
        assert set(np.unique(np.round(m, 6))) <= {0.0, np.round(1 / 0.7, 6)}

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout_mask((3,), 1.0, np.random.default_rng(0))

    def test_mean_pool(self):
        x = Tensor(RNG.normal(size=(2, 5, 3)))
        np.testing.assert_allclose(F.mean_pool(x, axis=1).data, x.data.mean(axis=1))
