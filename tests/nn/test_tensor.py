"""Unit and property tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn.tensor import Tensor, _unbroadcast
from tests.nn.gradcheck import assert_grad_matches

RNG = np.random.default_rng(1234)


class TestBasics:
    def test_wraps_array_as_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"
        assert t.shape == (3,)

    def test_cannot_nest_tensor(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_detach_cuts_tape(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad
        assert y._parents == ()

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_shape_mismatch_rejected(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.ones((3,)))

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_item_and_len(self):
        assert Tensor([[5.0]]).item() == 5.0
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestArithmeticGradients:
    def test_add(self):
        assert_grad_matches(lambda t: t + 3.0, RNG.normal(size=(3, 4)))

    def test_add_broadcast(self):
        b = RNG.normal(size=(4,))
        assert_grad_matches(lambda t: t + Tensor(b), RNG.normal(size=(3, 4)))

    def test_broadcast_grad_flows_to_small_operand(self):
        small = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        big = Tensor(RNG.normal(size=(3, 4)))
        (big * small).sum().backward()
        np.testing.assert_allclose(small.grad, big.data.sum(axis=0))

    def test_sub_and_rsub(self):
        assert_grad_matches(lambda t: 5.0 - t, RNG.normal(size=(2, 3)))
        assert_grad_matches(lambda t: t - 2.5, RNG.normal(size=(2, 3)))

    def test_mul(self):
        c = RNG.normal(size=(2, 3))
        assert_grad_matches(lambda t: t * Tensor(c), RNG.normal(size=(2, 3)))

    def test_div(self):
        denom = RNG.uniform(0.5, 2.0, size=(2, 3))
        assert_grad_matches(lambda t: t / Tensor(denom), RNG.normal(size=(2, 3)))
        assert_grad_matches(lambda t: 2.0 / t, RNG.uniform(0.5, 2.0, size=(2, 3)))

    def test_pow(self):
        assert_grad_matches(lambda t: t**3, RNG.uniform(0.5, 1.5, size=(4,)))

    def test_neg(self):
        assert_grad_matches(lambda t: -t, RNG.normal(size=(3,)))


class TestMatmulGradients:
    def test_2d_2d(self):
        b = RNG.normal(size=(4, 2))
        assert_grad_matches(lambda t: t @ Tensor(b), RNG.normal(size=(3, 4)))

    def test_grad_wrt_right_operand(self):
        a = RNG.normal(size=(3, 4))
        assert_grad_matches(lambda t: Tensor(a) @ t, RNG.normal(size=(4, 2)))

    def test_batched_3d(self):
        b = RNG.normal(size=(5, 4, 2))
        assert_grad_matches(lambda t: t @ Tensor(b), RNG.normal(size=(5, 3, 4)))

    def test_batched_with_broadcast(self):
        b = RNG.normal(size=(4, 2))  # broadcast over batch
        assert_grad_matches(lambda t: t @ Tensor(b), RNG.normal(size=(5, 3, 4)))
        a = RNG.normal(size=(5, 3, 4))
        assert_grad_matches(lambda t: Tensor(a) @ t, RNG.normal(size=(4, 2)))

    def test_1d_1d_inner_product(self):
        b = RNG.normal(size=(4,))
        assert_grad_matches(lambda t: t @ Tensor(b), RNG.normal(size=(4,)))

    def test_1d_2d_and_2d_1d(self):
        m = RNG.normal(size=(4, 3))
        assert_grad_matches(lambda t: t @ Tensor(m), RNG.normal(size=(4,)))
        assert_grad_matches(lambda t: Tensor(m) @ t, RNG.normal(size=(3,)))

    def test_4d_attention_shape(self):
        b = RNG.normal(size=(2, 3, 5, 4))
        assert_grad_matches(lambda t: t @ Tensor(b), RNG.normal(size=(2, 3, 7, 5)))


class TestShapeOps:
    def test_reshape(self):
        c = RNG.normal(size=6)
        assert_grad_matches(lambda t: t.reshape(6) * Tensor(c), RNG.normal(size=(2, 3)))

    def test_transpose_and_T(self):
        c1 = RNG.normal(size=(3, 2))
        assert_grad_matches(lambda t: t.T * Tensor(c1), RNG.normal(size=(2, 3)))
        c2 = RNG.normal(size=(3, 2, 4))
        assert_grad_matches(
            lambda t: t.transpose(1, 0, 2) * Tensor(c2),
            RNG.normal(size=(2, 3, 4)),
        )

    def test_swapaxes(self):
        c = RNG.normal(size=(2, 4, 3))
        assert_grad_matches(
            lambda t: t.swapaxes(-1, -2) * Tensor(c),
            RNG.normal(size=(2, 3, 4)),
        )

    def test_getitem_slice(self):
        assert_grad_matches(lambda t: t[1:, :2] * 3.0, RNG.normal(size=(3, 4)))

    def test_getitem_fancy_repeated_index_accumulates(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        y = x[np.array([0, 0, 2])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


class TestReductions:
    def test_sum_all(self):
        assert_grad_matches(lambda t: t.sum(), RNG.normal(size=(3, 4)))

    def test_sum_axis_keepdims(self):
        w = RNG.normal(size=(3, 1))
        assert_grad_matches(lambda t: t.sum(axis=1, keepdims=True) * Tensor(w), RNG.normal(size=(3, 4)))

    def test_sum_multiple_axes(self):
        assert_grad_matches(lambda t: t.sum(axis=(0, 2)), RNG.normal(size=(2, 3, 4)))

    def test_mean(self):
        assert_grad_matches(lambda t: t.mean(axis=1), RNG.normal(size=(3, 4)))
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.1))

    def test_max(self):
        x = RNG.normal(size=(3, 4))
        assert_grad_matches(lambda t: t.max(axis=1), x)

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestElementwise:
    def test_exp_log_sqrt(self):
        assert_grad_matches(lambda t: t.exp(), RNG.normal(size=(3,)))
        assert_grad_matches(lambda t: t.log(), RNG.uniform(0.5, 2.0, size=(3,)))
        assert_grad_matches(lambda t: t.sqrt(), RNG.uniform(0.5, 2.0, size=(3,)))

    def test_abs_tanh_sigmoid(self):
        assert_grad_matches(lambda t: t.abs(), RNG.uniform(0.5, 1.0, size=(3,)))
        assert_grad_matches(lambda t: t.tanh(), RNG.normal(size=(3,)))
        assert_grad_matches(lambda t: t.sigmoid(), RNG.normal(size=(3,)))

    def test_relu(self):
        x = np.array([-1.0, 0.5, 2.0])
        assert_grad_matches(lambda t: t.relu(), x)
        t = Tensor(x, requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0])

    def test_clip(self):
        x = np.array([-2.0, 0.0, 3.0])
        t = Tensor(x, requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestGraph:
    def test_diamond_graph_accumulates(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_reused_node(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # x appears twice
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_tracking_when_not_required(self):
        x = Tensor([1.0])
        y = x * 2 + 1
        assert not y.requires_grad
        assert y._backward is None


class TestUnbroadcast:
    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=4),
               elements=st.floats(-10, 10)),
    )
    @settings(max_examples=50, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, x):
        target = (2,) + x.shape
        g = np.broadcast_to(np.ones(target), target)
        reduced = _unbroadcast(np.array(g), x.shape)
        assert reduced.shape == x.shape
        np.testing.assert_allclose(reduced, np.full(x.shape, 2.0))

    def test_unbroadcast_inner_axis(self):
        g = np.ones((3, 4))
        out = _unbroadcast(g, (3, 1))
        np.testing.assert_allclose(out, np.full((3, 1), 4.0))


@given(
    arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
           elements=st.floats(-5, 5)),
    arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
           elements=st.floats(-5, 5)),
)
@settings(max_examples=40, deadline=None)
def test_add_commutes_and_grads_are_ones(a, b):
    if a.shape != b.shape:
        return
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    out = ta + tb
    np.testing.assert_allclose(out.data, a + b)
    out.sum().backward()
    np.testing.assert_allclose(ta.grad, np.ones_like(a))
    np.testing.assert_allclose(tb.grad, np.ones_like(b))
